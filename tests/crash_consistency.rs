//! Crash-consistency integration tests: inject power failures at many points
//! of an insertion stream and verify that DGAP recovers a graph containing
//! every acknowledged edge.

use dgap::{Dgap, DgapConfig, DgapVariant, DynamicGraph, GraphView, RecoveryKind};
use dgap_integration_tests::{random_edges, reference_of};
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;

const NV: usize = 80;

fn crash_pool() -> Arc<PmemPool> {
    // Crash testing needs persistence tracking (the default).
    Arc::new(PmemPool::new(PmemConfig::with_capacity(96 << 20)))
}

fn neighbours(g: &Dgap) -> Vec<Vec<u64>> {
    let view = g.consistent_view();
    (0..view.num_vertices() as u64)
        .map(|v| view.neighbors(v))
        .collect()
}

#[test]
fn crash_at_many_points_never_loses_acknowledged_edges() {
    let edges = random_edges(NV as u64, 3_000, 0x5eed);
    for &cut in &[1usize, 37, 500, 1_499, 2_999] {
        let pool = crash_pool();
        let cfg = DgapConfig::for_graph(NV, edges.len());
        let g = Dgap::create(Arc::clone(&pool), cfg.clone()).unwrap();
        for &(s, d) in &edges[..cut] {
            g.insert_edge(s, d).unwrap();
        }
        let expected = neighbours(&g);
        drop(g);
        pool.simulate_crash();

        let (recovered, kind) = Dgap::open(Arc::clone(&pool), cfg).unwrap();
        assert!(
            matches!(kind, RecoveryKind::CrashRecovery { .. }),
            "cut at {cut}"
        );
        assert_eq!(
            DynamicGraph::num_edges(&recovered),
            cut,
            "cut at {cut}: acknowledged edges must survive"
        );
        let got = neighbours(&recovered);
        assert_eq!(got.len(), expected.len(), "cut at {cut}");
        for (v, (a, b)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(a, b, "cut at {cut}, vertex {v}");
        }
        recovered.check_invariants();
    }
}

#[test]
fn crash_recovery_then_continue_matches_oracle() {
    let edges = random_edges(NV as u64, 2_000, 0x77);
    let pool = crash_pool();
    let cfg = DgapConfig::for_graph(NV, edges.len());
    let g = Dgap::create(Arc::clone(&pool), cfg.clone()).unwrap();
    for &(s, d) in &edges[..1_000] {
        g.insert_edge(s, d).unwrap();
    }
    drop(g);
    pool.simulate_crash();

    let (g, _) = Dgap::open(Arc::clone(&pool), cfg.clone()).unwrap();
    for &(s, d) in &edges[1_000..] {
        g.insert_edge(s, d).unwrap();
    }
    let oracle = reference_of(NV, &edges);
    let view = g.consistent_view();
    for v in 0..NV as u64 {
        assert_eq!(view.neighbors(v), oracle.neighbors(v), "vertex {v}");
    }
}

#[test]
fn graceful_shutdown_beats_crash_recovery_in_scanned_bytes() {
    let edges = random_edges(NV as u64, 2_500, 0x31);
    let cfg = DgapConfig::for_graph(NV, edges.len());

    let run = |graceful: bool| -> u64 {
        let pool = crash_pool();
        let g = Dgap::create(Arc::clone(&pool), cfg.clone()).unwrap();
        for &(s, d) in &edges {
            g.insert_edge(s, d).unwrap();
        }
        if graceful {
            g.shutdown().unwrap();
        }
        drop(g);
        pool.simulate_crash();
        let before = pool.stats_snapshot();
        let (_g, _) = Dgap::open(Arc::clone(&pool), cfg.clone()).unwrap();
        pool.stats_snapshot()
            .delta_since(&before)
            .logical_bytes_read
    };
    let graceful_bytes = run(true);
    let crash_bytes = run(false);
    assert!(
        crash_bytes > graceful_bytes,
        "crash recovery must scan more PM than a graceful restart ({crash_bytes} vs {graceful_bytes})"
    );
}

#[test]
fn ablation_variants_also_survive_crashes() {
    // The "No EL" variant still persists every record before acknowledging.
    let edges = random_edges(NV as u64, 1_200, 0x99);
    let pool = crash_pool();
    let cfg = DgapVariant::NoElog.apply(DgapConfig::for_graph(NV, edges.len()));
    let g = Dgap::create(Arc::clone(&pool), cfg.clone()).unwrap();
    for &(s, d) in &edges {
        g.insert_edge(s, d).unwrap();
    }
    let expected = neighbours(&g);
    drop(g);
    pool.simulate_crash();
    let (recovered, _) = Dgap::open(Arc::clone(&pool), cfg).unwrap();
    assert_eq!(neighbours(&recovered), expected);
}

#[test]
fn deletions_survive_crashes() {
    let pool = crash_pool();
    let cfg = DgapConfig::for_graph(NV, 512);
    let g = Dgap::create(Arc::clone(&pool), cfg.clone()).unwrap();
    for d in 0..20u64 {
        g.insert_edge(7, d).unwrap();
    }
    for d in (0..20u64).step_by(2) {
        g.delete_edge(7, d).unwrap();
    }
    let expected = g.consistent_view().neighbors(7);
    drop(g);
    pool.simulate_crash();
    let (recovered, _) = Dgap::open(Arc::clone(&pool), cfg).unwrap();
    assert_eq!(recovered.consistent_view().neighbors(7), expected);
    assert_eq!(expected, (1..20u64).step_by(2).collect::<Vec<_>>());
}
