//! Crash, restart, reconnect — over TCP end to end: ingest through a
//! `GraphServer`, kill the server (pools survive, shutdown flags stay
//! crash-shaped), reopen with `GraphServer::open` over the same pools,
//! reconnect remote clients, and demand oracle parity plus read-your-writes
//! on post-restart tickets.

use dgap::{GraphView, ReferenceGraph, Update, VertexId};
use net::{GraphServer, NetConfig, RemoteClient};
use service::ServiceConfig;
use sharded::ShardedConfig;

const NUM_VERTICES: usize = 160;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        sharded: ShardedConfig::builder().shards(4).batch_size(32).build(),
        workers: 3,
        num_vertices: NUM_VERTICES,
        num_edges: 1 << 14,
        pool_bytes: 24 << 20,
        ..ServiceConfig::default()
    }
}

fn sorted(mut v: Vec<VertexId>) -> Vec<VertexId> {
    v.sort_unstable();
    v
}

/// The pre-crash workload: a ring with chords, some of them deleted again
/// so recovery has tombstones to honour.
fn ingest_ops() -> Vec<Update> {
    let n = NUM_VERTICES as u64;
    let mut ops = Vec::new();
    for v in 0..n {
        ops.push(Update::InsertEdge(v, (v + 1) % n));
        ops.push(Update::InsertEdge(v, (v + 7) % n));
        if v % 3 == 0 {
            ops.push(Update::DeleteEdge(v, (v + 7) % n));
        }
    }
    ops
}

fn oracle_after(ops: &[Update]) -> ReferenceGraph {
    let mut oracle = ReferenceGraph::new(NUM_VERTICES);
    for &op in ops {
        match op {
            Update::InsertVertex(_) => {}
            Update::InsertEdge(s, d) => oracle.add_edge(s, d),
            Update::DeleteEdge(s, d) => {
                oracle.remove_edge(s, d);
            }
        }
    }
    oracle
}

#[test]
fn crash_restart_reconnect_preserves_the_graph_over_tcp() {
    // --- Phase 1: ingest over the wire. ---
    let server = GraphServer::start(service_config(), NetConfig::loopback()).expect("start server");
    let client = RemoteClient::connect(server.local_addr()).expect("connect");
    let ops = ingest_ops();
    for chunk in ops.chunks(64) {
        let t = client.mutate(chunk.to_vec()).expect("mutate");
        client.wait(&t).expect("wait");
    }
    client
        .flush()
        .expect("flush: everything durable before the crash");
    let oracle = oracle_after(&ops);
    assert_eq!(
        sorted(client.neighbors(0).expect("pre-crash read")),
        sorted(oracle.neighbors(0))
    );

    // --- Phase 2: crash. ---
    // The pools are all that survives.  `shutdown` here stops the workers
    // without marking the shards NORMAL_SHUTDOWN, so the reopen below takes
    // the genuine per-shard crash-recovery path.
    let pools = server.shard_pools();
    server.shutdown();
    let err = client.flush().expect_err("old connection must be dead");
    assert!(matches!(
        err,
        dgap::GraphError::Closed | dgap::GraphError::Io(_)
    ));
    drop(client);

    // --- Phase 3: restart over the same pools, on a fresh port. ---
    let (server, recovery) = GraphServer::open(service_config(), NetConfig::loopback(), pools)
        .expect("reopen over surviving pools");
    assert_eq!(recovery.crashed_shards(), recovery.num_shards());

    // --- Phase 4: reconnect and verify parity. ---
    let client = RemoteClient::connect(server.local_addr()).expect("reconnect");
    for v in 0..NUM_VERTICES as u64 {
        assert_eq!(
            client.degree(v).expect("degree"),
            oracle.degree(v),
            "degree of {v} after crash recovery"
        );
        assert_eq!(
            sorted(client.neighbors(v).expect("neighbors")),
            sorted(oracle.neighbors(v)),
            "neighbours of {v} after crash recovery"
        );
    }

    // --- Phase 5: the recovered server is live, not a read-only husk:
    // post-restart tickets still buy read-your-writes. ---
    let fresh: Vec<Update> = (0..10u64).map(|k| Update::InsertEdge(3, 100 + k)).collect();
    let mut expected = sorted(oracle.neighbors(3));
    expected.extend(100..110);
    let t = client.mutate(fresh).expect("post-restart mutate");
    client.wait(&t).expect("post-restart wait");
    assert_eq!(
        sorted(client.neighbors(3).expect("post-restart read")),
        sorted(expected),
        "read-your-writes on a post-restart ticket"
    );

    client.close();
    server.shutdown();
}
