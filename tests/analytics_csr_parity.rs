//! Zero-dispatch CSR kernels vs the dyn-dispatch kernels vs the oracle.
//!
//! PR 5 added the `CsrView` capability trait, the `analytics::*_csr`
//! kernels and the `sharded::UnifiedView` merged cross-shard CSR.  These
//! tests pin the contract that the fast plane changes *no answers*: on a
//! deleted-edges graph at 1/2/4 shards, every CSR kernel must agree with
//! its dyn sibling (PageRank within 1e-12 — in practice bit-identical —
//! exact BFS distances with valid parents, exact CC labels) and with the
//! in-memory `ReferenceGraph` oracle; and the unified CSR's incremental
//! refresh must reuse untouched shards' spans after a single-shard write
//! burst while producing exactly the CSR a full merge would.

use analytics::{bc, bc_csr, bfs, bfs_csr, cc, cc_csr, pagerank, pagerank_csr};
use dgap::{DynamicGraph, GraphView, ReferenceGraph};
use pmem::PmemConfig;
use sharded::{ShardedGraph, UnifiedView};
use std::sync::Arc;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// A deterministic graph with varied degrees and a deletion pass, plus the
/// matching oracle: ring with +1/+7/+131 chords (both directions), then
/// the +7 chord deleted from every third vertex.
fn deleted_edges_graph(shards: usize) -> (ShardedGraph<dgap::Dgap>, ReferenceGraph) {
    let n: u64 = 3_000;
    let graph = ShardedGraph::create_dgap(shards, n as usize, 48 << 10, |_| {
        PmemConfig::with_capacity(96 << 20).persistence_tracking(false)
    })
    .expect("create sharded DGAP");
    let mut oracle = ReferenceGraph::new(n as usize);
    for v in 0..n {
        for step in [1u64, 7, 131] {
            let u = (v + step) % n;
            graph.insert_edge(v, u).expect("insert");
            graph.insert_edge(u, v).expect("insert");
            oracle.add_edge(v, u);
            oracle.add_edge(u, v);
        }
    }
    for v in (0..n).step_by(3) {
        let u = (v + 7) % n;
        assert!(graph.delete_edge(v, u).expect("delete"));
        assert!(graph.delete_edge(u, v).expect("delete"));
        oracle.remove_edge(v, u);
        oracle.remove_edge(u, v);
    }
    (graph, oracle)
}

#[test]
fn unified_view_matches_the_oracle_at_every_shard_count() {
    for shards in SHARD_COUNTS {
        let (graph, oracle) = deleted_edges_graph(shards);
        let owned = graph.consistent_view_arc();
        let unified = UnifiedView::unify(&owned);
        assert_eq!(unified.num_edges(), oracle.num_edges(), "{shards} shards");
        for v in (0..3_000u64).step_by(97) {
            assert_eq!(
                unified.neighbor_slice(v),
                &oracle.neighbors(v)[..],
                "{shards} shards, vertex {v}"
            );
        }
    }
}

#[test]
fn pagerank_csr_matches_the_dyn_kernel_within_1e12() {
    for shards in SHARD_COUNTS {
        let (graph, oracle) = deleted_edges_graph(shards);
        let owned = graph.consistent_view_arc();
        let unified = UnifiedView::unify(&owned);
        // Dyn kernel over the shard-routed composite, CSR kernel over the
        // unified CSR, sequential oracle run over the reference graph.
        let dyn_ranks = pagerank(&*owned, 20);
        let csr_ranks = pagerank_csr(&unified, 20);
        let oracle_ranks = pagerank(&oracle, 20);
        assert_eq!(csr_ranks.len(), dyn_ranks.len());
        for (v, ((c, d), o)) in csr_ranks
            .iter()
            .zip(&dyn_ranks)
            .zip(&oracle_ranks)
            .enumerate()
        {
            assert!(
                (c - d).abs() < 1e-12,
                "{shards} shards, vertex {v}: csr {c} vs dyn {d}"
            );
            assert!(
                (c - o).abs() < 1e-12,
                "{shards} shards, vertex {v}: csr {c} vs oracle {o}"
            );
        }
    }
}

#[test]
fn bfs_csr_reaches_the_same_distances_with_valid_parents() {
    for shards in SHARD_COUNTS {
        let (graph, oracle) = deleted_edges_graph(shards);
        let unified = UnifiedView::unify(&graph.consistent_view_arc());
        let dyn_parents = bfs(&oracle, 0);
        let dyn_dist = analytics::bfs::distances_from_parents(&oracle, &dyn_parents, 0);
        let csr_parents = bfs_csr(&unified, 0);
        let csr_dist = analytics::bfs::distances_from_parents(&unified, &csr_parents, 0);
        assert_eq!(csr_dist, dyn_dist, "{shards} shards");
        // Parent validity: every reached non-source vertex hangs off a
        // real edge from a vertex one hop closer to the source.
        for (v, &p) in csr_parents.iter().enumerate() {
            if v as u64 == 0 {
                assert_eq!(p, 0, "the source is its own parent");
                continue;
            }
            if p == analytics::bfs::UNREACHED {
                assert_eq!(csr_dist[v], -1);
                continue;
            }
            assert!(
                oracle.neighbors(p as u64).contains(&(v as u64)),
                "{shards} shards: parent {p} of {v} is not a neighbour"
            );
            assert_eq!(
                csr_dist[p as usize] + 1,
                csr_dist[v],
                "{shards} shards: parent {p} of {v} is not one hop closer"
            );
        }
    }
}

#[test]
fn cc_csr_produces_identical_labels() {
    for shards in SHARD_COUNTS {
        let (graph, oracle) = deleted_edges_graph(shards);
        let unified = UnifiedView::unify(&graph.consistent_view_arc());
        assert_eq!(cc_csr(&unified), cc(&oracle), "{shards} shards");
    }
}

#[test]
fn bc_csr_matches_the_dyn_kernel() {
    let (graph, oracle) = deleted_edges_graph(2);
    let unified = UnifiedView::unify(&graph.consistent_view_arc());
    let dyn_scores = bc(&oracle, 0);
    let csr_scores = bc_csr(&unified, 0);
    assert_eq!(csr_scores.len(), dyn_scores.len());
    for (v, (c, d)) in csr_scores.iter().zip(&dyn_scores).enumerate() {
        assert!((c - d).abs() < 1e-9, "vertex {v}: csr {c} vs dyn {d}");
    }
}

#[test]
fn unified_refresh_reuses_untouched_spans_after_a_single_shard_burst() {
    let shards = 4usize;
    let (graph, mut oracle) = deleted_edges_graph(shards);
    let owned = graph.consistent_view_arc();
    let first = UnifiedView::unify(&owned);
    assert_eq!(first.merged_shards(), shards, "full merge pays every shard");

    // A write burst confined to one shard: every touched source vertex
    // hashes to the same shard as vertex 0.
    let touched = graph.shard_of(0);
    let sources: Vec<u64> = (0..3_000u64)
        .filter(|&v| graph.shard_of(v) == touched)
        .take(32)
        .collect();
    for (i, &v) in sources.iter().enumerate() {
        let u = (v + 977 + i as u64) % 3_000;
        graph.insert_edge(v, u).expect("insert");
        oracle.add_edge(v, u);
    }

    // Incremental composite recapture (only the touched shard), then the
    // incremental unified re-merge on top of it.
    let reuse: Vec<Option<Arc<dgap::FrozenView>>> = (0..shards)
        .map(|s| (s != touched).then(|| owned.shard_view_arc(s)))
        .collect();
    let owned2 = Arc::new(graph.owned_view_reusing(reuse));
    let second = first.refreshed(&owned2);

    assert_eq!(second.merged_shards(), 1, "one shard's spans re-merged");
    assert_eq!(second.reused_shards(), shards - 1);
    for s in 0..shards {
        assert_eq!(second.shard_was_merged(s), s == touched, "shard {s}");
        if s != touched {
            assert!(
                Arc::ptr_eq(&first.source_arc(s), &second.source_arc(s)),
                "untouched shard {s} must carry its Arc<FrozenView> over"
            );
        }
    }
    assert!(!Arc::ptr_eq(
        &first.source_arc(touched),
        &second.source_arc(touched)
    ));

    // The incrementally refreshed CSR answers exactly like a full merge
    // and like the oracle — including through the kernels.
    let full = UnifiedView::unify(&owned2);
    assert_eq!(second.num_edges(), oracle.num_edges());
    for v in 0..3_000u64 {
        assert_eq!(
            second.neighbor_slice(v),
            full.neighbor_slice(v),
            "vertex {v}"
        );
        assert_eq!(
            second.neighbor_slice(v),
            &oracle.neighbors(v)[..],
            "vertex {v}"
        );
    }
    let csr_ranks = pagerank_csr(&second, 20);
    let oracle_ranks = pagerank(&oracle, 20);
    for (v, (c, o)) in csr_ranks.iter().zip(&oracle_ranks).enumerate() {
        assert!((c - o).abs() < 1e-12, "vertex {v}: {c} vs {o}");
    }
    assert_eq!(cc_csr(&second), cc(&oracle));
}
