//! Concurrency: the sharded ingest engine under many producer threads, with
//! tiny queues (forcing backpressure) and concurrent analysis snapshots.

use dgap::{DynamicGraph, GraphView, SnapshotSource};
use dgap_integration_tests::{random_edges, reference_of};
use sharded::{IngestPipeline, ShardedConfig, ShardedGraph};
use std::sync::Arc;

const NUM_VERTICES: u64 = 128;

#[test]
fn concurrent_producers_lose_no_edges() {
    let producers = 4usize;
    let per_producer = 2_000usize;
    let graph = Arc::new(ShardedGraph::create_dgap_small_test(4).expect("create"));
    let pipeline = Arc::new(IngestPipeline::new(
        Arc::clone(&graph),
        &ShardedConfig::builder()
            .shards(4)
            .queue_capacity(2) // tiny: backpressure must engage
            .batch_size(128)
            .build(),
    ));

    let streams: Vec<Vec<(u64, u64)>> = (0..producers)
        .map(|p| random_edges(NUM_VERTICES, per_producer, 0x1000 + p as u64))
        .collect();

    std::thread::scope(|scope| {
        for stream in &streams {
            let pipeline = Arc::clone(&pipeline);
            scope.spawn(move || {
                for batch in stream.chunks(128) {
                    pipeline.submit_edges(batch).expect("submit");
                }
            });
        }
    });
    pipeline.flush_all().expect("flush_all");

    let total = producers * per_producer;
    assert_eq!(graph.num_edges(), total);
    let stats = pipeline.stats();
    assert_eq!(stats.ops_applied() as usize, total);
    assert_eq!(stats.op_errors(), 0);

    // Adjacency multisets must match the union oracle (order across
    // producers is unspecified, so compare sorted).
    let union: Vec<(u64, u64)> = streams.concat();
    let oracle = reference_of(NUM_VERTICES as usize, &union);
    let view = graph.consistent_view();
    for v in 0..NUM_VERTICES {
        let mut got = view.neighbors(v);
        let mut want = oracle.neighbors(v);
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "neighbours of {v}");
    }
}

#[test]
fn snapshots_during_ingest_are_consistent_prefixes() {
    let graph = Arc::new(ShardedGraph::create_dgap_small_test(2).expect("create"));
    let pipeline = IngestPipeline::new(Arc::clone(&graph), &ShardedConfig::small_test());
    let edges = random_edges(NUM_VERTICES, 4_000, 0xBEEF);

    for batch in edges.chunks(256) {
        pipeline.submit_edges(batch).expect("submit");
        // A mid-ingest snapshot must be internally sane: every degree it
        // reports is backed by readable adjacency of the same length.
        let view = graph.consistent_view();
        for v in (0..NUM_VERTICES).step_by(17) {
            assert_eq!(view.neighbors(v).len(), view.degree(v), "vertex {v}");
        }
    }
    pipeline.flush_all().expect("flush_all");
    assert_eq!(graph.num_edges(), edges.len());
}

#[test]
fn direct_writers_bypassing_the_pipeline_are_also_safe() {
    // ShardedGraph implements DynamicGraph with &self methods, so writer
    // threads may drive it directly (the same contract every backend obeys).
    let graph = Arc::new(ShardedGraph::create_dgap_small_test(4).expect("create"));
    let edges = random_edges(NUM_VERTICES, 8_000, 0xCAFE);
    let threads = 4;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let graph = Arc::clone(&graph);
            let chunk: Vec<(u64, u64)> = edges.iter().copied().skip(t).step_by(threads).collect();
            scope.spawn(move || {
                for (s, d) in chunk {
                    graph.insert_edge(s, d).expect("insert");
                }
            });
        }
    });
    graph.flush();
    assert_eq!(graph.num_edges(), edges.len());
    let oracle = reference_of(NUM_VERTICES as usize, &edges);
    let view = graph.consistent_view();
    for v in 0..NUM_VERTICES {
        let mut got = view.neighbors(v);
        let mut want = oracle.neighbors(v);
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "neighbours of {v}");
    }
}
