//! Concurrency integration tests: multiple writer threads and concurrent
//! analysis tasks against one DGAP instance (the paper's execution model).

use analytics::{cc, pagerank};
use dgap::{Dgap, DgapConfig, DynamicGraph, GraphView};
use dgap_integration_tests::random_edges;
use pmem::{PmemConfig, PmemPool};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn big_pool() -> Arc<PmemPool> {
    Arc::new(PmemPool::new(
        PmemConfig::with_capacity(128 << 20).persistence_tracking(false),
    ))
}

#[test]
fn many_writers_ingest_disjoint_streams() {
    let nv = 128usize;
    let per_thread = 1_500usize;
    let threads = 4usize;
    let g = Arc::new(
        Dgap::create(
            big_pool(),
            DgapConfig::for_graph(nv, per_thread * threads).writer_threads(threads),
        )
        .unwrap(),
    );
    let streams: Vec<Vec<(u64, u64)>> = (0..threads)
        .map(|t| random_edges(nv as u64, per_thread, 0x1000 + t as u64))
        .collect();

    std::thread::scope(|scope| {
        for stream in &streams {
            let g = Arc::clone(&g);
            scope.spawn(move || {
                for &(s, d) in stream {
                    g.insert_edge(s, d).unwrap();
                }
            });
        }
    });

    assert_eq!(DynamicGraph::num_edges(&*g), per_thread * threads);
    g.check_invariants();

    // Every inserted edge is present exactly once.
    let view = g.consistent_view();
    let mut expected = std::collections::HashMap::<(u64, u64), usize>::new();
    for stream in &streams {
        for &e in stream {
            *expected.entry(e).or_default() += 1;
        }
    }
    let mut got = std::collections::HashMap::<(u64, u64), usize>::new();
    for v in 0..nv as u64 {
        for d in view.neighbors(v) {
            *got.entry((v, d)).or_default() += 1;
        }
    }
    assert_eq!(expected, got);
}

#[test]
fn analysis_tasks_run_while_writers_insert() {
    let nv = 96usize;
    let g = Arc::new(
        Dgap::create(
            big_pool(),
            DgapConfig::for_graph(nv, 20_000).writer_threads(2),
        )
        .unwrap(),
    );
    // Seed the graph so early snapshots are non-trivial.
    for &(s, d) in &random_edges(nv as u64, 1_000, 3) {
        g.insert_edge(s, d).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..2u64)
        .map(|t| {
            let g = Arc::clone(&g);
            let edges = random_edges(nv as u64, 4_000, 0x42 + t);
            std::thread::spawn(move || {
                for (s, d) in edges {
                    g.insert_edge(s, d).unwrap();
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let g = Arc::clone(&g);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut snapshots_taken = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let view = g.consistent_view();
                    // The snapshot must be internally consistent: the sum of
                    // per-vertex neighbour counts equals its edge total.
                    let total: usize = (0..view.num_vertices() as u64)
                        .map(|v| view.neighbors(v).len())
                        .sum();
                    assert_eq!(total, view.num_edges());
                    let ranks = pagerank(&view, 3);
                    assert!(ranks.iter().all(|r| r.is_finite()));
                    let labels = cc(&view);
                    assert_eq!(labels.len(), view.num_vertices());
                    snapshots_taken += 1;
                }
                assert!(snapshots_taken > 0);
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(DynamicGraph::num_edges(&*g), 1_000 + 2 * 4_000);
    g.check_invariants();
}

#[test]
fn writers_and_shutdown_serialise_cleanly() {
    let nv = 64usize;
    let g = Arc::new(
        Dgap::create(
            big_pool(),
            DgapConfig::for_graph(nv, 10_000).writer_threads(2),
        )
        .unwrap(),
    );
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let g = Arc::clone(&g);
            scope.spawn(move || {
                for (s, d) in random_edges(nv as u64, 2_000, t + 9) {
                    g.insert_edge(s, d).unwrap();
                }
            });
        }
    });
    g.shutdown().unwrap();
    assert_eq!(DynamicGraph::num_edges(&*g), 4_000);
}
