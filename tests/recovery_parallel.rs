//! Parallel crash recovery, end to end: shard-parallel `open_dgap` after a
//! multi-shard crash (1/2/4 shards) with analytics parity against the
//! oracle, sequential-vs-parallel `recover_from_crash` equivalence on a
//! deleted-edges graph, and the `GraphService::open` round trip.

use analytics::{bfs, cc, pagerank};
use dgap::{
    Dgap, DgapConfig, DynamicGraph, GraphView, OwnedSnapshotSource, RecoveryKind, ReferenceGraph,
    Update,
};
use pmem::{PmemConfig, PmemPool};
use service::{GraphService, ServiceConfig};
use sharded::{IngestPipeline, ShardedConfig, ShardedGraph};
use std::sync::Arc;

const NUM_VERTICES: usize = 160;
const NUM_EDGES: usize = 2600;

/// A deterministic insert/delete stream whose last insert touches the
/// highest vertex id, so every restored view spans exactly `NUM_VERTICES`
/// vertices (what the analytics parity checks compare element-wise).
fn interleaved_ops() -> Vec<Update> {
    let edges = dgap_integration_tests::random_edges(NUM_VERTICES as u64, NUM_EDGES, 0xfeed);
    let mut ops = Vec::with_capacity(edges.len() + edges.len() / 4 + 1);
    for (i, &(s, d)) in edges.iter().enumerate() {
        ops.push(Update::InsertEdge(s, d));
        if i % 4 == 3 {
            // Delete an edge from earlier in the stream: it must land.
            let (ds, dd) = edges[i - i / 4];
            ops.push(Update::DeleteEdge(ds, dd));
        }
    }
    ops.push(Update::InsertEdge(NUM_VERTICES as u64 - 1, 0));
    ops
}

fn oracle_of(ops: &[Update]) -> ReferenceGraph {
    let mut oracle = ReferenceGraph::new(NUM_VERTICES);
    for &op in ops {
        match op {
            Update::InsertVertex(_) => {}
            Update::InsertEdge(s, d) => oracle.add_edge(s, d),
            Update::DeleteEdge(s, d) => {
                oracle.remove_edge(s, d);
            }
        }
    }
    oracle
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

/// Drive `ops` through the ingest pipeline at `shards` shards on
/// crash-tracking pools, then kill the graph mid-session (no graceful
/// `Dgap::shutdown` — the workers stop, the pools power off) and return
/// the surviving pool handles.
fn ingest_and_crash(ops: &[Update], shards: usize) -> Vec<Arc<PmemPool>> {
    let graph = Arc::new(
        ShardedGraph::new(shards, |_| {
            let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
            Dgap::create(pool, DgapConfig::small_test())
        })
        .expect("create sharded DGAP"),
    );
    let cfg = ShardedConfig::builder()
        .shards(shards)
        .queue_capacity(8)
        .batch_size(256)
        .build();
    let pipeline = IngestPipeline::new(Arc::clone(&graph), &cfg);
    for chunk in ops.chunks(cfg.batch_size) {
        pipeline.submit(chunk).expect("submit");
    }
    pipeline.flush_all().expect("flush_all");
    let pools: Vec<Arc<PmemPool>> = (0..shards)
        .map(|i| Arc::clone(graph.shard(i).pool()))
        .collect();
    drop(pipeline);
    drop(graph);
    for pool in &pools {
        pool.simulate_crash();
    }
    pools
}

#[test]
fn sharded_crash_reopen_matches_the_oracle_at_every_shard_count() {
    let ops = interleaved_ops();
    let oracle = oracle_of(&ops);
    let reference_ranks = pagerank(&oracle, 20);
    let reference_parents = bfs(&oracle, 0);
    let reference_dist = analytics::bfs::distances_from_parents(&oracle, &reference_parents, 0);
    let reference_labels = cc(&oracle);

    for shards in [1usize, 2, 4] {
        let pools = ingest_and_crash(&ops, shards);
        let (reopened, recovery) =
            ShardedGraph::open_dgap(pools, |_| DgapConfig::small_test()).expect("open_dgap");
        assert_eq!(
            recovery.crashed_shards(),
            shards,
            "{shards} shards: every shard must take the crash path"
        );

        // Adjacency parity (tombstones resolved by the owned snapshot; a
        // delete may cancel either copy of a duplicate, so adjacency
        // compares as a sorted multiset).
        let view = reopened.owned_view();
        assert_eq!(GraphView::num_vertices(&view), NUM_VERTICES);
        assert_eq!(
            GraphView::num_edges(&view),
            GraphView::num_edges(&oracle),
            "{shards} shards"
        );
        for v in 0..NUM_VERTICES as u64 {
            assert_eq!(
                sorted(view.neighbors(v)),
                sorted(oracle.neighbors(v)),
                "{shards} shards: neighbours of {v}"
            );
        }

        // Analytics parity: pagerank within 1e-6, BFS hop distances and
        // connected components exact.
        let ranks = pagerank(&view, 20);
        assert_eq!(ranks.len(), reference_ranks.len());
        for (v, (a, b)) in ranks.iter().zip(&reference_ranks).enumerate() {
            assert!(
                (a - b).abs() < 1e-6,
                "{shards} shards: pagerank of {v}: {a} vs {b}"
            );
        }
        let parents = bfs(&view, 0);
        let dist = analytics::bfs::distances_from_parents(&view, &parents, 0);
        assert_eq!(dist, reference_dist, "{shards} shards: BFS distances");
        assert_eq!(cc(&view), reference_labels, "{shards} shards: CC labels");
    }
}

#[test]
fn sequential_and_parallel_recovery_agree_on_a_deleted_edges_graph() {
    // Big enough to cross the parallel-recovery threshold (the capacity
    // gate sits at 2^14 slots), with enough churn to exercise edge logs,
    // rebalances and resizes before the crash.
    let n: u64 = 3000;
    let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(256 << 20)));
    let cfg = DgapConfig::for_graph(n as usize, 64 << 10);
    let g = Dgap::create(Arc::clone(&pool), cfg.clone()).expect("create");
    for v in 0..n {
        for step in [1u64, 7, 131] {
            let u = (v + step) % n;
            g.insert_edge(v, u).expect("insert");
            g.insert_edge(u, v).expect("insert");
        }
    }
    for v in (0..n).step_by(3) {
        let u = (v + 7) % n;
        assert!(g.delete_edge(v, u).expect("delete"));
        assert!(g.delete_edge(u, v).expect("delete"));
    }
    let expected: Vec<Vec<u64>> = {
        let view = g.consistent_view();
        (0..n).map(|v| view.neighbors(v)).collect()
    };
    drop(g);
    pool.simulate_crash();

    let (recovered, kind) = Dgap::open(Arc::clone(&pool), cfg).expect("open");
    assert!(matches!(kind, RecoveryKind::CrashRecovery { .. }));

    // The two scan implementations must reconstruct identical state...
    let seq = recovered.recover_from_crash_sequential();
    let par = recovered.recover_from_crash_parallel();
    assert_eq!(seq, par, "sequential and parallel recovery diverged");
    assert!(seq.records > 0);

    // ...and the recovered graph must answer exactly like the pre-crash
    // one, tombstones included.
    let view = recovered.consistent_view();
    for v in 0..n {
        assert_eq!(view.neighbors(v), expected[v as usize], "vertex {v}");
    }
    recovered.check_invariants();
}

#[test]
fn graph_service_open_round_trips_a_killed_service_to_query_parity() {
    let ops = interleaved_ops();
    let oracle = oracle_of(&ops);
    let config = ServiceConfig::small_test();

    let service = GraphService::start(config.clone()).expect("start");
    let client = service.client();
    for chunk in ops.chunks(128) {
        let ticket = client.mutate(chunk.to_vec()).expect("mutate");
        client.wait(&ticket).expect("wait");
    }
    client.flush().expect("flush");
    let pools = service.shard_pools();
    // Kill the service without a graceful shutdown: the workers stop, the
    // NORMAL_SHUTDOWN flags stay clear, and the pools are all that
    // survives.
    service.shutdown();

    let (reopened, recovery) = GraphService::open(config, pools).expect("open");
    assert_eq!(recovery.crashed_shards(), recovery.num_shards());
    let client = reopened.client();
    for v in 0..NUM_VERTICES as u64 {
        assert_eq!(
            sorted(client.neighbors(v).expect("neighbors")),
            sorted(oracle.neighbors(v)),
            "neighbours of {v}"
        );
        assert_eq!(
            client.degree(v).expect("degree"),
            oracle.degree(v),
            "degree of {v}"
        );
    }
    // The restarted service keeps serving writes and queries.
    let ticket = client
        .mutate(vec![Update::InsertEdge(0, NUM_VERTICES as u64 - 1)])
        .expect("mutate");
    client.wait(&ticket).expect("wait");
    assert_eq!(
        client.degree(0).expect("degree"),
        oracle.degree(0) + 1,
        "post-recovery write visible"
    );
    reopened.shutdown();
}
