//! The network plane under real concurrent remote clients: the same
//! oracle-parity and read-your-writes assertions as `service_loop.rs`, but
//! every request crosses a TCP socket — plus pipelined out-of-order
//! harvesting and the multi-tenant admission-control guarantees.

use dgap::{GraphError, GraphView, ReferenceGraph, Update};
use net::{GraphServer, NetConfig, RemoteClient};
use service::{Query, QueryResult, Request, Response, ServiceConfig};
use sharded::ShardedConfig;
use std::time::{Duration, Instant};

const NUM_CLIENTS: u64 = 4;
const NUM_VERTICES: u64 = 128;

/// The deterministic op stream of one client — identical to
/// `service_loop.rs`: disjoint source vertices, no duplicate inserts, odd
/// offsets deleted again.
fn client_ops(client: u64) -> Vec<Update> {
    let mut ops = Vec::new();
    for v in (client..NUM_VERTICES).step_by(NUM_CLIENTS as usize) {
        let degree = v % 6 + 1;
        for k in 1..=degree {
            ops.push(Update::InsertEdge(v, (v + k) % NUM_VERTICES));
        }
        for k in (1..=degree).filter(|k| k % 2 == 1) {
            ops.push(Update::DeleteEdge(v, (v + k) % NUM_VERTICES));
        }
    }
    ops
}

fn apply_to_oracle(oracle: &mut ReferenceGraph, ops: &[Update]) {
    for &op in ops {
        match op {
            Update::InsertVertex(_) => {}
            Update::InsertEdge(s, d) => oracle.add_edge(s, d),
            Update::DeleteEdge(s, d) => {
                oracle.remove_edge(s, d);
            }
        }
    }
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        sharded: ShardedConfig::builder()
            .shards(4)
            .queue_capacity(4) // tiny queues: backpressure must engage
            .batch_size(32)
            .build(),
        workers: 4,
        num_vertices: NUM_VERTICES as usize,
        num_edges: 1 << 14,
        pool_bytes: 24 << 20,
        ..ServiceConfig::default()
    }
}

#[test]
fn bounded_remote_wait_round_trips_both_outcomes() {
    let server = GraphServer::start(service_config(), NetConfig::loopback()).expect("start server");
    let client = RemoteClient::connect(server.local_addr()).expect("connect");
    // A satisfied ticket answers within any deadline.
    let t = client.mutate(vec![Update::InsertEdge(0, 1)]).expect("seed");
    client
        .wait_deadline(&t, Duration::from_secs(5))
        .expect("satisfied ticket beats a generous deadline");
    // Queue fat batches so the last ticket is still draining when the
    // zero-deadline wait crosses the wire — the structured Timeout must
    // come back, and the ticket must stay retryable.
    let mut last = sharded::Ticket::empty();
    for round in 0..4u64 {
        let ops: Vec<Update> = (0..8000u64)
            .map(|i| Update::InsertEdge(i % NUM_VERTICES, (i + round) % NUM_VERTICES))
            .collect();
        last = client.mutate(ops).expect("fat batch");
    }
    match client.wait_deadline(&last, Duration::ZERO) {
        Err(GraphError::Timeout { .. }) => {}
        Ok(()) => panic!("pipeline drained 32k ops before the wait was served"),
        other => panic!("unexpected {other:?}"),
    }
    client.wait(&last).expect("unbounded retry completes");
    client.close();
    server.shutdown();
}

#[test]
fn four_remote_clients_over_tcp_match_the_oracle() {
    let server = GraphServer::start(service_config(), NetConfig::loopback()).expect("start server");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            scope.spawn(move || {
                // Each tenant gets its own TCP connection.
                let client = RemoteClient::connect(addr).expect("connect");
                let ops = client_ops(c);
                let mut ticket = sharded::Ticket::empty();
                for (i, chunk) in ops.chunks(32).enumerate() {
                    let t = client.mutate(chunk.to_vec()).expect("mutate");
                    ticket.merge(&t);
                    if i % 4 == 0 {
                        let d = client.degree(c).expect("mid-stream degree");
                        assert!(d <= NUM_VERTICES as usize);
                    }
                }
                // Read-your-writes across the wire: wait on the merged
                // ticket, then verify every owned vertex exactly.
                client.wait(&ticket).expect("wait");
                let mut oracle = ReferenceGraph::new(NUM_VERTICES as usize);
                apply_to_oracle(&mut oracle, &ops);
                for v in (c..NUM_VERTICES).step_by(NUM_CLIENTS as usize) {
                    assert_eq!(
                        client.neighbors(v).expect("own neighbors"),
                        oracle.neighbors(v),
                        "client {c}: own writes on vertex {v} after ticket wait"
                    );
                }
                client.close();
            });
        }
    });

    // Global barrier over a fresh connection, then exact parity with the
    // union oracle.
    let client = RemoteClient::connect(addr).expect("connect");
    client.flush().expect("flush");
    let mut oracle = ReferenceGraph::new(NUM_VERTICES as usize);
    for c in 0..NUM_CLIENTS {
        apply_to_oracle(&mut oracle, &client_ops(c));
    }
    for v in 0..NUM_VERTICES {
        assert_eq!(client.degree(v).expect("degree"), oracle.degree(v));
        assert_eq!(
            client.neighbors(v).expect("neighbors"),
            oracle.neighbors(v),
            "neighbours of {v}"
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.num_edges, GraphView::num_edges(&oracle));
    assert!(stats.deletes_applied > 0);
    assert_eq!(stats.ops_submitted, stats.ops_applied);

    // Analytics parity across the wire (f64 travel bit-exact).
    match client
        .query(Query::Pagerank { iterations: 20 })
        .expect("pagerank")
    {
        QueryResult::Pagerank(ranks) => {
            let reference = analytics::pagerank(&oracle, 20);
            assert_eq!(ranks.len(), reference.len());
            for (v, (a, b)) in ranks.iter().zip(&reference).enumerate() {
                assert!((a - b).abs() < 1e-6, "pagerank of {v}: {a} vs {b}");
            }
        }
        other => panic!("unexpected {other:?}"),
    }

    // The server accounted for this traffic.
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.counter("net_requests_total").unwrap_or(0) > 0);
    assert!(metrics.counter("net_connections_total").unwrap_or(0) >= NUM_CLIENTS);
    let nanos = metrics
        .histogram("net_request_nanos")
        .expect("request latency histogram");
    assert!(nanos.count > 0);

    client.close();
    server.shutdown();
}

#[test]
fn pipelined_requests_are_harvested_out_of_order() {
    let server = GraphServer::start(service_config(), NetConfig::loopback()).expect("start server");
    let client = RemoteClient::connect(server.local_addr()).expect("connect");

    // Fire a burst of requests without waiting on any of them...
    let mutate = client
        .send(&Request::Mutate {
            ops: vec![Update::InsertEdge(1, 2), Update::InsertEdge(1, 3)],
            client: None,
        })
        .expect("send mutate");
    let flush = client.send(&Request::Flush).expect("send flush");
    let queries: Vec<_> = (0..16)
        .map(|_| {
            client
                .send(&Request::Query(Query::Stats))
                .expect("send query")
        })
        .collect();

    // ...then harvest them in reverse order.  Replies are matched by id,
    // not arrival order, so this must work regardless of how the worker
    // pool interleaved them.
    for pending in queries.into_iter().rev() {
        match pending.wait().expect("stats reply") {
            Response::Answer(QueryResult::Stats(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    match flush.wait().expect("flush reply") {
        Response::Flushed => {}
        other => panic!("unexpected {other:?}"),
    }
    match mutate.wait().expect("mutate reply") {
        Response::Mutated { ops, .. } => assert_eq!(ops, 2),
        other => panic!("unexpected {other:?}"),
    }

    // The writes landed (flush was a global barrier).
    assert_eq!(client.degree(1).expect("degree"), 2);
    client.close();
    server.shutdown();
}

#[test]
fn widened_kernel_set_is_reachable_over_tcp() {
    let server = GraphServer::start(service_config(), NetConfig::loopback()).expect("start server");
    let client = RemoteClient::connect(server.local_addr()).expect("connect");

    // A triangle (0-1-2) with a pendant path 0-3-4, inserted symmetrically.
    let mut ops = Vec::new();
    for &(a, b) in &[(0u64, 1u64), (1, 2), (0, 2), (0, 3), (3, 4)] {
        ops.push(Update::InsertEdge(a, b));
        ops.push(Update::InsertEdge(b, a));
    }
    let t = client.mutate(ops).expect("mutate");
    client.wait(&t).expect("wait");

    assert_eq!(client.triangle_count().expect("triangles"), 1);
    assert_eq!(client.k_core(2).expect("2-core"), vec![0, 1, 2]);
    assert_eq!(client.top_k_degree(1).expect("top degree"), vec![(0, 3)]);
    let top_pr = client.top_k_pagerank(2).expect("top pagerank");
    assert_eq!(top_pr.len(), 2);
    assert_eq!(top_pr[0].0, 0, "the hub out-ranks everything");
    assert!(top_pr[0].1 > top_pr[1].1 || top_pr[1].0 > 0);
    assert_eq!(client.khop(4, 1).expect("1-hop"), vec![3, 4]);
    assert_eq!(client.khop(4, 2).expect("2-hop"), vec![0, 3, 4]);
    assert_eq!(client.khop(4, 3).expect("3-hop"), vec![0, 1, 2, 3, 4]);

    client.close();
    server.shutdown();
}

#[test]
fn over_quota_client_is_shed_while_within_quota_clients_stay_healthy() {
    // 100 ops/sec per connection, burst 100: a 1000-op batch is admitted
    // once against the full bucket (the excess becomes debt), after which
    // the connection is shed until the debt refills — while polite clients
    // pacing ~50 requests/sec on their own connections never trip it.
    let net = NetConfig {
        ops_per_sec: Some(100),
        burst_ops: 100,
        ..NetConfig::loopback()
    };
    let server = GraphServer::start(service_config(), net).expect("start server");
    let addr = server.local_addr();

    // Seed a little data so queries have something to chew on.
    let seeder = RemoteClient::connect(addr).expect("connect seeder");
    let t = seeder
        .mutate((0..64u64).map(|v| Update::InsertEdge(v, v + 1)).collect())
        .expect("seed");
    seeder.wait(&t).expect("wait seed");
    seeder.close();

    std::thread::scope(|scope| {
        // The abusive tenant: one oversized batch (cost 1000 tokens against
        // a 100-token bucket) is admitted against the full bucket, charging
        // 900 tokens of debt — everything after it is shed with a
        // structured Overloaded until the debt refills, and the connection
        // must survive the shedding.
        scope.spawn(move || {
            let abuser = RemoteClient::connect(addr).expect("connect abuser");
            let big: Vec<Update> = (0..1000u64)
                .map(|k| Update::InsertEdge(k % 64, (k + 1) % 64))
                .collect();
            let _ticket = abuser
                .mutate(big)
                .expect("oversized batch admitted once against the full bucket");
            // Deep in debt now (900 tokens at 100/s): the next request is
            // shed with the structured, retryable error...
            let err = abuser
                .mutate(vec![Update::InsertEdge(0, 63)])
                .expect_err("must be shed while in debt");
            match &err {
                GraphError::Overloaded { reason } => assert_eq!(reason, "rate"),
                other => panic!("expected Overloaded, got {other:?}"),
            }
            // ...and shedding is per-request, not per-connection: the same
            // socket keeps answering.
            let err = abuser
                .mutate(vec![Update::InsertEdge(1, 63)])
                .expect_err("still in debt");
            assert!(matches!(err, GraphError::Overloaded { .. }), "{err:?}");
            abuser.close();
        });

        // Two polite tenants keep querying throughout and must see zero
        // shedding and bounded tails.
        for _ in 0..2 {
            scope.spawn(move || {
                let polite = RemoteClient::connect(addr).expect("connect polite");
                let mut latencies = Vec::with_capacity(40);
                for i in 0..40u64 {
                    let started = Instant::now();
                    let d = polite.degree(i % 64).expect("within-quota query");
                    latencies.push(started.elapsed());
                    assert!(d <= 64);
                    std::thread::sleep(Duration::from_millis(5));
                }
                // "p99 stays bounded": the worst observed latency of the
                // polite tenant stays far below the abuser-induced chaos
                // threshold (generous enough for a loaded CI box).
                latencies.sort();
                let p99 = latencies[latencies.len() * 99 / 100];
                assert!(
                    p99 < Duration::from_secs(2),
                    "within-quota p99 exploded: {p99:?}"
                );
                polite.close();
            });
        }
    });

    // The registry recorded the shed with its reason.
    let probe = RemoteClient::connect(addr).expect("connect probe");
    let metrics = probe.metrics().expect("metrics");
    assert!(
        metrics
            .counter_labeled("net_requests_shed", "reason=\"rate\"")
            .unwrap_or(0)
            >= 1,
        "the rate shed must be visible in net_requests_shed"
    );
    probe.close();
    server.shutdown();
}

#[test]
fn pipelining_past_the_inflight_window_is_shed_not_killed() {
    // A window of 2: a burst of concurrent slow queries must overflow it.
    let net = NetConfig {
        max_inflight: 2,
        ..NetConfig::loopback()
    };
    let server = GraphServer::start(service_config(), net).expect("start server");
    let client = RemoteClient::connect(server.local_addr()).expect("connect");

    // Seed so pagerank has real work per request.
    let t = client
        .mutate((0..127u64).map(|v| Update::InsertEdge(v, v + 1)).collect())
        .expect("seed");
    client.wait(&t).expect("wait");

    // Fire a pile of expensive queries without harvesting: only 2 may be
    // in flight, so the tail of the burst is shed with reason "inflight".
    let pending: Vec<_> = (0..64)
        .map(|_| {
            client
                .send(&Request::Query(Query::Pagerank { iterations: 50 }))
                .expect("send")
        })
        .collect();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for p in pending {
        match p.wait().expect("reply arrives either way") {
            Response::Answer(QueryResult::Pagerank(_)) => ok += 1,
            Response::Error(GraphError::Overloaded { reason }) => {
                assert_eq!(reason, "inflight");
                shed += 1;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(ok >= 1, "some requests must be admitted");
    assert!(shed >= 1, "a 64-deep burst must overflow a 2-wide window");
    // The connection survived the shedding.
    assert!(client.degree(0).expect("still serving") >= 1);
    client.close();
    server.shutdown();
}

#[test]
fn forged_wait_tickets_error_instead_of_wedging_the_worker_pool() {
    let server = GraphServer::start(service_config(), NetConfig::loopback()).expect("start server");
    let client = RemoteClient::connect(server.local_addr()).expect("connect");
    let t = client.mutate(vec![Update::InsertEdge(0, 1)]).expect("seed");
    client.wait(&t).expect("honest wait");

    // Twice as many forged waits as there are service workers (4): if any
    // of them parked a worker on an unreachable drain target, the pool
    // would wedge for every tenant and the probe below would hang forever.
    let forged = sharded::Ticket::from_targets(vec![u64::MAX; 4]);
    let pending: Vec<_> = (0..8)
        .map(|_| {
            client
                .send(&Request::Wait {
                    ticket: forged.clone(),
                    deadline_ms: None,
                })
                .expect("send forged wait")
        })
        .collect();
    for p in pending {
        match p.wait().expect("reply arrives, never blocks") {
            Response::Error(_) => {}
            other => panic!("forged ticket must be rejected, got {other:?}"),
        }
    }
    // Every worker is still alive and serving.
    assert_eq!(client.degree(0).expect("pool survived"), 1);
    client.close();
    server.shutdown();
}

#[test]
fn reusing_an_inflight_request_id_is_a_protocol_error_hangup() {
    use net::wire::{put_request_frame, Frame, FrameBuffer, MAX_FRAME_LEN};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let server = GraphServer::start(service_config(), NetConfig::loopback()).expect("start server");
    let seeder = RemoteClient::connect(server.local_addr()).expect("connect seeder");
    let t = seeder
        .mutate((0..64u64).map(|v| Update::InsertEdge(v, v + 1)).collect())
        .expect("seed");
    seeder.wait(&t).expect("wait seed");
    seeder.close();

    // Hand-rolled client: two requests sharing id 7 in one write.  The
    // first (a heavy pagerank) is still in flight when the reader decodes
    // the second, so the reuse must be caught, answered with an unroutable
    // (id 0) protocol error, and the connection closed.
    let mut stream = TcpStream::connect(server.local_addr()).expect("raw connect");
    let mut bytes = Vec::new();
    put_request_frame(
        &mut bytes,
        7,
        &Request::Query(Query::Pagerank { iterations: 50_000 }),
    );
    put_request_frame(&mut bytes, 7, &Request::Query(Query::Stats));
    stream.write_all(&bytes).expect("write both frames");

    let mut frames = FrameBuffer::new(MAX_FRAME_LEN);
    let mut scratch = [0u8; 16 * 1024];
    let mut saw_protocol_error = false;
    loop {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break, // server hung up, as it must
            Ok(n) => frames.extend(&scratch[..n]),
        }
        while let Some(frame) = frames.next_frame().expect("server frames decode") {
            if let Frame::Response {
                id: 0,
                response: Response::Error(GraphError::Protocol(msg)),
            } = frame
            {
                assert!(msg.contains("7"), "unexpected protocol error: {msg}");
                saw_protocol_error = true;
            }
        }
    }
    assert!(
        saw_protocol_error,
        "duplicate id must be answered with an id-0 protocol error"
    );
    server.shutdown();
}

#[test]
fn server_shutdown_drains_and_clients_observe_closed() {
    let server = GraphServer::start(service_config(), NetConfig::loopback()).expect("start server");
    let client = RemoteClient::connect(server.local_addr()).expect("connect");
    let t = client
        .mutate(vec![Update::InsertEdge(0, 1)])
        .expect("mutate");
    client.wait(&t).expect("wait");
    server.shutdown();
    // The socket is gone; new requests fail with a transport-shaped error,
    // not a hang.
    let err = client.flush().expect_err("server is gone");
    assert!(
        matches!(err, GraphError::Closed | GraphError::Io(_)),
        "unexpected {err:?}"
    );
}

/// Satellite check for exactly-once ingest without any crash: the same
/// `(client_id, op_id)` submitted concurrently from two separate TCP
/// connections must apply exactly once — one submission wins the pipeline,
/// the other is acked with the winner's ticket and counted as a dedup hit.
#[test]
fn duplicate_tagged_submission_from_two_connections_applies_once() {
    let server = GraphServer::start(service_config(), NetConfig::loopback()).expect("start server");
    let addr = server.local_addr();
    let ops: Vec<Update> = (0..24u64)
        .map(|k| Update::InsertEdge(5, 100 + k % 12))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let ops = ops.clone();
            scope.spawn(move || {
                let client = RemoteClient::connect(addr).expect("connect");
                let ticket = client.mutate_as(7, 1, ops).expect("tagged mutate");
                client.wait(&ticket).expect("wait");
                client.close();
            });
        }
    });

    let client = RemoteClient::connect(addr).expect("connect");
    client.flush().expect("flush");

    // One application, not two: each of the 12 distinct neighbours shows up
    // exactly twice (the op vector itself names each twice), never four
    // times.
    let mut got = client.neighbors(5).expect("neighbors");
    got.sort_unstable();
    let mut want: Vec<u64> = (100..112).flat_map(|d| [d, d]).collect();
    want.sort_unstable();
    assert_eq!(got, want, "duplicate submission must apply exactly once");

    // The loser's ack was served from the ledger and counted.
    let metrics = client.metrics().expect("metrics");
    assert_eq!(
        metrics.counter("ingest_dedup_hits"),
        Some(1),
        "exactly one of the two submissions is a dedup hit"
    );

    // The op is now durably committed and detectably so across the wire;
    // a belt-and-braces durable retry becomes a no-op with an empty ticket.
    assert_eq!(
        client.probe_op(7, 1).expect("probe"),
        service::OpStatus::Committed
    );
    let replay = client
        .mutate_durable(7, 1, vec![Update::InsertEdge(5, 999)])
        .expect("durable retry");
    assert!(replay.is_empty(), "a committed op must not be re-applied");
    assert!(
        !client.neighbors(5).expect("neighbors").contains(&999),
        "durable retry of a committed op must be a no-op"
    );

    // Ops nobody ever submitted probe as unknown/not-committed, never panic.
    assert_eq!(
        client.probe_op(7, 2).expect("probe"),
        service::OpStatus::NotCommitted
    );
    assert_eq!(
        client.probe_op(99, 1).expect("probe"),
        service::OpStatus::Unknown
    );

    client.close();
    server.shutdown();
}

/// `connect_retry` rides out a server that comes up late, and gives up with
/// the transport error — not a hang — when nothing ever listens.
#[test]
fn connect_retry_bridges_a_late_server_and_bounds_a_dead_one() {
    // Nothing listens here: bounded attempts, then the last error.
    let dead = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let dead_addr = dead.local_addr().expect("addr");
    drop(dead);
    match RemoteClient::connect_retry(dead_addr, 3, Duration::from_millis(5)) {
        Err(GraphError::Io(_)) => {}
        Err(other) => panic!("unexpected {other:?}"),
        Ok(_) => panic!("no server must mean an error after the attempt budget"),
    }

    // A server that appears mid-backoff is reached by a later attempt.
    let server = GraphServer::start(service_config(), NetConfig::loopback()).expect("start server");
    let client = RemoteClient::connect_retry(server.local_addr(), 3, Duration::from_millis(5))
        .expect("connect_retry against a live server");
    client.flush().expect("flush");
    client.close();
    server.shutdown();
}
