//! The incremental analytics plane end-to-end: epoch deltas from
//! `UnifiedView::refreshed`, the incremental PageRank/CC kernels seeded
//! from the previous epoch's results, and the service's hit/fallback
//! accounting.
//!
//! The core contract, pinned at 1/2/4 shards across randomized
//! insert/delete bursts: after **every** epoch the incremental answer
//! equals the full CSR kernel's answer equals the in-memory
//! `ReferenceGraph` oracle (PageRank within 1e-9 per vertex, CC labels
//! exactly).  Deletion epochs additionally pin the declared fallbacks:
//! incremental CC declines (a lost edge can split a component) while
//! incremental PageRank absorbs them.

use analytics::{cc, cc_csr, pagerank_csr, pagerank_csr_recording, pagerank_incremental};
use dgap::{DynamicGraph, ReferenceGraph, Update};
use pmem::PmemConfig;
use service::{GraphService, Query, QueryResult, ServiceConfig};
use sharded::{ShardedConfig, ShardedGraph, UnifiedView};
use std::sync::Arc;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const N: u64 = 600;
const ITERS: usize = 20;

fn assert_ranks_within(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (v, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= tol, "{what}: vertex {v}: {x} vs {y}");
    }
}

/// Seed a ring over all N vertices (so the vertex range is stable and the
/// graph is connected enough to be interesting) plus pseudo-random chords.
fn seeded_graph(shards: usize, seed: u64) -> (ShardedGraph<dgap::Dgap>, ReferenceGraph) {
    let graph = ShardedGraph::create_dgap(shards, N as usize, 48 << 10, |_| {
        PmemConfig::with_capacity(64 << 20).persistence_tracking(false)
    })
    .expect("create sharded DGAP");
    let mut oracle = ReferenceGraph::new(N as usize);
    let insert = |g: &ShardedGraph<dgap::Dgap>, o: &mut ReferenceGraph, a: u64, b: u64| {
        g.insert_edge(a, b).expect("insert");
        g.insert_edge(b, a).expect("insert");
        o.add_edge(a, b);
        o.add_edge(b, a);
    };
    for v in 0..N {
        insert(&graph, &mut oracle, v, (v + 1) % N);
    }
    let mut x = seed;
    for _ in 0..N {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = (x >> 33) % N;
        let b = (x >> 11) % N;
        insert(&graph, &mut oracle, a, b);
    }
    (graph, oracle)
}

#[test]
fn incremental_kernels_match_full_and_oracle_across_random_bursts() {
    for shards in SHARD_COUNTS {
        let (graph, mut oracle) = seeded_graph(shards, 41 + shards as u64);
        let mut unified = UnifiedView::unify(&graph.consistent_view_arc());
        let mut rank_cache = pagerank_csr_recording(&unified, ITERS);
        let mut labels = cc_csr(&unified);

        let mut x = 1000 + shards as u64;
        for epoch in 0..6 {
            // Bursts 0..3 are insert-only; 4 and 5 also delete ring edges
            // (guaranteed present and never re-inserted, so the delta's
            // deletion flag is deterministic).
            let deleting = epoch >= 4;
            let mut changed_oracle: Vec<u64> = Vec::new();
            for _ in 0..4 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (x >> 33) % N;
                let b = (x >> 11) % N;
                oracle.add_edge(a, b);
                oracle.add_edge(b, a);
                graph.insert_edge(a, b).expect("insert");
                graph.insert_edge(b, a).expect("insert");
                changed_oracle.extend([a, b]);
            }
            if deleting {
                for &a in &[37 + 100 * epoch as u64, 61 + 100 * epoch as u64] {
                    let b = a + 1;
                    assert!(oracle.remove_edge(a, b));
                    oracle.remove_edge(b, a);
                    assert!(graph.delete_edge(a, b).expect("delete"));
                    assert!(graph.delete_edge(b, a).expect("delete"));
                    changed_oracle.extend([a, b]);
                }
            }
            changed_oracle.sort_unstable();
            changed_oracle.dedup();

            let next = unified.refreshed(&graph.consistent_view_arc());
            let delta = next.delta().expect("refreshed views carry a delta");
            // The delta covers every vertex the burst touched (log-structured
            // appends may flag more vertices in re-merged shards, never
            // fewer — and only ones whose bytes actually changed).
            for &v in &changed_oracle {
                assert!(
                    delta.changed_vertices().contains(&v),
                    "{shards} shards, epoch {epoch}: burst vertex {v} missing from delta"
                );
            }
            assert_eq!(
                delta.has_deletions(),
                deleting,
                "{shards} shards, epoch {epoch}: deletion flag"
            );

            // PageRank: incremental == full == oracle, whether or not the
            // burst deleted edges.
            let run = pagerank_incremental(&next, &rank_cache, delta.changed_vertices())
                .expect("small burst stays incremental");
            let full = pagerank_csr(&next, ITERS);
            assert_ranks_within(run.cache.ranks(), &full, 1e-9, "incremental vs full");
            let oracle_ranks = analytics::pagerank(&oracle, ITERS);
            assert_ranks_within(&full, &oracle_ranks, 1e-12, "full vs oracle");
            assert!(run.frontier_peak >= 1);
            rank_cache = run.cache;

            // CC: exact on insert-only epochs, declared fallback on
            // deletions.
            let incr = analytics::cc_incremental(
                &next,
                &labels,
                delta.changed_vertices(),
                delta.has_deletions(),
            );
            labels = cc_csr(&next);
            assert_eq!(labels, cc(&oracle), "{shards} shards, epoch {epoch}");
            match incr {
                Some(merged) => {
                    assert!(!deleting);
                    assert_eq!(
                        merged, labels,
                        "{shards} shards, epoch {epoch}: incremental CC exact"
                    );
                }
                None => assert!(
                    deleting,
                    "{shards} shards, epoch {epoch}: CC only declines deletions"
                ),
            }
            unified = next;
        }
    }
}

#[test]
fn a_noop_epoch_yields_an_empty_delta_and_a_frontierless_replay() {
    let (graph, _oracle) = seeded_graph(2, 7);
    let unified = UnifiedView::unify(&graph.consistent_view_arc());
    let cache = pagerank_csr_recording(&unified, ITERS);
    // Insert + delete of the same edge nets out to byte-identical shards.
    graph.insert_edge(3, 500).expect("insert");
    assert!(graph.delete_edge(3, 500).expect("delete"));
    let next = unified.refreshed(&graph.consistent_view_arc());
    let delta = next.delta().expect("delta present");
    assert!(delta.is_empty(), "no adjacency changed");
    assert!(!delta.has_deletions());
    let run = pagerank_incremental(&next, &cache, delta.changed_vertices()).expect("no-op");
    assert_eq!(run.cache.ranks(), cache.ranks());
    assert_eq!(run.frontier_peak, 0);
    assert_eq!(run.recomputed, 0);
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        sharded: ShardedConfig::small_test(),
        workers: 2,
        num_vertices: 256,
        num_edges: 1 << 14,
        pool_bytes: 24 << 20,
        ..ServiceConfig::default()
    }
}

/// Seed a ring over the service's full vertex range, symmetrically.
fn seed_service_ring(client: &service::GraphClient, n: u64) {
    let mut ops = Vec::new();
    for v in 0..n {
        ops.push(Update::InsertEdge(v, (v + 1) % n));
        ops.push(Update::InsertEdge((v + 1) % n, v));
    }
    let t = client.mutate(ops).expect("seed");
    client.wait(&t).expect("wait seed");
}

#[test]
fn a_single_shard_burst_advances_the_incremental_hit_counters() {
    let service = GraphService::start(service_config()).unwrap();
    let client = service.client();
    seed_service_ring(&client, 256);
    // Warm the analytics cache (cold computes: neither hit nor fallback).
    let _ = client.query(Query::Pagerank { iterations: ITERS }).unwrap();
    let _ = client.query(Query::ConnectedComponents).unwrap();
    let before = service.metrics();
    assert_eq!(before.counter("analytics_incremental_hits"), Some(0));
    assert_eq!(before.counter("analytics_incremental_fallbacks"), Some(0));

    // A burst confined to one shard (both endpoints on vertex 10's shard
    // would be ideal, but any small symmetric insert keeps the delta tiny).
    let graph = Arc::clone(service.graph());
    let shard = graph.shard_of(10);
    let partner = (0..256u64)
        .find(|&v| v != 10 && graph.shard_of(v) == shard)
        .expect("another vertex on the same shard");
    let t = client
        .mutate(vec![
            Update::InsertEdge(10, partner),
            Update::InsertEdge(partner, 10),
        ])
        .unwrap();
    client.wait(&t).unwrap();

    let incr = match client.query(Query::Pagerank { iterations: ITERS }).unwrap() {
        QueryResult::Pagerank(r) => r,
        other => panic!("unexpected {other:?}"),
    };
    let _ = client.query(Query::ConnectedComponents).unwrap();
    let after = service.metrics();
    assert_eq!(
        after.counter("analytics_incremental_hits"),
        Some(2),
        "both kernels went incremental"
    );
    assert_eq!(after.counter("analytics_incremental_fallbacks"), Some(0));
    let frontier = after
        .histogram("service_incremental_frontier_size")
        .expect("frontier histogram registered");
    assert!(frontier.count >= 2, "both kernels recorded a frontier");
    assert!(frontier.sum >= 1, "the burst produced a non-empty frontier");

    // Parity with a cold full recompute of the same epoch.
    let full = pagerank_csr(&*service.current_unified(), ITERS);
    assert_ranks_within(&incr, &full, 1e-9, "service incremental vs full");
    service.shutdown();
}

#[test]
fn a_massive_burst_triggers_the_full_kernel_fallback() {
    let service = GraphService::start(service_config()).unwrap();
    let client = service.client();
    seed_service_ring(&client, 256);
    let _ = client.query(Query::Pagerank { iterations: ITERS }).unwrap();
    let _ = client.query(Query::ConnectedComponents).unwrap();

    // Delete ring edges across most of the vertex range: the changed set
    // blows through the fallback fraction for PageRank, and the deletions
    // force CC back to the full kernel regardless of size.
    let mut ops = Vec::new();
    for v in (0..200u64).step_by(2) {
        ops.push(Update::DeleteEdge(v, v + 1));
        ops.push(Update::DeleteEdge(v + 1, v));
    }
    let t = client.mutate(ops).unwrap();
    client.wait(&t).unwrap();

    let _ = client.query(Query::Pagerank { iterations: ITERS }).unwrap();
    let labels = match client.query(Query::ConnectedComponents).unwrap() {
        QueryResult::ConnectedComponents(l) => l,
        other => panic!("unexpected {other:?}"),
    };
    let snap = service.metrics();
    assert_eq!(
        snap.counter("analytics_incremental_fallbacks"),
        Some(2),
        "both kernels fell back to the full recompute"
    );
    assert_eq!(snap.counter("analytics_incremental_hits"), Some(0));
    // And the fallback answers are still exact.
    assert_eq!(labels, cc_csr(&*service.current_unified()));
    service.shutdown();
}
