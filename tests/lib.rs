//! Shared helpers for the cross-crate integration tests.

use dgap::{GraphView, ReferenceGraph, VertexId};

/// Deterministic pseudo-random edge stream over `num_vertices` vertices.
pub fn random_edges(num_vertices: u64, num_edges: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut x = seed | 1;
    (0..num_edges)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = (x >> 33) % num_vertices;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = (x >> 33) % num_vertices;
            (src, dst)
        })
        .collect()
}

/// Build the in-memory oracle graph for an edge stream.
pub fn reference_of(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> ReferenceGraph {
    let mut g = ReferenceGraph::new(num_vertices);
    for &(s, d) in edges {
        g.add_edge(s, d);
    }
    g
}

/// Assert that `view` exposes exactly the same adjacency lists as `oracle`.
pub fn assert_same_graph(view: &impl GraphView, oracle: &ReferenceGraph, context: &str) {
    assert_eq!(
        view.num_vertices(),
        oracle.num_vertices(),
        "{context}: vertex count"
    );
    for v in 0..oracle.num_vertices() as u64 {
        assert_eq!(
            view.neighbors(v),
            oracle.neighbors(v),
            "{context}: neighbours of {v}"
        );
    }
}
