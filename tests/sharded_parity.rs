//! Parity: `ShardedGraph<Dgap>` must expose exactly the same graph through
//! `GraphView` — degrees, adjacency, analytics results — as a single `Dgap`
//! and as the in-memory `ReferenceGraph` oracle, for every shard count.

use analytics::pagerank;
use dgap::{Dgap, DgapConfig, DynamicGraph, GraphView, ReferenceGraph, SnapshotSource};
use pmem::{PmemConfig, PmemPool};
use sharded::{IngestPipeline, ShardedConfig, ShardedGraph};
use std::sync::Arc;
use workloads::{EdgeList, GeneratorConfig, GraphKind};

const NUM_VERTICES: usize = 256;
const NUM_EDGES: usize = 4096;

fn rmat_workload() -> EdgeList {
    GeneratorConfig::new(NUM_VERTICES, NUM_EDGES, GraphKind::RMat, 0xD6A9).generate()
}

fn test_pool_config() -> PmemConfig {
    PmemConfig::with_capacity(48 << 20).persistence_tracking(false)
}

fn single_dgap(list: &EdgeList) -> Dgap {
    let pool = Arc::new(PmemPool::new(test_pool_config()));
    let g = Dgap::create(
        pool,
        DgapConfig::for_graph(list.num_vertices, list.num_edges()),
    )
    .expect("create single DGAP");
    for &(s, d) in &list.edges {
        g.insert_edge(s, d).expect("insert");
    }
    g.flush();
    g
}

fn sharded_dgap(list: &EdgeList, shards: usize) -> Arc<ShardedGraph<Dgap>> {
    let graph = Arc::new(
        ShardedGraph::create_dgap(shards, list.num_vertices, list.num_edges(), |_| {
            test_pool_config()
        })
        .expect("create sharded DGAP"),
    );
    let cfg = ShardedConfig::builder()
        .shards(shards)
        .queue_capacity(8)
        .batch_size(512)
        .build();
    let pipeline = IngestPipeline::new(Arc::clone(&graph), &cfg);
    for batch in list.batches(cfg.batch_size) {
        pipeline.submit_edges(batch).expect("submit");
    }
    pipeline.flush_all().expect("flush_all");
    let stats = pipeline.stats();
    assert_eq!(stats.ops_submitted() as usize, list.num_edges());
    assert_eq!(stats.ops_applied() as usize, list.num_edges());
    assert_eq!(stats.op_errors(), 0);
    graph
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

#[test]
fn sharded_matches_single_dgap_and_reference() {
    let list = rmat_workload();
    let mut oracle = ReferenceGraph::new(list.num_vertices);
    for &(s, d) in &list.edges {
        oracle.add_edge(s, d);
    }
    let single = single_dgap(&list);
    let single_view = single.consistent_view();

    for shards in [1usize, 2, 4] {
        let sharded = sharded_dgap(&list, shards);
        let view = sharded.consistent_view();

        assert_eq!(
            view.num_vertices(),
            oracle.num_vertices(),
            "{shards} shards"
        );
        assert_eq!(view.num_edges(), oracle.num_edges(), "{shards} shards");
        assert_eq!(sharded.num_edges(), single.num_edges(), "{shards} shards");

        for v in 0..list.num_vertices as u64 {
            assert_eq!(
                view.degree(v),
                oracle.degree(v),
                "{shards} shards: degree of {v}"
            );
            assert_eq!(
                sorted(view.neighbors(v)),
                sorted(oracle.neighbors(v)),
                "{shards} shards: neighbours of {v}"
            );
            assert_eq!(
                sorted(view.neighbors(v)),
                sorted(single_view.neighbors(v)),
                "{shards} shards vs single DGAP: neighbours of {v}"
            );
        }
    }
}

#[test]
fn pagerank_over_shards_matches_reference_within_tolerance() {
    let list = rmat_workload();
    let mut oracle = ReferenceGraph::new(list.num_vertices);
    for &(s, d) in &list.edges {
        oracle.add_edge(s, d);
    }
    let reference_ranks = pagerank(&oracle, 20);

    for shards in [1usize, 2, 4] {
        let sharded = sharded_dgap(&list, shards);
        let view = sharded.consistent_view();
        let ranks = pagerank(&view, 20);
        assert_eq!(ranks.len(), reference_ranks.len());
        for (v, (a, b)) in ranks.iter().zip(&reference_ranks).enumerate() {
            assert!(
                (a - b).abs() < 1e-6,
                "{shards} shards: pagerank of vertex {v}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn per_vertex_insertion_order_is_preserved_through_the_pipeline() {
    // All edges of one source vertex land in one shard and are drained by a
    // single worker, so a single producer's per-vertex order must survive.
    let list = rmat_workload();
    let mut oracle = ReferenceGraph::new(list.num_vertices);
    for &(s, d) in &list.edges {
        oracle.add_edge(s, d);
    }
    let sharded = sharded_dgap(&list, 4);
    let view = sharded.consistent_view();
    for v in 0..list.num_vertices as u64 {
        assert_eq!(
            view.neighbors(v),
            oracle.neighbors(v),
            "insertion order of vertex {v}"
        );
    }
}
