//! Media-fault fuzzing for the end-to-end integrity plane.
//!
//! Each trial builds a sharded engine, ingests a seeded stream of tagged
//! batches, optionally shuts the shards down gracefully (even seeds) or
//! leaves them in the crash state (odd seeds), and then injects seeded
//! media faults — single bit flips and torn 64-byte cache lines — into
//! byte ranges the verify pass is documented to cover
//! ([`Dgap::covered_regions`] plus the durable client table).  The pools
//! are then reopened through [`GraphService::open`], which runs the full
//! verification pass (including the edge-array re-checksum), and the trial
//! demands the integrity contract:
//!
//! * shards whose damage was repairable (or harmless) recover to **exact**
//!   [`ReferenceGraph`] parity;
//! * shards whose damage is fatal are **quarantined** with a structured
//!   reason, every read rooted there answers [`GraphError::Degraded`],
//!   whole-graph analytics come back wrapped in [`QueryResult::Partial`],
//!   and mutations routed there are rejected with the retryable error;
//! * in no run does any query silently answer from damaged state.
//!
//! The default matrix (1/2/4 shards x `CORRUPTION_FUZZ_SEEDS` trials x
//! `FAULTS_PER_TRIAL` faults) injects 108 distinct faults per run.
//! `CORRUPTION_FUZZ_SEED` pins the base seed (CI does);
//! `CORRUPTION_FUZZ_SEEDS` scales the per-shard-count trial count.

use std::collections::BTreeSet;
use std::sync::Arc;

use dgap::{GraphError, GraphView, ReferenceGraph, Update, VertexId};
use obs::Registry;
use pmem::{CostModel, PmemConfig, PmemPool};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use service::{GraphService, Query, QueryResult, ServiceConfig};
use sharded::{ClientTable, IngestPipeline, ShardedConfig, ShardedGraph};

const NUM_VERTICES: usize = 160;
const NUM_EDGES: usize = 1 << 14;
const POOL_BYTES: usize = 24 << 20;
/// Tagged batches per client per trial.
const OPS_PER_CLIENT: usize = 12;
const NUM_CLIENTS: u64 = 2;
/// Seeded media faults injected per trial.
const FAULTS_PER_TRIAL: usize = 3;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn service_config(num_shards: usize) -> ServiceConfig {
    ServiceConfig {
        sharded: ShardedConfig::builder()
            .shards(num_shards)
            .batch_size(16)
            .build(),
        workers: 2,
        num_vertices: NUM_VERTICES,
        num_edges: NUM_EDGES,
        pool_bytes: POOL_BYTES,
        ..ServiceConfig::default()
    }
}

/// One client's scripted life: `batches[k]` is the update vector it submits
/// as op id `k + 1`.
struct ClientScript {
    client_id: u64,
    batches: Vec<Vec<Update>>,
}

/// Two clients with disjoint source-vertex sets (even vs odd), so the final
/// graph is independent of batch interleaving and the oracle stays exact
/// (same construction as `crash_fuzz.rs`).
fn scripts(rng: &mut ChaCha8Rng) -> Vec<ClientScript> {
    let n = NUM_VERTICES as u64;
    (0..NUM_CLIENTS)
        .map(|c| {
            let mut live: Vec<(u64, u64)> = Vec::new();
            let batches = (0..OPS_PER_CLIENT)
                .map(|_| {
                    let len = rng.gen_range(1usize..6);
                    let mut ops = Vec::with_capacity(len);
                    for _ in 0..len {
                        let roll = rng.gen_range(0u32..10);
                        if roll < 2 && !live.is_empty() {
                            let (s, d) = live.swap_remove(rng.gen_range(0usize..live.len()));
                            ops.push(Update::DeleteEdge(s, d));
                        } else {
                            let s = rng.gen_range(0u64..n / 2) * 2 + c;
                            let d = rng.gen_range(0u64..n);
                            if roll == 2 || live.contains(&(s, d)) {
                                ops.push(Update::InsertVertex(d));
                            } else {
                                live.push((s, d));
                                ops.push(Update::InsertEdge(s, d));
                            }
                        }
                    }
                    ops
                })
                .collect();
            ClientScript {
                client_id: c + 1,
                batches,
            }
        })
        .collect()
}

fn oracle_after(scripts: &[ClientScript]) -> ReferenceGraph {
    let mut oracle = ReferenceGraph::new(NUM_VERTICES);
    for script in scripts {
        for batch in &script.batches {
            for &op in batch {
                match op {
                    Update::InsertVertex(_) => {}
                    Update::InsertEdge(s, d) => oracle.add_edge(s, d),
                    Update::DeleteEdge(s, d) => {
                        oracle.remove_edge(s, d);
                    }
                }
            }
        }
    }
    oracle
}

/// Damage one seeded byte (bit flip) or one seeded 64-byte line (torn
/// store) inside `[off, off + len)`.  Returns a description for failure
/// context.
fn inject(pool: &PmemPool, rng: &mut ChaCha8Rng, off: u64, len: u64) -> String {
    let first_line = off.div_ceil(64) * 64;
    let lines = (off + len).saturating_sub(first_line) / 64;
    if lines > 0 && rng.gen_bool(0.35) {
        let line = first_line + 64 * rng.gen_range(0..lines);
        pool.inject_torn_line(line, rng.gen());
        format!("torn line @ +{line}")
    } else {
        let byte = off + rng.gen_range(0..len);
        let bit = rng.gen_range(0u32..8);
        pool.inject_bit_flip(byte, bit);
        format!("bit flip @ +{byte} bit {bit}")
    }
}

/// One corruption trial: build, (maybe) shut down, damage, reopen, and
/// hold the repaired-or-quarantined contract.  Returns the number of
/// shards that were quarantined.
fn corruption_trial(num_shards: usize, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graceful = seed.is_multiple_of(2);
    let plan = scripts(&mut rng);

    // --- Phase 1: build the engine and ingest the scripted batches. ---
    let config = service_config(num_shards);
    let graph = Arc::new(
        ShardedGraph::create_dgap(num_shards, NUM_VERTICES, NUM_EDGES, |_| {
            PmemConfig::with_capacity(POOL_BYTES).cost_model(CostModel::zero())
        })
        .expect("create sharded dgap"),
    );
    let pools: Vec<Arc<PmemPool>> = (0..num_shards)
        .map(|i| Arc::clone(graph.shard(i).pool()))
        .collect();
    let tables: Vec<ClientTable> = pools
        .iter()
        .map(|pool| ClientTable::create_or_open(pool, 0).expect("create client table"))
        .collect();
    let registry = Arc::new(Registry::new());
    let pipeline = IngestPipeline::with_client_tables(
        Arc::clone(&graph),
        &config.sharded,
        Arc::clone(&registry),
        tables,
    );
    for k in 0..OPS_PER_CLIENT {
        for script in &plan {
            pipeline
                .submit_tagged(&script.batches[k], script.client_id, (k + 1) as u64)
                .expect("submit");
        }
    }
    pipeline.flush_all().expect("flush");
    drop(pipeline);
    if graceful {
        for i in 0..num_shards {
            graph.shard(i).shutdown().expect("graceful shard shutdown");
        }
    }

    // --- Phase 2: aim seeded faults at bytes the verify pass covers.
    // Snapshot every shard's target list *before* the first fault lands:
    // region enumeration reads offsets from the pool, and damaging the
    // superblock first would make later enumerations chase garbage. ---
    let targets_per_shard: Vec<Vec<(u64, u64)>> = (0..num_shards)
        .map(|shard| {
            let mut targets: Vec<(u64, u64)> = graph
                .shard(shard)
                .covered_regions()
                .into_iter()
                .filter(|r| (graceful || r.covered_after_crash) && r.len > 0)
                .map(|r| (r.offset, r.len))
                .collect();
            if let Some((off, len)) = ClientTable::region(&pools[shard]) {
                targets.push((off, len));
            }
            targets
        })
        .collect();
    let mut victims: BTreeSet<usize> = BTreeSet::new();
    let mut faults: Vec<String> = Vec::new();
    for _ in 0..FAULTS_PER_TRIAL {
        let shard = rng.gen_range(0usize..num_shards);
        let targets = &targets_per_shard[shard];
        let (off, len) = targets[rng.gen_range(0usize..targets.len())];
        let what = inject(&pools[shard], &mut rng, off, len);
        faults.push(format!("shard {shard}: {what}"));
        victims.insert(shard);
    }
    drop(graph);

    // --- Phase 3: reopen through the service — it must come up (degraded
    // at worst), never crash, and never serve damaged state. ---
    let context = || format!("shards={num_shards} seed={seed} graceful={graceful} [{faults:?}]");
    let (service, recovery) = GraphService::open(service_config(num_shards), pools)
        .unwrap_or_else(|e| panic!("reopen must quarantine, not fail: {e} ({})", context()));
    let quarantined: BTreeSet<usize> = recovery.quarantined_shards().into_iter().collect();
    assert!(
        quarantined.iter().all(|s| victims.contains(s)),
        "quarantined undamaged shard: {quarantined:?} vs {victims:?} ({})",
        context()
    );
    for (shard, reason) in recovery.quarantine_reasons() {
        assert!(
            !reason.is_empty(),
            "shard {shard} quarantined without a reason ({})",
            context()
        );
    }

    // --- Phase 4: the contract.  Healthy shards answer with exact oracle
    // parity; quarantined shards refuse rooted reads with the structured
    // retryable error — never a silently wrong answer. ---
    let oracle = oracle_after(&plan);
    let client = service.client();
    let sharded = service.graph();
    let degraded_list: Vec<usize> = quarantined.iter().copied().collect();
    for v in 0..NUM_VERTICES as VertexId {
        if quarantined.contains(&sharded.shard_of(v)) {
            match client.degree(v) {
                Err(GraphError::Degraded { shards }) => assert_eq!(
                    shards,
                    degraded_list,
                    "degraded error names the wrong shards ({})",
                    context()
                ),
                other => panic!(
                    "quarantined read must refuse, got {other:?} ({})",
                    context()
                ),
            }
        } else {
            let mut got = client.neighbors(v).expect("healthy neighbors");
            let mut want = oracle.neighbors(v);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "neighbours of {v} after reopen ({})", context());
        }
    }
    if quarantined.is_empty() {
        assert!(
            recovery.all_normal() || recovery.crashed_shards() > 0,
            "undamaged-path sanity ({})",
            context()
        );
    } else {
        // Whole-graph analytics must carry the partial annotation.
        match client.query(Query::TriangleCount).expect("analytics") {
            QueryResult::Partial {
                degraded_shards, ..
            } => assert_eq!(degraded_shards, degraded_list, "{}", context()),
            other => panic!("analytics must be Partial, got {other:?} ({})", context()),
        }
        // Mutations routed at a quarantined shard are rejected retryably.
        let vq = (0..NUM_VERTICES as VertexId)
            .find(|&v| quarantined.contains(&sharded.shard_of(v)))
            .expect("a quarantined shard owns some vertex");
        match client.mutate(vec![Update::InsertEdge(vq, (vq + 1) % NUM_VERTICES as u64)]) {
            Err(GraphError::Degraded { shards }) => assert_eq!(shards, degraded_list),
            other => panic!(
                "quarantined write must refuse, got {other:?} ({})",
                context()
            ),
        }
        assert_eq!(service.stats().degraded_shards, quarantined.len());
    }
    let count = quarantined.len();
    service.shutdown();
    count
}

fn run_matrix(num_shards: usize) {
    let base = env_u64("CORRUPTION_FUZZ_SEED", 0xC0FF_EE26);
    let trials = env_u64("CORRUPTION_FUZZ_SEEDS", 12);
    let mut quarantines = 0usize;
    for round in 0..trials {
        let seed = base ^ ((num_shards as u64) << 32) ^ round;
        quarantines += corruption_trial(num_shards, seed);
    }
    // The matrix must actually exercise both arms of the contract: some
    // faults land repairable (or harmless), some must be fatal enough to
    // quarantine.  All-repaired across a whole matrix would mean the
    // faults are not reaching live state.
    assert!(
        quarantines > 0,
        "shards={num_shards}: {trials} trials x {FAULTS_PER_TRIAL} faults never quarantined"
    );
}

#[test]
fn corruption_fuzz_one_shard() {
    run_matrix(1);
}

#[test]
fn corruption_fuzz_two_shards() {
    run_matrix(2);
}

#[test]
fn corruption_fuzz_four_shards() {
    run_matrix(4);
}
