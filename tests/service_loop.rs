//! The service front-end under concurrent clients: mixed mutations
//! (inserts *and* deletes) and queries from four `GraphClient`s, with
//! read-your-writes via tickets and exact oracle parity after `Flush`.

use dgap::{GraphView, ReferenceGraph, Update};
use service::{GraphService, Query, QueryResult, ServiceConfig};
use sharded::ShardedConfig;

const NUM_CLIENTS: u64 = 4;
const NUM_VERTICES: u64 = 128;

/// The deterministic op stream of one client.  Clients own disjoint source
/// vertices (v ≡ client mod NUM_CLIENTS) and never insert duplicate edges,
/// so per-vertex results are exact — order included — regardless of how
/// the four streams interleave.
fn client_ops(client: u64) -> Vec<Update> {
    let mut ops = Vec::new();
    for v in (client..NUM_VERTICES).step_by(NUM_CLIENTS as usize) {
        let degree = v % 6 + 1;
        for k in 1..=degree {
            ops.push(Update::InsertEdge(v, (v + k) % NUM_VERTICES));
        }
        // Delete every other inserted edge (the odd offsets).
        for k in (1..=degree).filter(|k| k % 2 == 1) {
            ops.push(Update::DeleteEdge(v, (v + k) % NUM_VERTICES));
        }
    }
    ops
}

/// Apply one client's stream to the oracle.
fn apply_to_oracle(oracle: &mut ReferenceGraph, ops: &[Update]) {
    for &op in ops {
        match op {
            Update::InsertVertex(_) => {}
            Update::InsertEdge(s, d) => oracle.add_edge(s, d),
            Update::DeleteEdge(s, d) => {
                oracle.remove_edge(s, d);
            }
        }
    }
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        sharded: ShardedConfig::builder()
            .shards(4)
            .queue_capacity(4) // tiny queues: backpressure must engage
            .batch_size(32)
            .build(),
        workers: 4,
        num_vertices: NUM_VERTICES as usize,
        num_edges: 1 << 14,
        pool_bytes: 24 << 20,
        ..ServiceConfig::default()
    }
}

#[test]
fn four_concurrent_clients_mixed_traffic_matches_the_oracle() {
    let service = GraphService::start(service_config()).expect("start service");

    std::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let client = service.client();
            scope.spawn(move || {
                let ops = client_ops(c);
                let mut ticket = sharded::Ticket::empty();
                for (i, chunk) in ops.chunks(32).enumerate() {
                    let t = client.mutate(chunk.to_vec()).expect("mutate");
                    ticket.merge(&t);
                    if i % 4 == 0 {
                        // Interleaved queries must answer (values race with
                        // other clients, so only sanity is checked here).
                        let d = client.degree(c).expect("mid-stream degree");
                        assert!(d <= NUM_VERTICES as usize);
                    }
                }
                // Read-your-writes: wait on the merged ticket, then verify
                // every owned vertex — no flush_all anywhere in this path.
                client.wait(&ticket).expect("wait");
                let mut oracle = ReferenceGraph::new(NUM_VERTICES as usize);
                apply_to_oracle(&mut oracle, &ops);
                for v in (c..NUM_VERTICES).step_by(NUM_CLIENTS as usize) {
                    assert_eq!(
                        client.neighbors(v).expect("own neighbors"),
                        oracle.neighbors(v),
                        "client {c}: own writes on vertex {v} after ticket wait"
                    );
                }
            });
        }
    });

    // Global barrier, then exact parity with the union oracle.
    let client = service.client();
    client.flush().expect("flush");
    let mut oracle = ReferenceGraph::new(NUM_VERTICES as usize);
    for c in 0..NUM_CLIENTS {
        apply_to_oracle(&mut oracle, &client_ops(c));
    }
    for v in 0..NUM_VERTICES {
        assert_eq!(
            client.degree(v).expect("degree"),
            oracle.degree(v),
            "degree of {v}"
        );
        assert_eq!(
            client.neighbors(v).expect("neighbors"),
            oracle.neighbors(v),
            "neighbours of {v}"
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.num_edges, GraphView::num_edges(&oracle));
    assert!(
        stats.deletes_applied > 0,
        "the workload must exercise deletes"
    );
    assert_eq!(stats.ops_submitted, stats.ops_applied);

    // Analytics parity over the same service snapshot.
    match client
        .query(Query::Pagerank { iterations: 20 })
        .expect("pagerank")
    {
        QueryResult::Pagerank(ranks) => {
            let reference = analytics::pagerank(&oracle, 20);
            assert_eq!(ranks.len(), reference.len());
            for (v, (a, b)) in ranks.iter().zip(&reference).enumerate() {
                assert!((a - b).abs() < 1e-6, "pagerank of {v}: {a} vs {b}");
            }
        }
        other => panic!("unexpected {other:?}"),
    }
    service.shutdown();
}

#[test]
fn backend_errors_surface_as_responses_and_do_not_kill_the_loop() {
    // Tiny per-shard pools: exhausting them is the point.  `start` itself
    // needs enough room for the initial CSR, so probe upwards.
    let service = [4usize, 8, 16]
        .iter()
        .find_map(|&mb| {
            GraphService::start(ServiceConfig {
                sharded: ShardedConfig::builder().shards(1).build(),
                workers: 2,
                num_vertices: 256,
                num_edges: 1 << 14,
                pool_bytes: mb << 20,
                ..ServiceConfig::default()
            })
            .ok()
        })
        .expect("some pool size admits the initial CSR");
    let client = service.client();

    // Hammer the single shard until the backend starts rejecting inserts.
    let mut saw_error = None;
    for round in 0..300 {
        let ops: Vec<Update> = (0..1024u64)
            .map(|k| Update::InsertEdge(k % 256, (k + round) % 256))
            .collect();
        client
            .mutate(ops)
            .expect("the pipeline keeps accepting batches");
        if let Err(err) = client.flush() {
            saw_error = Some(err);
            break;
        }
    }
    let err = saw_error.expect("the tiny pool must eventually reject inserts");
    assert!(
        matches!(err, dgap::GraphError::OutOfSpace(_)),
        "expected OutOfSpace, got {err}"
    );

    // The error came back as a structured per-request response; the loop
    // and the snapshot path must still be alive for everyone.
    let other = client.clone();
    assert!(other.degree(0).expect("queries still served") > 0);
    other
        .mutate(vec![Update::DeleteEdge(0, 1)])
        .expect("mutations still accepted after another request failed");
    service.shutdown();
}

/// PR 3's incremental epoch cache: a write burst confined to one shard
/// must re-capture only that shard — every untouched shard's materialised
/// `Arc<FrozenView>` is carried over pointer-identical from the previous
/// epoch, and the refresh accounting says exactly one shard was captured.
#[test]
fn incremental_refresh_reuses_untouched_shard_snapshots() {
    let service = GraphService::start(ServiceConfig {
        sharded: ShardedConfig::builder().shards(4).build(),
        workers: 2,
        num_vertices: 256,
        num_edges: 1 << 14,
        pool_bytes: 24 << 20,
        ..ServiceConfig::default()
    })
    .expect("start service");
    let client = service.client();
    let graph = service.graph();
    let shards = graph.num_shards();

    // Seed every shard so each has a non-empty snapshot.
    let mut seed = Vec::new();
    for v in 0..64u64 {
        seed.push(Update::InsertEdge(v, (v + 1) % 64));
    }
    let t = client.mutate(seed).expect("seed");
    client.wait(&t).expect("wait");
    assert!(client.degree(0).expect("warm the cache") > 0);
    let before = service.current_view();
    let warm_stats = service.stats();

    // Ten writes, all owned by vertex 0's shard.
    let target = graph.shard_of(0);
    let burst: Vec<Update> = (0..10u64).map(|k| Update::InsertEdge(0, 100 + k)).collect();
    let t = client.mutate(burst).expect("burst");
    client.wait(&t).expect("wait");
    let after = service.current_view(); // refreshes the cache
    let stats_after = service.stats();

    for shard in 0..shards {
        let reused =
            std::sync::Arc::ptr_eq(&before.shard_view_arc(shard), &after.shard_view_arc(shard));
        if shard == target {
            assert!(!reused, "written shard {shard} must be re-captured");
        } else {
            assert!(reused, "untouched shard {shard} must reuse its snapshot");
        }
    }
    // The burst's refresh captured exactly one of the four shards: O(one
    // shard), not O(all shards).
    assert_eq!(
        stats_after.shard_captures - warm_stats.shard_captures,
        1,
        "single-shard burst must cost exactly one shard capture"
    );
    assert_eq!(
        stats_after.snapshot_refreshes - warm_stats.snapshot_refreshes,
        1
    );
    // And the post-burst epoch is correct.
    assert_eq!(after.degree(0), 1 + 10);
    service.shutdown();
}
