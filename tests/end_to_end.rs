//! End-to-end integration: every system ingests the same workload and every
//! analytics kernel produces the same answers on every system's snapshot.

use analytics::{bfs, cc, pagerank};
use baselines::{Bal, GraphOneFd, Llama, PmCsr, XpGraph};
use dgap::{Dgap, DgapConfig, DynamicGraph, GraphView, SnapshotSource};
use dgap_integration_tests::{assert_same_graph, random_edges, reference_of};
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;

const NV: usize = 96;
const NE: usize = 4_000;

fn pool() -> Arc<PmemPool> {
    Arc::new(PmemPool::new(
        PmemConfig::with_capacity(64 << 20).persistence_tracking(false),
    ))
}

#[test]
fn every_system_serves_the_same_graph() {
    let edges = random_edges(NV as u64, NE, 0xfeed);
    let oracle = reference_of(NV, &edges);

    let dgap = Dgap::create(pool(), DgapConfig::for_graph(NV, NE)).unwrap();
    let bal = Bal::new(pool(), NV);
    let llama = Llama::new(pool(), NV, NE / 100);
    let graphone = GraphOneFd::new(pool(), NV, 1 << 10);
    let xpgraph = XpGraph::new(pool(), NV, 1 << 8).unwrap();

    let systems: Vec<&dyn DynamicGraph> = vec![&dgap, &bal, &llama, &graphone, &xpgraph];
    for sys in &systems {
        for &(s, d) in &edges {
            sys.insert_edge(s, d).unwrap();
        }
        sys.flush();
        assert_eq!(sys.num_edges(), NE, "{}", sys.system_name());
    }

    assert_same_graph(&dgap.consistent_view(), &oracle, "DGAP");
    assert_same_graph(&SnapshotSource::consistent_view(&bal), &oracle, "BAL");
    assert_same_graph(&SnapshotSource::consistent_view(&llama), &oracle, "LLAMA");
    assert_same_graph(
        &SnapshotSource::consistent_view(&graphone),
        &oracle,
        "GraphOne-FD",
    );
    assert_same_graph(
        &SnapshotSource::consistent_view(&xpgraph),
        &oracle,
        "XPGraph",
    );

    let csr = PmCsr::build(pool(), NV, &edges).unwrap();
    assert_same_graph(&SnapshotSource::consistent_view(&csr), &oracle, "CSR");
}

#[test]
fn kernels_agree_across_systems() {
    // Insert symmetric edges so the kernels' undirected assumption holds.
    let mut edges = Vec::new();
    for (s, d) in random_edges(48, 800, 0xabcd) {
        edges.push((s, d));
        edges.push((d, s));
    }
    let oracle = reference_of(48, &edges);

    let dgap = Dgap::create(pool(), DgapConfig::for_graph(48, edges.len())).unwrap();
    let graphone = GraphOneFd::new(pool(), 48, 1 << 9);
    let xpgraph = XpGraph::new(pool(), 48, 64).unwrap();
    for &(s, d) in &edges {
        dgap.insert_edge(s, d).unwrap();
        graphone.insert_edge(s, d).unwrap();
        xpgraph.insert_edge(s, d).unwrap();
    }
    dgap.flush();
    graphone.flush();
    xpgraph.flush();

    let reference_pr = pagerank(&oracle, 10);
    let reference_cc = cc(&oracle);
    let reference_bfs = analytics::bfs::distances_from_parents(&oracle, &bfs(&oracle, 0), 0);

    fn check(
        label: &str,
        view: &impl GraphView,
        reference_pr: &[f64],
        reference_cc: &[u64],
        reference_bfs: &[i64],
    ) {
        let pr = pagerank(view, 10);
        for (a, b) in pr.iter().zip(reference_pr) {
            assert!((a - b).abs() < 1e-9, "{label}: pagerank mismatch");
        }
        assert_eq!(cc(view), reference_cc, "{label}: components mismatch");
        let d = analytics::bfs::distances_from_parents(view, &bfs(view, 0), 0);
        assert_eq!(d, reference_bfs, "{label}: BFS distances mismatch");
    }
    check(
        "DGAP",
        &dgap.consistent_view(),
        &reference_pr,
        &reference_cc,
        &reference_bfs,
    );
    check(
        "GraphOne-FD",
        &SnapshotSource::consistent_view(&graphone),
        &reference_pr,
        &reference_cc,
        &reference_bfs,
    );
    check(
        "XPGraph",
        &SnapshotSource::consistent_view(&xpgraph),
        &reference_pr,
        &reference_cc,
        &reference_bfs,
    );
}

#[test]
fn snapshots_remain_stable_while_updates_continue() {
    let edges = random_edges(NV as u64, NE, 0x1234);
    let dgap = Dgap::create(pool(), DgapConfig::for_graph(NV, NE * 2)).unwrap();
    for &(s, d) in &edges {
        dgap.insert_edge(s, d).unwrap();
    }
    let view = dgap.consistent_view();
    let before: Vec<Vec<u64>> = (0..NV as u64).map(|v| view.neighbors(v)).collect();
    let ranks_before = pagerank(&view, 5);

    // Keep inserting — snapshots must not observe any of it.
    for &(s, d) in &edges {
        dgap.insert_edge(d, s).unwrap();
    }
    let after: Vec<Vec<u64>> = (0..NV as u64).map(|v| view.neighbors(v)).collect();
    assert_eq!(before, after);
    assert_eq!(ranks_before, pagerank(&view, 5));

    // A fresh view sees the doubled graph.
    assert_eq!(dgap.consistent_view().num_edges(), NE * 2);
}
