//! Analytics parity: sequential and parallel kernels agree with each other
//! and with the in-memory oracle, when run over DGAP snapshots and over the
//! scaled dataset presets.

use analytics::{
    bc, bc_parallel, bfs, bfs_parallel, cc, cc_parallel, highest_degree_vertex, pagerank,
    pagerank_parallel, with_threads,
};
use dgap::{Dgap, DgapConfig, DynamicGraph, GraphView, ReferenceGraph};
use dgap_integration_tests::random_edges;
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;
use workloads::datasets::CIT_PATENTS;

fn symmetric_graph(nv: u64, ne: usize, seed: u64) -> (ReferenceGraph, Vec<(u64, u64)>) {
    let mut reference = ReferenceGraph::new(nv as usize);
    let mut edges = Vec::new();
    for (s, d) in random_edges(nv, ne, seed) {
        reference.add_edge(s, d);
        reference.add_edge(d, s);
        edges.push((s, d));
        edges.push((d, s));
    }
    (reference, edges)
}

fn dgap_with(edges: &[(u64, u64)], nv: usize) -> Dgap {
    let pool = Arc::new(PmemPool::new(
        PmemConfig::with_capacity(64 << 20).persistence_tracking(false),
    ));
    let g = Dgap::create(pool, DgapConfig::for_graph(nv, edges.len())).unwrap();
    for &(s, d) in edges {
        g.insert_edge(s, d).unwrap();
    }
    g
}

#[test]
fn kernels_on_dgap_match_the_oracle() {
    let (oracle, edges) = symmetric_graph(72, 1_500, 0x600d);
    let g = dgap_with(&edges, 72);
    let view = g.consistent_view();

    let pr_oracle = pagerank(&oracle, 15);
    let pr_dgap = pagerank(&view, 15);
    for (a, b) in pr_oracle.iter().zip(&pr_dgap) {
        assert!((a - b).abs() < 1e-9);
    }
    assert_eq!(cc(&oracle), cc(&view));

    let source = highest_degree_vertex(&oracle);
    assert_eq!(source, highest_degree_vertex(&view));
    let d_oracle = analytics::bfs::distances_from_parents(&oracle, &bfs(&oracle, source), source);
    let d_dgap = analytics::bfs::distances_from_parents(&view, &bfs(&view, source), source);
    assert_eq!(d_oracle, d_dgap);

    let bc_oracle = bc(&oracle, source);
    let bc_dgap = bc(&view, source);
    for (a, b) in bc_oracle.iter().zip(&bc_dgap) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn parallel_kernels_match_sequential_on_dgap_snapshots() {
    let (_oracle, edges) = symmetric_graph(64, 1_200, 0xbeef);
    let g = dgap_with(&edges, 64);
    let view = g.consistent_view();
    let source = highest_degree_vertex(&view);

    with_threads(4, || {
        let pr_s = pagerank(&view, 10);
        let pr_p = pagerank_parallel(&view, 10);
        for (a, b) in pr_s.iter().zip(&pr_p) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(cc(&view), cc_parallel(&view));
        let ds = analytics::bfs::distances_from_parents(&view, &bfs(&view, source), source);
        let dp =
            analytics::bfs::distances_from_parents(&view, &bfs_parallel(&view, source), source);
        assert_eq!(ds, dp);
        let bs = bc(&view, source);
        let bp = bc_parallel(&view, source);
        for (a, b) in bs.iter().zip(&bp) {
            assert!((a - b).abs() < 1e-6);
        }
    });
}

#[test]
fn kernels_run_on_a_scaled_dataset_preset() {
    // A smoke test of the full pipeline the benchmarks use: preset dataset →
    // generator → DGAP → kernels.
    let list = CIT_PATENTS.generate_scaled(1 << 17);
    let g = dgap_with(&list.edges, list.num_vertices);
    let view = g.consistent_view();
    assert_eq!(view.num_edges(), list.edges.len());

    let ranks = pagerank(&view, 5);
    assert_eq!(ranks.len(), view.num_vertices());
    assert!(ranks.iter().all(|r| r.is_finite() && *r >= 0.0));

    let labels = cc(&view);
    assert_eq!(labels.len(), view.num_vertices());

    let source = highest_degree_vertex(&view);
    let parents = bfs(&view, source);
    assert!(parents[source as usize] >= 0);
}
