//! Crash-point fuzzing for the detectable exactly-once ingest path.
//!
//! Each trial builds a persistence-tracked sharded engine, feeds it a seeded
//! stream of tagged batches from two clients, and kills the ingest at a
//! randomized point mid-stream — either by a [`CrashHook`] planted in the
//! drain-worker commit protocol or by a fail-point armed on one shard's pmem
//! write path.  The pools then take a simulated power cut, the engine is
//! reopened through [`GraphService::open`], and the client runs the documented
//! recovery protocol: probe every outstanding `(client_id, op_id)` in order,
//! replay the ones the engine does not report committed, and finally demand
//! exact [`ReferenceGraph`] parity — which fails loudly if any update was
//! applied zero or two times.
//!
//! The default matrix (1/2/4 shards x `CRASH_FUZZ_SEEDS` seeds each) lands
//! more than 200 distinct crash points per run.  `CRASH_FUZZ_SEED` pins the
//! base seed (CI does), `CRASH_FUZZ_SEEDS` scales the per-shard trial count.

use std::sync::Arc;

use dgap::{GraphView, ReferenceGraph, Update, VertexId};
use obs::Registry;
use pmem::{CostModel, PmemConfig, PmemPool};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use service::{GraphService, OpStatus, ServiceConfig};
use sharded::{
    crash_after, ClientTable, IngestPipeline, ShardedConfig, ShardedGraph, CRASH_MARKER,
};

const NUM_VERTICES: usize = 160;
const NUM_EDGES: usize = 1 << 14;
const POOL_BYTES: usize = 24 << 20;
/// Tagged batches per client per trial.
const OPS_PER_CLIENT: usize = 12;
const NUM_CLIENTS: u64 = 2;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Swallow the panic messages of *injected* crashes so 200+ trials don't
/// bury real failures in noise; every other panic still reports normally.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !payload.contains(CRASH_MARKER) {
                default(info);
            }
        }));
    });
}

fn service_config(num_shards: usize) -> ServiceConfig {
    ServiceConfig {
        sharded: ShardedConfig::builder()
            .shards(num_shards)
            .batch_size(16)
            .build(),
        workers: 2,
        num_vertices: NUM_VERTICES,
        num_edges: NUM_EDGES,
        pool_bytes: POOL_BYTES,
        ..ServiceConfig::default()
    }
}

/// One client's scripted life: `batches[k]` is the update vector it submits
/// (and, on retry, must resubmit verbatim) as op id `k + 1`.
struct ClientScript {
    client_id: u64,
    batches: Vec<Vec<Update>>,
}

/// Two clients with disjoint source-vertex sets (even vs odd), so the final
/// graph is independent of how their batches interleave across shards and
/// the oracle stays exact.  Deletes only ever target a still-live edge of
/// the same client, and no edge is inserted twice while visible, keeping
/// multiset semantics trivial.
fn scripts(rng: &mut ChaCha8Rng) -> Vec<ClientScript> {
    let n = NUM_VERTICES as u64;
    (0..NUM_CLIENTS)
        .map(|c| {
            let mut live: Vec<(u64, u64)> = Vec::new();
            let batches = (0..OPS_PER_CLIENT)
                .map(|_| {
                    let len = rng.gen_range(1usize..6);
                    let mut ops = Vec::with_capacity(len);
                    for _ in 0..len {
                        let roll = rng.gen_range(0u32..10);
                        if roll < 2 && !live.is_empty() {
                            let (s, d) = live.swap_remove(rng.gen_range(0usize..live.len()));
                            ops.push(Update::DeleteEdge(s, d));
                        } else {
                            let s = rng.gen_range(0u64..n / 2) * 2 + c;
                            let d = rng.gen_range(0u64..n);
                            if roll == 2 || live.contains(&(s, d)) {
                                ops.push(Update::InsertVertex(d));
                            } else {
                                live.push((s, d));
                                ops.push(Update::InsertEdge(s, d));
                            }
                        }
                    }
                    ops
                })
                .collect();
            ClientScript {
                client_id: c + 1,
                batches,
            }
        })
        .collect()
}

fn oracle_after(scripts: &[ClientScript]) -> ReferenceGraph {
    let mut oracle = ReferenceGraph::new(NUM_VERTICES);
    for script in scripts {
        for batch in &script.batches {
            for &op in batch {
                match op {
                    Update::InsertVertex(_) => {}
                    Update::InsertEdge(s, d) => oracle.add_edge(s, d),
                    Update::DeleteEdge(s, d) => {
                        oracle.remove_edge(s, d);
                    }
                }
            }
        }
    }
    oracle
}

/// Run one crash trial.  Returns whether the injected crash actually fired
/// (it must, given the fail-point bounds — asserted by the caller).
fn crash_trial(num_shards: usize, seed: u64) -> bool {
    silence_injected_panics();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let plan = scripts(&mut rng);
    let total_batches = (NUM_CLIENTS as usize * OPS_PER_CLIENT) as u64;

    // --- Phase 1: a fresh engine on persistence-tracked pools. ---
    let config = service_config(num_shards);
    let graph = Arc::new(
        ShardedGraph::create_dgap(num_shards, NUM_VERTICES, NUM_EDGES, |_| {
            PmemConfig::with_capacity(POOL_BYTES).cost_model(CostModel::zero())
        })
        .expect("create sharded dgap"),
    );
    let pools: Vec<Arc<PmemPool>> = (0..num_shards)
        .map(|i| Arc::clone(graph.shard(i).pool()))
        .collect();
    let tables: Vec<ClientTable> = pools
        .iter()
        .map(|pool| ClientTable::create_or_open(pool, 0).expect("create client table"))
        .collect();

    // --- Phase 2: pick the crash plane and arm it. ---
    // Even seeds crash in the drain worker's commit protocol (the hook sees
    // at least 3 sites per batch per lane, so any nth below 3 x batches is
    // guaranteed to fire); odd seeds crash one shard's raw pmem write path
    // (each tagged batch costs that pool at least 3 writes: journal begin,
    // cursor advance, commit).
    let registry = Arc::new(Registry::new());
    let hook_mode = seed.is_multiple_of(2);
    let pipeline = if hook_mode {
        let nth = rng.gen_range(0u64..3 * total_batches);
        IngestPipeline::with_crash_hook(
            Arc::clone(&graph),
            &config.sharded,
            Arc::clone(&registry),
            tables,
            crash_after(nth),
        )
    } else {
        let pipeline = IngestPipeline::with_client_tables(
            Arc::clone(&graph),
            &config.sharded,
            Arc::clone(&registry),
            tables,
        );
        let victim = rng.gen_range(0usize..num_shards);
        let nth = rng.gen_range(0u64..2 * total_batches);
        pools[victim].arm_write_failpoint(nth);
        pipeline
    };

    // --- Phase 3: submit every batch; the crash lands somewhere inside. ---
    let mut crashed = false;
    for k in 0..OPS_PER_CLIENT {
        for script in &plan {
            let op_id = (k + 1) as u64;
            if pipeline
                .submit_tagged(&script.batches[k], script.client_id, op_id)
                .is_err()
            {
                crashed = true;
            }
        }
    }
    if pipeline.flush_all().is_err() {
        crashed = true;
    }
    drop(pipeline);
    drop(graph);

    // --- Phase 4: power cut.  Unflushed lines vanish. ---
    for pool in &pools {
        pool.disarm_write_failpoint();
        pool.simulate_crash();
    }

    // --- Phase 5: reopen through the service and run the client-side
    // recovery protocol: probe in op-id order, replay what is missing. ---
    let (service, recovery) =
        GraphService::open(service_config(num_shards), pools).expect("reopen after crash");
    let client = service.client();
    for script in &plan {
        for (k, batch) in script.batches.iter().enumerate() {
            let op_id = (k + 1) as u64;
            let status = client.probe_op(script.client_id, op_id).expect("probe");
            if status != OpStatus::Committed {
                let ticket = client
                    .mutate_as(script.client_id, op_id, batch.clone())
                    .expect("replay");
                client.wait(&ticket).expect("replay wait");
            }
        }
    }
    client.flush().expect("post-replay flush");

    // --- Phase 6: exactly-once means exact oracle parity — a lost update
    // shows as a missing neighbour, a double apply as a duplicated one. ---
    let oracle = oracle_after(&plan);
    let context = format!("shards={num_shards} seed={seed} hook={hook_mode}");
    for v in 0..NUM_VERTICES as VertexId {
        let mut got = client.neighbors(v).expect("neighbors");
        let mut want = oracle.neighbors(v);
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(
            got, want,
            "neighbours of {v} after probe-and-replay ({context})"
        );
    }
    for script in &plan {
        for k in 0..OPS_PER_CLIENT {
            assert_eq!(
                client
                    .probe_op(script.client_id, (k + 1) as u64)
                    .expect("final probe"),
                OpStatus::Committed,
                "client {} op {} not committed after replay ({context})",
                script.client_id,
                k + 1,
            );
        }
        let watermark = recovery
            .client_watermarks()
            .committed(script.client_id)
            .unwrap_or(0);
        assert!(
            watermark <= OPS_PER_CLIENT as u64,
            "recovered watermark {watermark} beyond the script ({context})"
        );
    }
    service.shutdown();
    crashed
}

fn run_matrix(num_shards: usize) {
    let base = env_u64("CRASH_FUZZ_SEED", 0xD6A9_2026);
    let trials = env_u64("CRASH_FUZZ_SEEDS", 70);
    for round in 0..trials {
        let seed = base ^ ((num_shards as u64) << 32) ^ round;
        let crashed = crash_trial(num_shards, seed);
        assert!(
            crashed,
            "shards={num_shards} seed={seed}: injected crash never fired"
        );
    }
}

#[test]
fn crash_fuzz_one_shard() {
    run_matrix(1);
}

#[test]
fn crash_fuzz_two_shards() {
    run_matrix(2);
}

#[test]
fn crash_fuzz_four_shards() {
    run_matrix(4);
}
