//! Deletes through the sharded ingest pipeline: interleaved insert/delete
//! streams checked against the `ReferenceGraph` oracle (which models
//! `remove_edge`), including pagerank parity after deletions.

use analytics::pagerank;
use dgap::{GraphView, OwnedSnapshotSource, ReferenceGraph, Update};
use sharded::{IngestPipeline, ShardedConfig, ShardedGraph};
use std::sync::Arc;
use workloads::{GeneratorConfig, GraphKind};

const NUM_VERTICES: usize = 192;
const NUM_EDGES: usize = 3000;

/// A deterministic interleaving: stream the R-MAT edges, and after every
/// third insert issue a delete.  Most deletes target an edge from earlier
/// in the stream (they must land); every few instead target an edge whose
/// insert comes *later* (the tombstone precedes the insert, so unless the
/// stream carried an earlier duplicate, the edge must survive).  R-MAT
/// duplicates exercise the one-occurrence-per-delete rule throughout.
fn interleaved_ops() -> Vec<Update> {
    let list = GeneratorConfig::new(NUM_VERTICES, NUM_EDGES, GraphKind::RMat, 0x5EED).generate();
    let mut ops = Vec::with_capacity(list.edges.len() * 4 / 3);
    for (i, &(s, d)) in list.edges.iter().enumerate() {
        ops.push(Update::InsertEdge(s, d));
        if i % 3 == 2 {
            let j = if i % 9 == 8 {
                (i * 2 + 1) % list.edges.len()
            } else {
                i - i / 3
            };
            let (ds, dd) = list.edges[j];
            ops.push(Update::DeleteEdge(ds, dd));
        }
    }
    ops
}

/// The oracle state after applying `ops` in order.
fn oracle_of(ops: &[Update]) -> ReferenceGraph {
    let mut oracle = ReferenceGraph::new(NUM_VERTICES);
    for &op in ops {
        match op {
            Update::InsertVertex(_) => {}
            Update::InsertEdge(s, d) => oracle.add_edge(s, d),
            Update::DeleteEdge(s, d) => {
                oracle.remove_edge(s, d);
            }
        }
    }
    oracle
}

fn ingest(ops: &[Update], shards: usize) -> Arc<ShardedGraph<dgap::Dgap>> {
    let graph = Arc::new(ShardedGraph::create_dgap_small_test(shards).expect("create"));
    let cfg = ShardedConfig::builder()
        .shards(shards)
        .queue_capacity(8)
        .batch_size(256)
        .build();
    let pipeline = IngestPipeline::new(Arc::clone(&graph), &cfg);
    for chunk in ops.chunks(cfg.batch_size) {
        pipeline.submit(chunk).expect("submit");
    }
    pipeline.flush_all().expect("flush_all");
    let stats = pipeline.stats();
    assert_eq!(stats.ops_applied() as usize, ops.len());
    assert_eq!(stats.op_errors(), 0, "no backend may reject these ops");
    assert!(stats.deletes_applied() > 0, "the stream must carry deletes");
    graph
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

#[test]
fn delete_interleavings_match_the_oracle_for_every_shard_count() {
    let ops = interleaved_ops();
    let oracle = oracle_of(&ops);
    for shards in [1usize, 2, 4] {
        let graph = ingest(&ops, shards);
        // The owned snapshot resolves tombstones, so both degrees and
        // adjacency compare exactly against the oracle.  (The stream may
        // contain duplicate edges and a delete may cancel either copy, so
        // adjacency compares as a sorted multiset.)
        let view = graph.owned_view();
        assert_eq!(
            view.num_edges(),
            GraphView::num_edges(&oracle),
            "{shards} shards"
        );
        for v in 0..NUM_VERTICES as u64 {
            assert_eq!(
                view.degree(v),
                oracle.degree(v),
                "{shards} shards: degree of {v}"
            );
            assert_eq!(
                sorted(view.neighbors(v)),
                sorted(oracle.neighbors(v)),
                "{shards} shards: neighbours of {v}"
            );
        }
    }
}

#[test]
fn pagerank_after_deletions_matches_the_oracle_within_tolerance() {
    let ops = interleaved_ops();
    let oracle = oracle_of(&ops);
    let reference_ranks = pagerank(&oracle, 20);
    for shards in [1usize, 2, 4] {
        let graph = ingest(&ops, shards);
        let ranks = pagerank(&graph.owned_view(), 20);
        assert_eq!(ranks.len(), reference_ranks.len());
        for (v, (a, b)) in ranks.iter().zip(&reference_ranks).enumerate() {
            assert!(
                (a - b).abs() < 1e-6,
                "{shards} shards: pagerank of vertex {v} after deletions: {a} vs {b}"
            );
        }
    }
}

#[test]
fn deleting_absent_edges_is_a_quiet_no_op() {
    let graph = Arc::new(ShardedGraph::create_dgap_small_test(2).expect("create"));
    let pipeline = IngestPipeline::new(Arc::clone(&graph), &ShardedConfig::small_test());
    let ticket = pipeline
        .submit(&[
            Update::InsertEdge(1, 2),
            Update::DeleteEdge(1, 3),   // never inserted
            Update::DeleteEdge(50, 60), // untouched vertex
        ])
        .expect("submit");
    pipeline.wait_for(&ticket).expect("wait");
    pipeline
        .flush_all()
        .expect("absent-edge deletes are not errors");
    assert_eq!(pipeline.stats().op_errors(), 0);
    let view = graph.owned_view();
    assert_eq!(view.neighbors(1), vec![2]);
    assert_eq!(view.degree(50), 0);
}
