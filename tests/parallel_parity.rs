//! Sequential-vs-parallel parity on a graph with deletions.
//!
//! PR 3 replaced the rayon shim's per-call threads with a persistent
//! work-stealing pool and made `FrozenView::capture` parallel.  These tests
//! pin the contract that none of that changes *answers*: every `*_parallel`
//! kernel must agree with its sequential sibling at 1, 2 and 8 threads, and
//! the parallel capture must produce byte-identical snapshots to the
//! sequential baseline — on a graph where tombstones make the resolved
//! adjacency differ from the raw insert stream.

use analytics::{bfs, bfs_parallel, cc, cc_parallel, pagerank, pagerank_parallel, with_threads};
use dgap::{DynamicGraph, FrozenView, GraphView, SnapshotSource};
use pmem::PmemConfig;
use sharded::ShardedGraph;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A deterministic multi-shard DGAP graph, large enough to cross the
/// parallel-capture thresholds, with a deletion pass so tombstone
/// resolution is part of everything measured.
fn deleted_edges_graph() -> ShardedGraph<dgap::Dgap> {
    let n: u64 = 6_000;
    let graph = ShardedGraph::create_dgap(3, n as usize, 64 << 10, |_| {
        PmemConfig::with_capacity(96 << 20).persistence_tracking(false)
    })
    .expect("create sharded DGAP");
    // An undirected-ish ring with chords: every vertex links to +1, +7 and
    // +131 (mod n), both directions, so the kernels see one big connected
    // component with varied degrees.
    for v in 0..n {
        for step in [1u64, 7, 131] {
            let u = (v + step) % n;
            graph.insert_edge(v, u).expect("insert");
            graph.insert_edge(u, v).expect("insert");
        }
    }
    // Delete the +7 chord from every third vertex (both directions):
    // resolved adjacency now differs from the insert stream.
    for v in (0..n).step_by(3) {
        let u = (v + 7) % n;
        assert!(graph.delete_edge(v, u).expect("delete"));
        assert!(graph.delete_edge(u, v).expect("delete"));
    }
    graph
}

#[test]
fn frozen_capture_parallel_matches_sequential_with_deletions() {
    let graph = deleted_edges_graph();
    let view = graph.consistent_view();
    let seq = FrozenView::capture_sequential(&view);
    for threads in THREAD_COUNTS {
        let par = with_threads(threads, || FrozenView::capture(&view));
        assert_eq!(par, seq, "capture diverged at {threads} threads");
    }
    // Sanity: the deletions are visible in the snapshot.
    assert!(seq.num_edges() < 6_000 * 6);
    assert_eq!(seq.num_edges(), GraphView::num_edges(&seq));
    assert!(!seq.neighbors(0).contains(&7), "deleted chord resurfaced");
}

#[test]
fn pagerank_parallel_matches_sequential_at_every_thread_count() {
    let graph = deleted_edges_graph();
    let frozen = FrozenView::capture(&graph.consistent_view());
    let reference = pagerank(&frozen, 20);
    for threads in THREAD_COUNTS {
        let ranks = with_threads(threads, || pagerank_parallel(&frozen, 20));
        assert_eq!(ranks.len(), reference.len());
        for (v, (a, b)) in ranks.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-6,
                "rank of vertex {v} diverged at {threads} threads: {a} vs {b}"
            );
        }
    }
}

#[test]
fn bfs_parallel_matches_sequential_at_every_thread_count() {
    let graph = deleted_edges_graph();
    let frozen = FrozenView::capture(&graph.consistent_view());
    let seq_parents = bfs(&frozen, 0);
    let seq_dist = analytics::bfs::distances_from_parents(&frozen, &seq_parents, 0);
    for threads in THREAD_COUNTS {
        let parents = with_threads(threads, || bfs_parallel(&frozen, 0));
        // Parent choices may legitimately differ between same-level
        // claimants; the reached set and every hop distance are exact.
        let dist = analytics::bfs::distances_from_parents(&frozen, &parents, 0);
        assert_eq!(dist, seq_dist, "BFS diverged at {threads} threads");
    }
}

#[test]
fn cc_parallel_matches_sequential_at_every_thread_count() {
    let graph = deleted_edges_graph();
    let frozen = FrozenView::capture(&graph.consistent_view());
    let seq_labels = cc(&frozen);
    for threads in THREAD_COUNTS {
        let labels = with_threads(threads, || cc_parallel(&frozen));
        assert_eq!(labels, seq_labels, "CC diverged at {threads} threads");
    }
}
