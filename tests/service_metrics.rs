//! The telemetry plane observed end-to-end: mixed traffic through a
//! `GraphService`, then `Query::Metrics` must report populated, monotone
//! latency quantiles, pipeline counters matching the submitted work, and
//! epoch-cache hit/miss accounting that agrees with the pinned
//! incremental-refresh behaviour (a single-shard burst pays one capture).

use dgap::Update;
use service::{GraphService, Query, QueryResult, ServiceConfig};
use sharded::ShardedConfig;
use std::sync::Arc;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        sharded: ShardedConfig::builder()
            .shards(2)
            .queue_capacity(8)
            .batch_size(32)
            .build(),
        workers: 2,
        num_vertices: 256,
        num_edges: 1 << 14,
        pool_bytes: 24 << 20,
        ..ServiceConfig::default()
    }
}

#[test]
fn mixed_traffic_populates_monotone_latency_quantiles() {
    let service = GraphService::start(service_config()).expect("start service");
    let client = service.client();

    // Mixed traffic: writes, point reads, stats, and one analytics query.
    // Each round owns a disjoint vertex pair, so every degree is exact.
    for round in 0..8u64 {
        let (a, b) = (2 * round, 2 * round + 1);
        let t = client
            .mutate(vec![Update::InsertEdge(a, b), Update::InsertEdge(b, a)])
            .expect("mutate");
        client.wait(&t).expect("wait");
        assert_eq!(client.degree(a).expect("degree"), 1);
        let _ = client.neighbors(a).expect("neighbors");
    }
    let _ = client.stats().expect("stats");
    match client.query(Query::ConnectedComponents).expect("cc") {
        QueryResult::ConnectedComponents(labels) => assert!(!labels.is_empty()),
        other => panic!("unexpected {other:?}"),
    }

    let metrics = client.metrics().expect("metrics");

    // Per-kind latency histograms saw the traffic.
    for (kind, at_least) in [("degree", 8u64), ("neighbors", 8), ("stats", 1)] {
        let hist = metrics
            .histogram_labeled("service_query_nanos", &format!("kind=\"{kind}\""))
            .unwrap_or_else(|| panic!("service_query_nanos kind={kind} missing"));
        assert!(
            hist.count >= at_least,
            "kind={kind}: count {} < {at_least}",
            hist.count
        );
        assert!(hist.sum > 0, "kind={kind}: zero total latency");
        // Quantiles are monotone and bounded by the exact max.
        assert!(hist.p50() <= hist.p95(), "kind={kind}: p50 > p95");
        assert!(hist.p95() <= hist.p99(), "kind={kind}: p95 > p99");
        assert!(hist.p99() <= hist.p999(), "kind={kind}: p99 > p999");
        assert!(hist.p999() <= hist.max, "kind={kind}: p999 > max");
        assert!(hist.p50() > 0, "kind={kind}: degenerate p50");
    }

    // The pipeline's counters flowed into the same snapshot: 16 inserts
    // were submitted and applied, none were deletes.
    assert_eq!(metrics.counter("pipeline_ops_submitted"), Some(16));
    assert_eq!(metrics.counter("pipeline_ops_applied"), Some(16));
    assert_eq!(metrics.counter("pipeline_deletes_applied"), Some(0));
    // Queue-depth gauges exist per shard and are drained back to zero.
    for shard in 0..2 {
        assert_eq!(
            metrics.gauge_labeled("pipeline_queue_depth", &format!("shard=\"{shard}\"")),
            Some(0),
            "shard {shard} queue not drained"
        );
    }
    // The work-stealing pool's counters are mirrored in.
    assert!(metrics.counter("pool_workers").unwrap_or(0) >= 1);

    // And the whole plane renders as Prometheus exposition text.
    let text = metrics.render_prometheus();
    assert!(text.contains("# TYPE service_query_nanos summary"));
    assert!(text.contains("service_query_nanos{kind=\"degree\",quantile=\"0.5\"}"));
    assert!(text.contains("pipeline_ops_applied"));
    service.shutdown();
}

#[test]
fn epoch_cache_hit_miss_accounting_matches_refresh_behaviour() {
    let service = GraphService::start(service_config()).expect("start service");
    let client = service.client();

    // Pick one vertex per shard.
    let graph = Arc::clone(service.graph());
    let va = (0..64u64)
        .find(|&v| graph.shard_of(v) == 0)
        .expect("shard 0");
    let vb = (0..64u64)
        .find(|&v| graph.shard_of(v) == 1)
        .expect("shard 1");

    // Seed both shards; the first query is the cold miss.
    let t = client
        .mutate(vec![Update::InsertEdge(va, vb), Update::InsertEdge(vb, va)])
        .expect("mutate");
    client.wait(&t).expect("wait");
    assert_eq!(client.degree(va).expect("degree"), 1);

    let before = client.metrics().expect("metrics");
    assert_eq!(before.counter("service_epoch_cache_misses"), Some(1));
    assert_eq!(before.counter("service_shard_captures"), Some(2));

    // Repeated reads on a quiet pipeline are pure cache hits — and
    // `Query::Metrics` itself must not move either counter.
    for _ in 0..5 {
        assert_eq!(client.degree(va).expect("degree"), 1);
    }
    let quiet = client.metrics().expect("metrics");
    assert_eq!(quiet.counter("service_epoch_cache_misses"), Some(1));
    assert_eq!(
        quiet.counter("service_epoch_cache_hits").unwrap_or(0),
        before.counter("service_epoch_cache_hits").unwrap_or(0) + 5,
        "five quiet reads must be five epoch-cache hits"
    );

    // A write burst confined to shard 0: exactly one more miss, and the
    // incremental refresh pays exactly one shard capture for it.
    let t = client
        .mutate(vec![Update::InsertEdge(va, vb + 2)])
        .expect("mutate");
    client.wait(&t).expect("wait");
    assert_eq!(client.degree(va).expect("degree"), 2);
    let after = client.metrics().expect("metrics");
    assert_eq!(after.counter("service_epoch_cache_misses"), Some(2));
    assert_eq!(
        after.counter("service_shard_captures"),
        Some(3),
        "single-shard burst must cost exactly one extra capture"
    );

    // ServiceStats is assembled from the same registry: the compat
    // accessors agree with the raw counters.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.snapshot_refreshes, 2);
    assert_eq!(stats.shard_captures, 3);
    let refresh = after
        .histogram("service_refresh_nanos")
        .expect("refresh histogram");
    assert_eq!(refresh.count, 2, "one histogram record per refresh");
    assert_eq!(stats.refresh_nanos, refresh.sum);
    service.shutdown();
}

#[test]
fn slow_op_traces_surface_through_the_metrics_query() {
    let service = GraphService::start(service_config()).expect("start service");
    // Trace every drain, regardless of duration.
    service.registry().slow_ops().set_threshold_ns(0);
    let client = service.client();
    let t = client
        .mutate(vec![Update::InsertEdge(1, 2), Update::InsertEdge(2, 3)])
        .expect("mutate");
    client.wait(&t).expect("wait");

    // The drain records its trace *after* publishing the watermark, so
    // give the worker a moment to finish the bookkeeping.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let metrics = client.metrics().expect("metrics");
        if let Some(event) = metrics.slow_ops.iter().find(|e| e.kind == "drain_batch") {
            assert!(event.shard < 2, "shard out of range: {}", event.shard);
            assert!(event.epoch >= 1, "drained watermark must have moved");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no drain_batch trace event within 5s"
        );
        std::thread::yield_now();
    }
    service.shutdown();
}
