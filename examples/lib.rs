//! Shared helpers for the runnable examples.
//!
//! Each example binary (`quickstart`, `streaming_analytics`,
//! `crash_recovery`, `ablation_study`, `social_network`) is self-contained;
//! this tiny library only hosts the helpers more than one of them uses.

/// Format a byte count as mebibytes with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
}

/// Count distinct values in a component labelling.
pub fn distinct(labels: &[u64]) -> usize {
    let mut v = labels.to_vec();
    v.sort_unstable();
    v.dedup();
    v.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(mib(1 << 20), "1.0 MiB");
        assert_eq!(distinct(&[3, 1, 3, 2, 1]), 3);
    }
}
