//! Social-network workload: follower edges arrive continuously, a few
//! accounts go viral, old spam edges get retracted, and the service needs
//! influencer rankings and community structure on demand.
//!
//! Exercises the public API end to end: skewed insertion, deletions
//! (tombstones), snapshots, PageRank / betweenness-centrality rankings and
//! connected components, all against the LiveJournal-scaled preset.
//!
//! Run with: `cargo run -p dgap-examples --release --bin social_network`

use analytics::{bc, cc, highest_degree_vertex, pagerank};
use dgap::{Dgap, DgapConfig, DynamicGraph, GraphView};
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;

fn main() {
    // Scale LiveJournal down ~65,000x: same average degree, same skew.
    let dataset = workloads::datasets::LIVEJOURNAL;
    let graph_data = dataset.generate_scaled(1 << 16);
    println!(
        "simulating {} ({}); scaled to {} users / {} follow edges",
        dataset.name,
        dataset.domain,
        graph_data.num_vertices,
        graph_data.num_edges()
    );

    let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(128 << 20)));
    let graph = Dgap::create(
        Arc::clone(&pool),
        DgapConfig::for_graph(graph_data.num_vertices, graph_data.num_edges()),
    )
    .expect("create DGAP");

    // Phase 1: the back-catalogue of follow edges streams in.
    for &(s, d) in &graph_data.edges {
        graph.insert_edge(s, d).expect("insert");
    }

    // Phase 2: a vertex goes viral — everybody follows it within minutes.
    let viral: u64 = 42 % graph_data.num_vertices as u64;
    for follower in 0..graph_data.num_vertices as u64 {
        if follower != viral {
            graph.insert_edge(follower, viral).expect("insert");
        }
    }

    // Phase 3: the spam team retracts a batch of fake follows.
    let mut removed = 0usize;
    for spammer in (0..graph_data.num_vertices as u64).step_by(97) {
        if graph.delete_edge(spammer, viral).unwrap_or(false) {
            removed += 1;
        }
    }

    // Phase 4: product wants rankings on the latest consistent view.
    let view = graph.consistent_view();
    let ranks = pagerank(&view, 20);
    let mut by_rank: Vec<(u64, f64)> = ranks
        .iter()
        .enumerate()
        .map(|(v, &r)| (v as u64, r))
        .collect();
    by_rank.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 influencers by PageRank:");
    for (v, r) in by_rank.iter().take(5) {
        println!(
            "  user {v:>6}  rank {r:.6}  followers-of {:>6}",
            view.degree(*v)
        );
    }
    assert_eq!(
        by_rank[0].0, viral,
        "the viral account should top the ranking"
    );

    let hub = highest_degree_vertex(&view);
    let centrality = bc(&view, hub);
    let most_central = centrality
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(v, _)| v as u64)
        .unwrap_or(0);
    let communities = dgap_examples::distinct(&cc(&view));
    println!("\nmost central account (from hub {hub}): user {most_central}");
    println!("connected communities: {communities}");
    println!("spam follows retracted: {removed}");

    let s = graph.stats();
    println!(
        "\nstorage engine: {} direct inserts, {} edge-log inserts, {} merges, {} rebalances, {} resizes, {} tombstones",
        s.array_inserts, s.elog_inserts, s.merges, s.rebalances, s.resizes, s.deletes
    );
    println!(
        "persistent-memory traffic: {} media writes ({:.2}x amplification)",
        dgap_examples::mib(pool.stats_snapshot().media_bytes_written),
        pool.stats_snapshot().write_amplification()
    );
}
