//! Streaming analytics: the paper's motivating scenario — a graph that keeps
//! receiving updates (e.g. a cellular network's traffic graph) while
//! analysis jobs repeatedly run on the freshest consistent snapshot.
//!
//! A writer thread streams edges in; every 50 ms the "operator" takes a new
//! snapshot, runs connected components and BFS, and reports how the picture
//! evolves.  Ingestion never blocks on analysis.
//!
//! Run with: `cargo run -p dgap-examples --release --bin streaming_analytics`

use analytics::{bfs, cc, highest_degree_vertex};
use dgap::{Dgap, DgapConfig, DynamicGraph, GraphView};
use pmem::{PmemConfig, PmemPool};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(128 << 20)));
    let graph = Arc::new(
        Dgap::create(
            Arc::clone(&pool),
            DgapConfig::for_graph(2_000, 120_000).writer_threads(2),
        )
        .expect("create DGAP"),
    );

    // A skewed stream: a few "hotspot" cells receive most of the traffic.
    let stream =
        workloads::GeneratorConfig::new(2_000, 120_000, workloads::GraphKind::RMat, 99).generate();
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let graph = Arc::clone(&graph);
        let done = Arc::clone(&done);
        let edges = stream.edges.clone();
        std::thread::spawn(move || {
            for (src, dst) in edges {
                graph.insert_edge(src, dst).expect("insert");
            }
            done.store(true, Ordering::Release);
        })
    };

    // The analysis loop: keep asking for a fresh consistent view and report.
    let mut round = 0usize;
    loop {
        std::thread::sleep(std::time::Duration::from_millis(50));
        round += 1;
        let view = graph.consistent_view();
        let seen_edges = view.num_edges();
        if seen_edges == 0 {
            continue;
        }
        let components = dgap_examples::distinct(&cc(&view));
        let hub = highest_degree_vertex(&view);
        let parents = bfs(&view, hub);
        let reached = parents.iter().filter(|&&p| p >= 0).count();
        println!(
            "round {round:>2}: snapshot has {seen_edges:>7} edges | {components:>4} components | \
             BFS from hotspot {hub} reaches {reached} vertices"
        );
        if done.load(Ordering::Acquire) {
            break;
        }
    }
    writer.join().unwrap();

    let view = graph.consistent_view();
    println!(
        "final graph: {} vertices, {} edge records, hotspot degree {}",
        view.num_vertices(),
        view.num_edges(),
        view.degree(highest_degree_vertex(&view))
    );
    let s = graph.stats();
    println!(
        "ingestion kept running during analysis: {} rebalances, {} edge-log merges, {} resizes",
        s.rebalances, s.merges, s.resizes
    );
}
