//! The typed request/response service over the sharded engine: four client
//! threads stream mixed mutations (inserts + deletes) into a
//! `GraphService`, use tickets for read-your-writes, and serve analytics
//! from the epoch-cached snapshot.
//!
//! ```text
//! cargo run --release --example graph_service
//! ```

use dgap::Update;
use service::{GraphService, Query, QueryResult, ServiceConfig};
use sharded::{ShardedConfig, Ticket};
use std::time::Instant;
use workloads::{GeneratorConfig, GraphKind};

const CLIENTS: usize = 4;
const BATCH: usize = 2048;

fn main() {
    let num_vertices = 20_000;
    let num_edges = 200_000;
    let list = GeneratorConfig::new(num_vertices, num_edges, GraphKind::RMat, 11).generate();
    println!("workload: R-MAT, {num_vertices} vertices, {num_edges} edges, {CLIENTS} clients");

    let service = GraphService::start(ServiceConfig {
        sharded: ShardedConfig::builder()
            .shards(4)
            .queue_capacity(64)
            .batch_size(BATCH)
            .build(),
        workers: CLIENTS,
        num_vertices,
        num_edges,
        pool_bytes: 192 << 20,
        ..ServiceConfig::default()
    })
    .expect("start GraphService");

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let client = service.client();
            let edges = &list.edges;
            scope.spawn(move || {
                let stream: Vec<_> = edges.iter().copied().skip(c).step_by(CLIENTS).collect();
                let mut ticket = Ticket::empty();
                for chunk in stream.chunks(BATCH) {
                    let mut ops: Vec<Update> = chunk.iter().map(|&e| Update::from(e)).collect();
                    // Delete a sprinkling of the edges this very batch
                    // inserts: deletes ride the same shard-partitioned path.
                    for &(s, d) in chunk.iter().step_by(97) {
                        ops.push(Update::DeleteEdge(s, d));
                    }
                    let t = client.mutate(ops).expect("mutate");
                    ticket.merge(&t);
                }
                // Read-your-writes: wait on the merged ticket, then check a
                // vertex this client wrote — no global flush involved.
                client.wait(&ticket).expect("wait");
                let probe = stream[0].0;
                let d = client.degree(probe).expect("degree");
                println!("client {c}: ticket satisfied; degree({probe}) = {d}");
            });
        }
    });
    let client = service.client();
    client.flush().expect("flush");
    println!(
        "mutations drained + flushed in {:.3}s",
        start.elapsed().as_secs_f64()
    );

    let stats = client.stats().expect("stats");
    println!(
        "service: {} ops applied ({} deletes), watermark {}, {} snapshot refreshes, {} requests",
        stats.ops_applied,
        stats.deletes_applied,
        stats.watermark,
        stats.snapshot_refreshes,
        stats.requests_served,
    );
    println!(
        "snapshot: {} vertices, {} visible edges across {} shards",
        stats.num_vertices, stats.num_edges, stats.num_shards,
    );

    let start = Instant::now();
    let components = match client.query(Query::ConnectedComponents).expect("cc") {
        QueryResult::ConnectedComponents(labels) => dgap_examples::distinct(&labels),
        other => panic!("unexpected {other:?}"),
    };
    println!(
        "cc via the service: {components} components in {:.3}s",
        start.elapsed().as_secs_f64()
    );

    let start = Instant::now();
    let top = match client
        .query(Query::Pagerank { iterations: 10 })
        .expect("pagerank")
    {
        QueryResult::Pagerank(ranks) => ranks
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(v, _)| v as u64)
            .unwrap_or(0),
        other => panic!("unexpected {other:?}"),
    };
    println!(
        "pagerank (10 iters) via the service in {:.3}s; top vertex {top} with degree {}",
        start.elapsed().as_secs_f64(),
        client.degree(top).expect("degree"),
    );

    service.shutdown();
    println!("service shut down cleanly");
}
