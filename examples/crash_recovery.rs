//! Crash recovery: demonstrate the paper's §3.1.5 restart paths.
//!
//! The example builds a graph, then walks through three scenarios on the
//! same pool image:
//!
//! 1. a **graceful shutdown** followed by a fast metadata reload,
//! 2. a **power failure** (simulated) with no shutdown, recovered by
//!    scanning the edge array, edge logs and undo logs,
//! 3. a power failure **in the middle of a rebalance** (forced by arming a
//!    writer's undo log), rolled back on the next open.
//!
//! Run with: `cargo run -p dgap-examples --release --bin crash_recovery`

use dgap::{Dgap, DgapConfig, DynamicGraph, GraphView, RecoveryKind};
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;
use std::time::Instant;

fn checksum(g: &Dgap) -> (usize, u64) {
    let view = g.consistent_view();
    let mut edges = 0usize;
    let mut sum = 0u64;
    for v in 0..view.num_vertices() as u64 {
        for d in view.neighbors(v) {
            edges += 1;
            sum = sum.wrapping_add(v.wrapping_mul(1_000_003).wrapping_add(d));
        }
    }
    (edges, sum)
}

fn main() {
    let cfg = DgapConfig::for_graph(1_500, 60_000);
    let workload =
        workloads::GeneratorConfig::new(1_500, 60_000, workloads::GraphKind::RMat, 2024).generate();

    // ------------------------------------------------------------------
    // Scenario 1: graceful shutdown, then restart.
    // ------------------------------------------------------------------
    let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(192 << 20)));
    let graph = Dgap::create(Arc::clone(&pool), cfg.clone()).expect("create");
    for &(s, d) in &workload.edges {
        graph.insert_edge(s, d).expect("insert");
    }
    let before = checksum(&graph);
    graph.shutdown().expect("shutdown");
    drop(graph);
    pool.simulate_crash(); // power-off after the shutdown completed

    let t = Instant::now();
    let (graph, kind) = Dgap::open(Arc::clone(&pool), cfg.clone()).expect("open");
    println!(
        "scenario 1 — graceful restart: {:?} in {:.3}s, graph intact: {}",
        kind,
        t.elapsed().as_secs_f64(),
        checksum(&graph) == before
    );
    assert_eq!(kind, RecoveryKind::NormalRestart);

    // ------------------------------------------------------------------
    // Scenario 2: crash with no shutdown.
    // ------------------------------------------------------------------
    for &(s, d) in &workload.edges[..5_000] {
        graph.insert_edge(s, d).expect("insert");
    }
    let before = checksum(&graph);
    drop(graph);
    pool.simulate_crash(); // power failure, nothing was saved

    let t = Instant::now();
    let (graph, kind) = Dgap::open(Arc::clone(&pool), cfg.clone()).expect("open");
    println!(
        "scenario 2 — crash recovery:   {:?} in {:.3}s, graph intact: {}",
        kind,
        t.elapsed().as_secs_f64(),
        checksum(&graph) == before
    );
    assert!(matches!(kind, RecoveryKind::CrashRecovery { .. }));

    // ------------------------------------------------------------------
    // Scenario 3: crash in the middle of a rebalance.
    //
    // We simulate the dangerous moment by hand: back up a window through a
    // writer's undo log, scribble over the window (as a half-finished data
    // movement would), and cut the power before the log is disarmed.
    // ------------------------------------------------------------------
    let ulog = dgap::ulog::UndoLog::new(Arc::clone(&pool), 4096, 2048).expect("ulog");
    let window = pool.alloc(2048, 64).expect("alloc");
    pool.write(window, &[0xAA; 2048]);
    pool.persist(window, 2048);
    // Arm the log exactly as a rebalance would, then "crash" mid-overwrite.
    let region = ulog.region_offset();
    pool.write_u64(region + 8, window);
    pool.write_u64(region + 16, 2048);
    pool.write_u64(region + 24, 0);
    pool.persist(region + 8, 24);
    pool.write(region + 32, &pool.read_vec(window, 2048));
    pool.persist(region + 32, 2048);
    pool.write_u64(region, 1);
    pool.persist(region, 8);
    pool.write(window, &[0xBB; 1024]); // half-finished overwrite
    pool.persist(window, 1024);
    pool.simulate_crash();

    let ulog = dgap::ulog::UndoLog::attach(Arc::clone(&pool), region, 4096, 2048);
    let restored = ulog.recover();
    println!(
        "scenario 3 — interrupted rebalance: undo log rolled back {:?}, window restored: {}",
        restored,
        pool.read_vec(window, 2048) == vec![0xAA; 2048]
    );

    println!(
        "final graph: {} vertices, {} edge records",
        graph.num_vertices(),
        graph.num_edges()
    );
}
