//! The network plane end to end in one process: a `GraphServer` on a
//! loopback port, remote tenants speaking the binary wire protocol over
//! real TCP sockets, pipelined out-of-order replies, the widened analytics
//! kernel set (triangles, k-core, top-k, k-hop) answered remotely, and
//! admission control shedding an over-quota tenant with a structured
//! `Overloaded` reply.
//!
//! ```text
//! cargo run --release --example remote_client
//! ```

use dgap::{GraphError, Update};
use net::{GraphServer, NetConfig, RemoteClient};
use service::{Query, QueryResult, Request, Response, ServiceConfig};
use sharded::{ShardedConfig, Ticket};
use std::time::Instant;
use workloads::{GeneratorConfig, GraphKind};

const TENANTS: usize = 4;
const BATCH: usize = 1024;

fn main() {
    let num_vertices = 20_000;
    let num_edges = 100_000;
    let list = GeneratorConfig::new(num_vertices, num_edges, GraphKind::RMat, 11).generate();

    // A server with per-tenant quotas: each connection may keep at most 32
    // requests in flight and spend 50k ops/sec from its token bucket.
    let server = GraphServer::start(
        ServiceConfig {
            sharded: ShardedConfig::builder()
                .shards(4)
                .queue_capacity(64)
                .batch_size(BATCH)
                .build(),
            workers: TENANTS,
            num_vertices,
            num_edges,
            pool_bytes: 192 << 20,
            ..ServiceConfig::default()
        },
        NetConfig {
            max_inflight: 32,
            ops_per_sec: Some(50_000),
            ..NetConfig::loopback()
        },
    )
    .expect("start GraphServer");
    let addr = server.local_addr();
    println!("server: listening on {addr} ({TENANTS} tenants incoming)");

    // --- Phase 1: concurrent remote ingest with read-your-writes. ---
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..TENANTS {
            let edges = &list.edges;
            scope.spawn(move || {
                let client = RemoteClient::connect(addr).expect("connect");
                let stream: Vec<_> = edges.iter().copied().skip(c).step_by(TENANTS).collect();
                let mut ticket = Ticket::empty();
                for chunk in stream.chunks(BATCH) {
                    let ops: Vec<Update> = chunk.iter().map(|&e| Update::from(e)).collect();
                    let t = client.mutate(ops).expect("mutate");
                    ticket.merge(&t);
                }
                // Read-your-writes across the socket: wait on the merged
                // ticket, then read back a vertex this tenant wrote.
                client.wait(&ticket).expect("wait");
                let probe = stream[0].0;
                let d = client.degree(probe).expect("degree");
                println!(
                    "tenant {c}: ingested {} ops, degree({probe}) = {d}",
                    stream.len()
                );
                client.close();
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    println!(
        "ingest: {num_edges} edges over TCP in {wall:.2}s ({:.2} Mops/s)",
        num_edges as f64 / wall / 1e6
    );

    // --- Phase 2: pipelining — fire first, harvest later, out of order. ---
    let client = RemoteClient::connect(addr).expect("connect");
    let pagerank = client
        .send(&Request::Query(Query::Pagerank { iterations: 10 }))
        .expect("send pagerank");
    let stats = client
        .send(&Request::Query(Query::Stats))
        .expect("send stats");
    // Harvest in reverse: replies are matched by request id, not order.
    if let Response::Answer(QueryResult::Stats(s)) = stats.wait().expect("stats") {
        println!(
            "stats: {} vertices, {} edges, watermark {}",
            s.num_vertices, s.num_edges, s.watermark
        );
    }
    if let Response::Answer(QueryResult::Pagerank(ranks)) = pagerank.wait().expect("pagerank") {
        let top = ranks
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty ranks");
        println!("pagerank: hottest vertex {} (rank {:.6})", top.0, top.1);
    }

    // --- Phase 3: the widened kernel set, each one wire round trip. ---
    let triangles = client.triangle_count().expect("triangle count");
    let core = client.k_core(4).expect("4-core");
    let hubs = client.top_k_degree(3).expect("top-3 degree");
    let hot = client.top_k_pagerank(3).expect("top-3 pagerank");
    let ball = client.khop(hubs[0].0, 2).expect("2-hop ball");
    println!(
        "kernels: {triangles} triangles, |4-core| = {}, top degree {:?}, \
         top rank {:?}, |2-hop({})| = {}",
        core.len(),
        hubs.iter().map(|&(v, d)| (v, d)).collect::<Vec<_>>(),
        hot.iter()
            .map(|&(v, r)| (v, (r * 1e4).round() / 1e4))
            .collect::<Vec<_>>(),
        hubs[0].0,
        ball.len()
    );

    // --- Phase 4: admission control — a 100k-op batch against a 50k-token
    // bucket is admitted exactly once against the full bucket, with the
    // excess charged as debt; follow-up work is then shed with a structured
    // reply (never a dropped connection) until the refill repays the debt. ---
    let oversized: Vec<Update> = (0..100_000u64)
        .map(|k| Update::InsertEdge(k % num_vertices as u64, (k + 1) % num_vertices as u64))
        .collect();
    let big = client
        .mutate(oversized)
        .expect("oversized batch admitted once as debt");
    match client.mutate(vec![Update::InsertEdge(0, 1)]) {
        Err(GraphError::Overloaded { reason }) => {
            println!(
                "admission control: connection in debt, small batch shed (over {reason} quota)"
            );
        }
        other => println!("unexpected admission result: {other:?}"),
    }
    // `Overloaded` promises that backing off and retrying is safe: the
    // bucket refills at 50k ops/sec, so the 50k-token debt clears in about
    // a second and the same connection is admitted again.
    let backoff = Instant::now();
    let t = loop {
        match client.mutate(vec![Update::InsertEdge(0, 1)]) {
            Ok(t) => break t,
            Err(GraphError::Overloaded { .. }) => {
                std::thread::sleep(std::time::Duration::from_millis(100))
            }
            Err(e) => panic!("retry after shed failed: {e:?}"),
        }
    };
    println!(
        "admission control: debt repaid, retry admitted after {:.1}s of backoff",
        backoff.elapsed().as_secs_f64()
    );
    let mut after = big;
    after.merge(&t);
    client.wait(&after).expect("wait");

    // --- Phase 5: the server's own view of all of this. ---
    let metrics = client.metrics().expect("metrics");
    println!(
        "server metrics: {} connections, {} requests, {} shed",
        metrics.counter("net_connections_total").unwrap_or(0),
        metrics.counter("net_requests_total").unwrap_or(0),
        metrics.counter("net_requests_shed").unwrap_or(0),
    );
    if let Some(nanos) = metrics.histogram("net_request_nanos") {
        println!(
            "request latency: p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms",
            nanos.p50() as f64 / 1e6,
            nanos.p99() as f64 / 1e6,
            nanos.p999() as f64 / 1e6,
        );
    }
    client.close();
    server.shutdown();
    println!("server: drained and shut down");
}
