//! Sharded batch ingest: partition an R-MAT stream across four DGAP shards,
//! drain it through the lock-free ingest pipeline, then run analytics over
//! the cross-shard composite view.
//!
//! ```text
//! cargo run --release --example sharded_ingest
//! ```

use analytics::{cc, pagerank};
use dgap::{DynamicGraph, GraphView, SnapshotSource};
use pmem::PmemConfig;
use sharded::{IngestPipeline, ShardedConfig, ShardedGraph};
use std::sync::Arc;
use std::time::Instant;
use workloads::{GeneratorConfig, GraphKind};

fn main() {
    let num_vertices = 20_000;
    let num_edges = 200_000;
    let list = GeneratorConfig::new(num_vertices, num_edges, GraphKind::RMat, 7).generate();
    println!(
        "workload: R-MAT, {num_vertices} vertices, {num_edges} edges (max degree {})",
        list.max_degree()
    );

    let cfg = ShardedConfig::builder()
        .shards(4)
        .queue_capacity(64)
        .batch_size(4096)
        .build();
    let graph = Arc::new(
        ShardedGraph::create_dgap(cfg.num_shards, num_vertices, num_edges, |_| {
            PmemConfig::with_capacity(192 << 20).persistence_tracking(false)
        })
        .expect("create sharded DGAP"),
    );

    let pipeline = IngestPipeline::new(Arc::clone(&graph), &cfg);
    let start = Instant::now();
    for batch in list.batches(cfg.batch_size) {
        pipeline.submit_edges(batch).expect("submit");
    }
    pipeline.flush_all().expect("flush_all");
    let elapsed = start.elapsed().as_secs_f64();

    let stats = pipeline.stats();
    println!(
        "ingested {} edges through {} shards in {elapsed:.3}s ({:.2} MEPS wall)",
        stats.ops_applied(),
        cfg.num_shards,
        num_edges as f64 / elapsed / 1e6,
    );
    println!(
        "pipeline: {} batches, {} backpressure stalls, shard skew {:.2}",
        stats.batches_submitted(),
        stats.backpressure_stalls(),
        stats.skew(),
    );
    for (shard, count) in graph.shard_edge_counts().iter().enumerate() {
        println!("  shard {shard}: {count} edge records");
    }

    let view = graph.consistent_view();
    assert_eq!(view.num_edges(), num_edges);

    let start = Instant::now();
    let labels = cc(&view);
    println!(
        "cc over the composite view: {} components in {:.3}s",
        dgap_examples::distinct(&labels),
        start.elapsed().as_secs_f64(),
    );

    let start = Instant::now();
    let ranks = pagerank(&view, 10);
    let top = ranks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(v, _)| v)
        .unwrap_or(0);
    println!(
        "pagerank (10 iters) in {:.3}s; top vertex {top} with degree {}",
        start.elapsed().as_secs_f64(),
        view.degree(top as u64),
    );

    graph.flush();
    println!("done: {} edge records durable", graph.num_edges());
}
