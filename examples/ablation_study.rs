//! Ablation study: rebuild the paper's Table 5 on a laptop-sized workload.
//!
//! Inserts the same R-MAT graph into the four DGAP variants — full DGAP,
//! without the per-section edge log ("No EL"), additionally replacing the
//! per-thread undo log with PMDK-style transactions ("No EL&UL"), and
//! additionally placing the hot metadata on PM ("No EL&UL&DP") — and prints
//! the insertion cost of each, both in wall-clock time and in the emulated
//! device's simulated time and write traffic.
//!
//! Run with: `cargo run -p dgap-examples --release --bin ablation_study`

use dgap::{DgapConfig, DgapVariant, DynamicGraph};
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let num_vertices = 2_000;
    let num_edges = 100_000;
    let workload =
        workloads::GeneratorConfig::new(num_vertices, num_edges, workloads::GraphKind::RMat, 7_777)
            .generate();

    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "variant", "wall s", "simulated s", "media MiB", "flushes", "fences"
    );
    let mut baseline_total = None;
    for variant in DgapVariant::all() {
        let pool = Arc::new(PmemPool::new(
            PmemConfig::with_capacity(256 << 20).persistence_tracking(false),
        ));
        let graph = variant
            .build(
                Arc::clone(&pool),
                DgapConfig::for_graph(num_vertices, num_edges),
            )
            .expect("create variant");
        let start = Instant::now();
        for &(s, d) in &workload.edges {
            graph.insert_edge(s, d).expect("insert");
        }
        let wall = start.elapsed().as_secs_f64();
        let stats = pool.stats_snapshot();
        let total = wall + stats.simulated_seconds();
        let slowdown = match baseline_total {
            None => {
                baseline_total = Some(total);
                String::from("(baseline)")
            }
            Some(base) => format!("({:.2}x DGAP)", total / base),
        };
        println!(
            "{:<12} {:>10.3} {:>14.3} {:>14.1} {:>12} {:>12}   {}",
            variant.label(),
            wall,
            stats.simulated_seconds(),
            stats.media_bytes_written as f64 / (1 << 20) as f64,
            stats.flushes,
            stats.fences,
            slowdown
        );
    }
    println!(
        "\nExpected shape (paper, Table 5): removing the edge log costs ~4.5x, removing the\n\
         undo log adds another ~13%, and moving the metadata to PM roughly doubles the cost again."
    );
}
