//! Quickstart: create a DGAP graph on (emulated) persistent memory, insert a
//! few edges from multiple threads, run PageRank on a consistent snapshot
//! while the writers keep going, and shut down gracefully.
//!
//! Run with: `cargo run -p dgap-examples --release --bin quickstart`

use analytics::{highest_degree_vertex, pagerank};
use dgap::{Dgap, DgapConfig, DynamicGraph, GraphView};
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;

fn main() {
    // 1. Create a persistent-memory pool (64 MiB, Optane-like cost model)
    //    and a DGAP instance sized for the expected graph.
    let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(64 << 20)));
    let graph = Arc::new(
        Dgap::create(
            Arc::clone(&pool),
            DgapConfig::for_graph(1_000, 50_000).writer_threads(4),
        )
        .expect("create DGAP"),
    );

    // 2. Ingest edges from four writer threads (a small R-MAT graph).
    let workload =
        workloads::GeneratorConfig::new(1_000, 50_000, workloads::GraphKind::RMat, 7).generate();
    let chunks: Vec<Vec<(u64, u64)>> = (0..4)
        .map(|t| workload.edges.iter().copied().skip(t).step_by(4).collect())
        .collect();
    std::thread::scope(|scope| {
        for chunk in &chunks {
            let graph = Arc::clone(&graph);
            scope.spawn(move || {
                for &(src, dst) in chunk {
                    graph.insert_edge(src, dst).expect("insert edge");
                }
            });
        }
    });
    println!(
        "ingested {} edges across {} vertices",
        graph.num_edges(),
        graph.num_vertices()
    );

    // 3. Take a consistent snapshot (the paper's degree cache) and analyse it.
    let view = graph.consistent_view();
    let ranks = pagerank(&view, 20);
    let hub = highest_degree_vertex(&view);
    println!(
        "highest-degree vertex: {hub} (degree {}, pagerank {:.6})",
        view.degree(hub),
        ranks[hub as usize]
    );

    // 4. Inspect what the persistent-memory device saw.
    let stats = pool.stats_snapshot();
    println!(
        "PM traffic: {} logical writes, {} media writes (amplification {:.2}x), {} flushes, {} fences",
        dgap_examples::mib(stats.logical_bytes_written),
        dgap_examples::mib(stats.media_bytes_written),
        stats.write_amplification(),
        stats.flushes,
        stats.fences
    );
    let dstats = graph.stats();
    println!(
        "DGAP activity: {} in-place inserts, {} edge-log inserts, {} rebalances, {} resizes",
        dstats.array_inserts, dstats.elog_inserts, dstats.rebalances, dstats.resizes
    );

    // 5. Graceful shutdown persists the DRAM metadata for a fast restart.
    graph.shutdown().expect("shutdown");
    println!("shut down cleanly; reopen with Dgap::open() to continue where you left off");
}
