//! The three metric primitives — [`Counter`], [`Gauge`], [`Histogram`] —
//! plus the [`Span`] scoped timer.
//!
//! Everything on the **record path** is a fixed, short sequence of atomic
//! operations on pre-registered handles: no locks, no allocation, no
//! branching on shared state.  That makes recording safe from anywhere —
//! pipeline drain workers, pool threads, the service request loop — without
//! perturbing the latencies being measured.

use crate::trace::{TraceKind, TraceRing};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

// ----------------------------------------------------------------------
// Counter
// ----------------------------------------------------------------------

/// A monotonically increasing event count.
///
/// The default `add`/`get` pair uses `Relaxed` ordering — counters are
/// statistics, not synchronisation.  The `_ordered` variants exist for the
/// few counters that double as progress watermarks (the ingest pipeline's
/// drained-batch counters pair a `Release` add with `Acquire` loads so a
/// waiter observing the count also observes the writes it covers).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by `n` with an explicit memory ordering.
    #[inline]
    pub fn add_ordered(&self, n: u64, order: Ordering) {
        self.0.fetch_add(n, order);
    }

    /// Decrement by `n` with an explicit memory ordering (for the rare
    /// counter that must be rolled back, e.g. un-submitting operations
    /// routed to a dead pipeline lane).
    #[inline]
    pub fn sub_ordered(&self, n: u64, order: Ordering) {
        self.0.fetch_sub(n, order);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Current value with an explicit memory ordering.
    #[inline]
    pub fn get_ordered(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }
}

// ----------------------------------------------------------------------
// Gauge
// ----------------------------------------------------------------------

/// A value that can go up and down (queue depths, in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increase by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ----------------------------------------------------------------------
// Histogram
// ----------------------------------------------------------------------

/// Number of buckets in every [`Histogram`]: one per power of two of a
/// `u64`, so any nanosecond latency indexes without range checks.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free log-bucketed latency histogram.
///
/// Bucket `i` counts values in `[2^i, 2^(i+1))` (bucket 0 also takes 0), so
/// the whole `u64` range is covered by 64 fixed buckets with at most
/// one-power-of-two quantile error — plenty for latency distributions that
/// span six orders of magnitude, and it keeps the record path to two
/// `fetch_add`s plus a `fetch_max` on pre-sized atomics: no resizing, no
/// locks, safe to call from drain workers and pool threads.
///
/// Histograms (and their [`HistogramSnapshot`]s) **merge**: per-thread or
/// per-instance recorders can be combined by bucket-wise addition with no
/// information loss, which is what makes process-wide aggregation cheap.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in: `floor(log2(max(value, 1)))`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (63 - (value | 1).leading_zeros()) as usize
    }

    /// The largest value bucket `index` covers (inclusive).  The top bucket
    /// saturates at `u64::MAX`.
    #[inline]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (2u64 << index) - 1
        }
    }

    /// The smallest value bucket `index` covers.
    #[inline]
    pub fn bucket_lower_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << index
        }
    }

    /// Record one observation.  Two relaxed `fetch_add`s plus a `fetch_max`
    /// on fixed atomics — nothing on this path can block.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Start a scoped timer that records the elapsed nanoseconds into this
    /// histogram when dropped (see [`Span`]; the [`crate::span!`] macro is
    /// sugar for this).
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            hist: self,
            start: Instant::now(),
            trace: None,
        }
    }

    /// A point-in-time copy of the distribution.  Bucket counts are read
    /// individually (relaxed), so a snapshot racing recorders may be off by
    /// the in-flight observations — never torn within a bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut count = 0u64;
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
            count += *out;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state, with quantile
/// queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `i` covers `[2^i, 2^(i+1))`).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Exact largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the `ceil(q * count)`-th smallest observation, capped at the
    /// exact observed maximum.  The estimate is never below the true
    /// quantile's bucket lower bound — i.e. exact to within one log bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold `other` into `self` (bucket-wise addition; max of maxima).
    /// Merging per-thread recorders this way is exact: the result equals a
    /// single histogram that saw every observation.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

// ----------------------------------------------------------------------
// Span — the scoped timer
// ----------------------------------------------------------------------

/// An RAII timer: created by [`Histogram::span`] (or the [`crate::span!`]
/// macro), records the elapsed nanoseconds into its histogram when dropped.
/// Optionally also feeds a [`TraceRing`] so operations slower than the
/// ring's threshold leave a trace event (op kind, shard, duration, epoch).
#[must_use = "a span records when dropped; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
    trace: Option<(&'a TraceRing, TraceKind, u64, u64)>,
}

impl<'a> Span<'a> {
    /// Attach a slow-op trace: if the span outlives `ring`'s threshold, a
    /// `(kind, shard, duration, epoch)` event is pushed into the ring.
    /// Use [`crate::NO_SHARD`] when the operation is not shard-scoped.
    pub fn traced(mut self, ring: &'a TraceRing, kind: TraceKind, shard: u64, epoch: u64) -> Self {
        self.trace = Some((ring, kind, shard, epoch));
        self
    }

    /// Elapsed nanoseconds so far (the value `drop` will record).
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        self.hist.record(nanos);
        if let Some((ring, kind, shard, epoch)) = self.trace {
            ring.record_slow(kind, shard, nanos, epoch);
        }
    }
}

/// Shard value for trace events from operations that are not scoped to a
/// single shard (epoch refreshes, unified merges, whole-service queries).
pub const NO_SHARD: u64 = u64::MAX;
