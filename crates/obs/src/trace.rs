//! The bounded slow-operation trace ring.
//!
//! A [`TraceRing`] keeps the last N operations that exceeded a duration
//! threshold, each as a small fixed record: **op kind, shard, duration,
//! epoch**.  Writers are wait-free — one `fetch_add` to claim a slot plus
//! plain atomic stores — so tracing is safe on the same hot paths the
//! histograms instrument.  Readers ([`TraceRing::snapshot`]) validate each
//! slot's sequence stamp before and after reading and skip slots a writer
//! was mid-flight in; a torn read is dropped, never surfaced.
//!
//! Op kinds are interned once (cold path, under a mutex) into small integer
//! tokens ([`TraceKind`]) so the record path never touches a string.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// An interned op-kind token (see [`TraceRing::kind`]).  Copy + word-sized,
/// so hot paths can carry it for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceKind(u32);

/// One slow-operation record, as returned by [`TraceRing::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The interned op-kind name this event was recorded under.
    pub kind: &'static str,
    /// Shard the operation ran against ([`crate::NO_SHARD`] when the
    /// operation is not shard-scoped).
    pub shard: u64,
    /// How long the operation took, in nanoseconds.
    pub duration_ns: u64,
    /// The epoch (write watermark, drained-batch count, ...) the operation
    /// observed — whatever monotonic progress marker the recording layer
    /// uses.
    pub epoch: u64,
}

/// One ring slot, protected by a sequence stamp: a writer stores
/// `2·ticket+1` (in flight), the fields, then `2·ticket+2` (complete).  A
/// reader accepts the slot only if it observes the same *even* stamp before
/// and after reading the fields.
struct TraceSlot {
    seq: AtomicU64,
    kind: AtomicU32,
    shard: AtomicU64,
    duration_ns: AtomicU64,
    epoch: AtomicU64,
}

/// A bounded ring buffer of slow-operation [`TraceEvent`]s.
pub struct TraceRing {
    slots: Box<[TraceSlot]>,
    cursor: AtomicUsize,
    threshold_ns: AtomicU64,
    kinds: Mutex<Vec<&'static str>>,
}

/// Default slow-op threshold: 1 ms.  Point reads and batch drains sit well
/// under it in steady state, so the ring fills with the outliers worth
/// looking at rather than a firehose of normal operations.
pub const DEFAULT_SLOW_OP_THRESHOLD_NS: u64 = 1_000_000;

impl TraceRing {
    /// A ring holding the most recent `capacity` slow events (rounded up to
    /// at least 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            slots: (0..capacity.max(1))
                .map(|_| TraceSlot {
                    seq: AtomicU64::new(0),
                    kind: AtomicU32::new(0),
                    shard: AtomicU64::new(0),
                    duration_ns: AtomicU64::new(0),
                    epoch: AtomicU64::new(0),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            cursor: AtomicUsize::new(0),
            threshold_ns: AtomicU64::new(DEFAULT_SLOW_OP_THRESHOLD_NS),
            kinds: Mutex::new(Vec::new()),
        }
    }

    /// Number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Intern `name` into a [`TraceKind`] token (idempotent; cold path).
    /// Call once at setup and carry the token; the record path never takes
    /// this lock.
    pub fn kind(&self, name: &'static str) -> TraceKind {
        let mut kinds = self.kinds.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(i) = kinds.iter().position(|&k| k == name) {
            return TraceKind(i as u32);
        }
        kinds.push(name);
        TraceKind((kinds.len() - 1) as u32)
    }

    /// The duration below which [`TraceRing::record_slow`] ignores events.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Change the slow-op threshold (0 = trace everything; tests use this).
    pub fn set_threshold_ns(&self, ns: u64) {
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Record an event if it is at least as slow as the threshold.
    /// Wait-free: one `fetch_add` plus five plain atomic stores.
    #[inline]
    pub fn record_slow(&self, kind: TraceKind, shard: u64, duration_ns: u64, epoch: u64) {
        if duration_ns < self.threshold_ns() {
            return;
        }
        self.record(kind, shard, duration_ns, epoch);
    }

    /// Record an event unconditionally (threshold already applied, or the
    /// caller wants every occurrence).
    pub fn record(&self, kind: TraceKind, shard: u64, duration_ns: u64, epoch: u64) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[ticket % self.slots.len()];
        let stamp = (ticket as u64) * 2;
        slot.seq.store(stamp + 1, Ordering::Release);
        slot.kind.store(kind.0, Ordering::Relaxed);
        slot.shard.store(shard, Ordering::Relaxed);
        slot.duration_ns.store(duration_ns, Ordering::Relaxed);
        slot.epoch.store(epoch, Ordering::Relaxed);
        slot.seq.store(stamp + 2, Ordering::Release);
    }

    /// The retained events, newest first.  Slots a writer is mid-flight in
    /// (odd or changed sequence stamp) are skipped rather than surfaced
    /// torn.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let kinds = self.kinds.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let len = self.slots.len();
        let cursor = self.cursor.load(Ordering::Acquire);
        let mut events = Vec::with_capacity(cursor.min(len));
        // Walk backwards from the most recently claimed ticket.
        for back in 1..=cursor.min(len) {
            let ticket = cursor - back;
            let slot = &self.slots[ticket % len];
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // empty or write in flight
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let shard = slot.shard.load(Ordering::Relaxed);
            let duration_ns = slot.duration_ns.load(Ordering::Relaxed);
            let epoch = slot.epoch.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != before {
                continue; // overwritten while reading
            }
            let Some(&name) = kinds.get(kind as usize) else {
                continue;
            };
            events.push(TraceEvent {
                kind: name,
                shard,
                duration_ns,
                epoch,
            });
        }
        events
    }
}
