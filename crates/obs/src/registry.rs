//! The metric registry and its one-pass snapshot.
//!
//! A [`Registry`] names metrics.  Registration (`counter`, `gauge`,
//! `histogram`, each with an optional label set) is a cold path under a
//! mutex and hands back a shared [`std::sync::Arc`] handle; recording
//! through the handle never touches the registry again.  Reading is one
//! [`Registry::snapshot`] pass that walks every registered metric under a
//! single lock acquisition and returns an owned [`MetricsSnapshot`] —
//! plain data that can cross the service wire, be merged with other
//! registries' snapshots, and be rendered in Prometheus exposition shape.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::trace::{TraceEvent, TraceRing};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    /// Raw Prometheus label body, e.g. `shard="3"` or `kind="degree"`
    /// (empty for unlabelled metrics).
    labels: String,
    metric: Metric,
}

/// How many slow-op events a registry's trace ring retains.
const SLOW_OP_RING_CAPACITY: usize = 256;

/// A named collection of metrics plus a slow-op [`TraceRing`].
///
/// Instantiable — a [`crate::global`] registry exists for process-wide
/// metrics (the work-stealing pool, DGAP capture/recovery timings), while
/// components that need isolation (each `GraphService` instance, so tests
/// and tenants do not pollute each other's counters) create their own.
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
    slow_ops: TraceRing,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with a default-threshold slow-op ring.
    pub fn new() -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
            slow_ops: TraceRing::new(SLOW_OP_RING_CAPACITY),
        }
    }

    /// The registry's slow-operation trace ring.
    pub fn slow_ops(&self) -> &TraceRing {
        &self.slow_ops
    }

    fn register<T>(
        &self,
        name: &str,
        labels: &str,
        make: impl FnOnce() -> Metric,
        get: impl Fn(&Metric) -> Option<&Arc<T>>,
    ) -> Arc<T> {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return match get(&entry.metric) {
                Some(arc) => Arc::clone(arc),
                None => panic!("metric {name}{{{labels}}} already registered with another type"),
            };
        }
        let metric = make();
        let arc = Arc::clone(get(&metric).expect("freshly made metric matches its own type"));
        entries.push(Entry {
            name: name.to_string(),
            labels: labels.to_string(),
            metric,
        });
        arc
    }

    /// The counter named `name` (registered on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, "")
    }

    /// The counter named `name` with label body `labels` (e.g. `shard="0"`).
    pub fn counter_with(&self, name: &str, labels: &str) -> Arc<Counter> {
        self.register(
            name,
            labels,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(c),
                _ => None,
            },
        )
    }

    /// The gauge named `name` (registered on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, "")
    }

    /// The gauge named `name` with label body `labels`.
    pub fn gauge_with(&self, name: &str, labels: &str) -> Arc<Gauge> {
        self.register(
            name,
            labels,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(g),
                _ => None,
            },
        )
    }

    /// The histogram named `name` (registered on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, "")
    }

    /// The histogram named `name` with label body `labels`.
    pub fn histogram_with(&self, name: &str, labels: &str) -> Arc<Histogram> {
        self.register(
            name,
            labels,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(h),
                _ => None,
            },
        )
    }

    /// Read every registered metric in **one pass** under one lock
    /// acquisition, plus the slow-op ring.  Values are still read one atomic
    /// at a time (nothing can freeze concurrent writers), but a single
    /// gather point means every consumer — `ServiceStats`, the wire-level
    /// metrics query, the Prometheus rendering — sees the same pass instead
    /// of assembling its own field-by-field copy interleaved with writers.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let mut snap = MetricsSnapshot::default();
        for entry in entries.iter() {
            match &entry.metric {
                Metric::Counter(c) => snap.counters.push(CounterSample {
                    name: entry.name.clone(),
                    labels: entry.labels.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: entry.name.clone(),
                    labels: entry.labels.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap.histograms.push(HistogramSample {
                    name: entry.name.clone(),
                    labels: entry.labels.clone(),
                    histogram: h.snapshot(),
                }),
            }
        }
        drop(entries);
        snap.counters.sort_by(|a, b| a.key().cmp(&b.key()));
        snap.gauges.sort_by(|a, b| a.key().cmp(&b.key()));
        snap.histograms.sort_by(|a, b| a.key().cmp(&b.key()));
        snap.slow_ops = self.slow_ops.snapshot();
        snap
    }
}

/// One counter reading in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Label body (empty when unlabelled).
    pub labels: String,
    /// The counter's value at snapshot time.
    pub value: u64,
}

/// One gauge reading in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Label body (empty when unlabelled).
    pub labels: String,
    /// The gauge's value at snapshot time.
    pub value: i64,
}

/// One histogram reading in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Label body (empty when unlabelled).
    pub labels: String,
    /// The distribution at snapshot time.
    pub histogram: HistogramSnapshot,
}

impl CounterSample {
    fn key(&self) -> (&str, &str) {
        (&self.name, &self.labels)
    }
}
impl GaugeSample {
    fn key(&self) -> (&str, &str) {
        (&self.name, &self.labels)
    }
}
impl HistogramSample {
    fn key(&self) -> (&str, &str) {
        (&self.name, &self.labels)
    }
}

/// A structured, owned reading of one or more [`Registry`]s: plain data
/// (`Clone`/`PartialEq`), so it can be a query result on a service wire,
/// asserted against in tests, and rendered as Prometheus exposition text.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter readings, sorted by `(name, labels)`.
    pub counters: Vec<CounterSample>,
    /// Gauge readings, sorted by `(name, labels)`.
    pub gauges: Vec<GaugeSample>,
    /// Histogram readings, sorted by `(name, labels)`.
    pub histograms: Vec<HistogramSample>,
    /// Slow-operation trace events, newest first.
    pub slow_ops: Vec<TraceEvent>,
}

impl MetricsSnapshot {
    /// Fold another registry's snapshot into this one (used by the service
    /// to combine its per-instance registry with the process-global one and
    /// the pool counters).  Samples keep their identity; same-named series
    /// from both sides are kept side by side.
    pub fn merge(&mut self, other: MetricsSnapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self.slow_ops.extend(other.slow_ops);
        self.counters.sort_by(|a, b| (a.key()).cmp(&b.key()));
        self.gauges.sort_by(|a, b| (a.key()).cmp(&b.key()));
        self.histograms.sort_by(|a, b| (a.key()).cmp(&b.key()));
    }

    /// Append a standalone counter sample (used to mirror counters that
    /// live outside any registry, like the work-stealing pool's).
    pub fn push_counter(&mut self, name: &str, labels: &str, value: u64) {
        self.counters.push(CounterSample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
        self.counters.sort_by(|a, b| (a.key()).cmp(&b.key()));
    }

    /// Sum of the counter `name` across all label sets (`None` when no such
    /// counter exists).
    pub fn counter(&self, name: &str) -> Option<u64> {
        let mut any = false;
        let mut total = 0u64;
        for c in self.counters.iter().filter(|c| c.name == name) {
            any = true;
            total += c.value;
        }
        any.then_some(total)
    }

    /// The counter `name` with exactly the label body `labels`.
    pub fn counter_labeled(&self, name: &str, labels: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels == labels)
            .map(|c| c.value)
    }

    /// The gauge `name` with exactly the label body `labels`.
    pub fn gauge_labeled(&self, name: &str, labels: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels == labels)
            .map(|g| g.value)
    }

    /// The first histogram named `name` (unlabelled match preferred).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histogram_labeled(name, "").or_else(|| {
            self.histograms
                .iter()
                .find(|h| h.name == name)
                .map(|h| &h.histogram)
        })
    }

    /// The histogram `name` with exactly the label body `labels`.
    pub fn histogram_labeled(&self, name: &str, labels: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.labels == labels)
            .map(|h| &h.histogram)
    }

    /// Render in Prometheus exposition shape: one `# TYPE` comment per
    /// metric name, `name{labels} value` lines for counters and gauges, and
    /// a summary block per histogram (`quantile` labels plus `_count`,
    /// `_sum` and `_max` series).  The output is deterministic — samples
    /// are sorted — so CI can validate the name set line by line.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_type != name {
                let _ = writeln!(out, "# TYPE {name} {kind}");
            }
            last_type = name.to_string();
        };
        for c in &self.counters {
            type_line(&mut out, &c.name, "counter");
            let _ = writeln!(out, "{}{} {}", c.name, braced(&c.labels), c.value);
        }
        for g in &self.gauges {
            type_line(&mut out, &g.name, "gauge");
            let _ = writeln!(out, "{}{} {}", g.name, braced(&g.labels), g.value);
        }
        for h in &self.histograms {
            type_line(&mut out, &h.name, "summary");
            let snap = &h.histogram;
            for (q, label) in [
                (0.50, "0.5"),
                (0.95, "0.95"),
                (0.99, "0.99"),
                (0.999, "0.999"),
            ] {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    h.name,
                    braced(&join_labels(&h.labels, &format!("quantile=\"{label}\""))),
                    snap.quantile(q)
                );
            }
            let _ = writeln!(out, "{}_count{} {}", h.name, braced(&h.labels), snap.count);
            let _ = writeln!(out, "{}_sum{} {}", h.name, braced(&h.labels), snap.sum);
            let _ = writeln!(out, "{}_max{} {}", h.name, braced(&h.labels), snap.max);
        }
        for e in &self.slow_ops {
            let _ = writeln!(
                out,
                "# SLOW_OP kind={} shard={} duration_ns={} epoch={}",
                e.kind, e.shard, e.duration_ns, e.epoch
            );
        }
        out
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn join_labels(a: &str, b: &str) -> String {
    if a.is_empty() {
        b.to_string()
    } else {
        format!("{a},{b}")
    }
}
