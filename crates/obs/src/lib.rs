//! # obs — the zero-dependency telemetry plane
//!
//! Every other crate in the workspace keeps its hot paths cheap; this crate
//! exists so they can prove it at runtime without giving the cheapness up.
//! Three layers:
//!
//! * **Primitives** ([`Counter`], [`Gauge`], [`Histogram`], [`Span`]) —
//!   wait-free on the record path: fixed sequences of atomic operations on
//!   pre-registered handles, no locks, no allocation.  A [`Histogram`] uses
//!   64 power-of-two buckets, so p50/p95/p99/p999 queries are exact to
//!   within one log bucket and per-thread recorders merge exactly.
//! * **Tracing** ([`TraceRing`]) — a bounded seqlock-stamped ring of the
//!   last N operations slower than a threshold (op kind, shard, duration,
//!   epoch); writers are wait-free, torn reads are dropped by readers.
//! * **Registry** ([`Registry`], [`MetricsSnapshot`]) — names the metrics,
//!   hands out shared handles (cold path), and reads everything in one
//!   [`Registry::snapshot`] pass.  Snapshots are plain data: mergeable
//!   across registries and renderable in Prometheus exposition shape.
//!
//! Registries are **instantiable**: each `GraphService` owns one (so tests
//! and multiple service instances in one process never see each other's
//! counters), while truly process-wide signals — DGAP capture and recovery
//! timings, the shared work-stealing pool — record into [`global()`].

mod metrics;
mod registry;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Span, HISTOGRAM_BUCKETS, NO_SHARD,
};
pub use registry::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, Registry};
pub use trace::{TraceEvent, TraceKind, TraceRing, DEFAULT_SLOW_OP_THRESHOLD_NS};

use std::sync::OnceLock;

/// The process-global registry, for metrics that have no natural owner
/// instance: DGAP capture/recovery phase timings and the shared
/// work-stealing pool.  Component-scoped metrics (service query latencies,
/// pipeline lane counters) belong in an instance [`Registry`] instead.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Time the rest of the enclosing scope into a histogram:
///
/// ```
/// let hist = obs::global().histogram("doc_example_nanos");
/// {
///     let _span = obs::span!(hist);
///     // ... timed work ...
/// }
/// assert_eq!(hist.snapshot().count, 1);
/// ```
///
/// With a trace ring, kind token, shard and epoch, the span also leaves a
/// slow-op event when it exceeds the ring's threshold:
///
/// ```
/// let reg = obs::Registry::new();
/// let hist = reg.histogram("drain_nanos");
/// let kind = reg.slow_ops().kind("drain_batch");
/// reg.slow_ops().set_threshold_ns(0);
/// {
///     let _span = obs::span!(hist, reg.slow_ops(), kind, shard = 3, epoch = 7);
/// }
/// assert_eq!(reg.slow_ops().snapshot()[0].shard, 3);
/// ```
#[macro_export]
macro_rules! span {
    ($hist:expr) => {
        $hist.span()
    };
    ($hist:expr, $ring:expr, $kind:expr, shard = $shard:expr, epoch = $epoch:expr) => {
        $hist
            .span()
            .traced($ring, $kind, $shard as u64, $epoch as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    /// Deterministic xorshift64* PRNG — the workspace is offline, so tests
    /// carry their own randomness.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    // ---------------- bucket boundaries ----------------

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        for i in 1..63usize {
            let lo = 1u64 << i;
            // Exactly at the boundary → bucket i; one below → bucket i-1.
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(Histogram::bucket_index(lo - 1), i - 1, "below bucket {i}");
            // Top of the bucket is still bucket i.
            assert_eq!(
                Histogram::bucket_index(2 * lo - 1),
                i,
                "upper bound of bucket {i}"
            );
            assert_eq!(Histogram::bucket_lower_bound(i), lo);
            assert_eq!(Histogram::bucket_upper_bound(i), 2 * lo - 1);
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(
            Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1),
            u64::MAX
        );
        assert_eq!(Histogram::bucket_upper_bound(0), 1);
        assert_eq!(Histogram::bucket_lower_bound(0), 0);
    }

    #[test]
    fn top_bucket_saturates_without_overflow() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 3);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.max, u64::MAX);
        // Quantiles of a top-bucket-only distribution report the exact max,
        // not a clamped bound.
        assert_eq!(snap.quantile(0.5), u64::MAX);
        assert_eq!(snap.quantile(1.0), u64::MAX);
    }

    // ---------------- quantiles vs sorted-vector oracle ----------------

    /// The histogram's quantile must land in the same log bucket as the
    /// true (sorted-vector) quantile: estimate ∈ [bucket_lo(true), max].
    fn assert_quantile_within_bucket(snap: &HistogramSnapshot, sorted: &[u64], q: f64) {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = snap.quantile(q);
        let bucket = Histogram::bucket_index(truth);
        assert!(
            est >= Histogram::bucket_lower_bound(bucket),
            "q={q}: estimate {est} below bucket of true quantile {truth}"
        );
        assert!(
            est <= Histogram::bucket_upper_bound(bucket).min(snap.max),
            "q={q}: estimate {est} above bucket of true quantile {truth}"
        );
    }

    #[test]
    fn quantiles_match_sorted_oracle_on_randomized_inputs() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for trial in 0..20 {
            let h = Histogram::new();
            let n = 100 + (trial * 137) % 4000;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix scales: mostly "fast ops", a tail of slow ones.
                let v = match rng.next() % 10 {
                    0..=6 => rng.next() % 10_000,
                    7..=8 => rng.next() % 10_000_000,
                    _ => rng.next() % 10_000_000_000,
                };
                values.push(v);
                h.record(v);
            }
            values.sort_unstable();
            let snap = h.snapshot();
            assert_eq!(snap.count, n as u64);
            assert_eq!(snap.max, *values.last().unwrap());
            assert_eq!(snap.sum, values.iter().sum::<u64>());
            for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
                assert_quantile_within_bucket(&snap, &values, q);
            }
            // Monotone in q.
            assert!(snap.p50() <= snap.p95());
            assert!(snap.p95() <= snap.p99());
            assert!(snap.p99() <= snap.p999());
            assert!(snap.p999() <= snap.max);
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p999(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    // ---------------- concurrent recording + merge parity ----------------

    #[test]
    fn concurrent_recorders_merge_exactly() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 5_000;
        let shared = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // Each thread also keeps a private histogram; merging the
                    // privates must equal the shared one bucket-for-bucket.
                    let private = Histogram::new();
                    let mut rng = Rng(0xDEADBEEF ^ (t as u64 + 1));
                    for _ in 0..PER_THREAD {
                        let v = rng.next() % 1_000_000_000;
                        shared.record(v);
                        private.record(v);
                    }
                    private.snapshot()
                })
            })
            .collect();
        let mut merged = HistogramSnapshot::default();
        for h in handles {
            merged.merge(&h.join().unwrap());
        }
        let shared_snap = shared.snapshot();
        assert_eq!(
            merged, shared_snap,
            "merge of per-thread recorders must equal the shared histogram"
        );
        assert_eq!(shared_snap.count, (THREADS * PER_THREAD) as u64);
    }

    // ---------------- spans ----------------

    #[test]
    fn span_records_on_drop_and_traces_slow_ops() {
        let reg = Registry::new();
        let hist = reg.histogram("op_nanos");
        reg.slow_ops().set_threshold_ns(0); // trace everything
        let kind = reg.slow_ops().kind("op");
        {
            let _span = span!(hist, reg.slow_ops(), kind, shard = 2, epoch = 9);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.max >= 1_000_000, "slept 1ms, recorded {}", snap.max);
        let events = reg.slow_ops().snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "op");
        assert_eq!(events[0].shard, 2);
        assert_eq!(events[0].epoch, 9);
        assert!(events[0].duration_ns >= 1_000_000);
    }

    #[test]
    fn fast_spans_stay_out_of_the_trace_ring() {
        let reg = Registry::new();
        let hist = reg.histogram("fast_nanos");
        let kind = reg.slow_ops().kind("fast");
        // default 1ms threshold; these spans finish in nanoseconds
        for _ in 0..100 {
            let _span = span!(hist, reg.slow_ops(), kind, shard = 0, epoch = 0);
        }
        assert_eq!(hist.snapshot().count, 100);
        assert!(reg.slow_ops().snapshot().is_empty());
    }

    // ---------------- trace ring ----------------

    #[test]
    fn trace_ring_keeps_newest_events_after_wrap() {
        let ring = TraceRing::new(4);
        let kind = ring.kind("k");
        for i in 0..10u64 {
            ring.record(kind, i, 100 + i, i);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        // Newest first: shards 9, 8, 7, 6.
        let shards: Vec<u64> = events.iter().map(|e| e.shard).collect();
        assert_eq!(shards, vec![9, 8, 7, 6]);
    }

    #[test]
    fn trace_ring_interning_is_idempotent() {
        let ring = TraceRing::new(8);
        let a = ring.kind("alpha");
        let b = ring.kind("beta");
        assert_eq!(ring.kind("alpha"), a);
        assert_ne!(a, b);
        ring.record(a, 1, 10, 0);
        ring.record(b, 2, 20, 0);
        let ev = ring.snapshot();
        assert_eq!(ev[0].kind, "beta");
        assert_eq!(ev[1].kind, "alpha");
    }

    #[test]
    fn trace_ring_concurrent_writers_never_surface_torn_events() {
        let ring = Arc::new(TraceRing::new(16));
        let kind = ring.kind("concurrent");
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        // duration encodes (shard, i) so a torn read is detectable
                        let shard = t as u64;
                        ring.record(kind, shard, shard * 1_000_000 + i, i);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for e in ring.snapshot() {
                assert_eq!(e.kind, "concurrent");
                assert_eq!(e.duration_ns / 1_000_000, e.shard, "torn event: {e:?}");
                assert_eq!(e.duration_ns % 1_000_000, e.epoch, "torn event: {e:?}");
            }
        }
        for w in writers {
            w.join().unwrap();
        }
    }

    // ---------------- registry ----------------

    #[test]
    fn registry_dedups_handles_by_name_and_labels() {
        let reg = Registry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        assert!(Arc::ptr_eq(&a, &b));
        let l0 = reg.counter_with("lane_ops", "shard=\"0\"");
        let l1 = reg.counter_with("lane_ops", "shard=\"1\"");
        assert!(!Arc::ptr_eq(&l0, &l1));
        a.add(3);
        b.inc();
        l0.add(10);
        l1.add(20);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), Some(4));
        assert_eq!(snap.counter("lane_ops"), Some(30));
        assert_eq!(snap.counter_labeled("lane_ops", "shard=\"1\""), Some(20));
        assert_eq!(snap.counter("absent"), None);
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn registry_rejects_type_conflicts() {
        let reg = Registry::new();
        let _c = reg.counter("dual");
        let _h = reg.histogram("dual");
    }

    #[test]
    fn counter_ordered_variants_apply_requested_ordering() {
        let c = Counter::new();
        c.add_ordered(5, Ordering::Release);
        c.sub_ordered(2, Ordering::Release);
        assert_eq!(c.get_ordered(Ordering::Acquire), 3);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn gauge_tracks_depth_up_and_down() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn snapshot_merge_combines_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("x").add(1);
        b.counter("y").add(2);
        b.histogram("h").record(100);
        let mut snap = a.snapshot();
        snap.merge(b.snapshot());
        assert_eq!(snap.counter("x"), Some(1));
        assert_eq!(snap.counter("y"), Some(2));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        snap.push_counter("z", "", 9);
        assert_eq!(snap.counter("z"), Some(9));
    }

    // ---------------- prometheus rendering ----------------

    #[test]
    fn prometheus_rendering_is_stable_and_parseable() {
        let reg = Registry::new();
        reg.counter("requests_total").add(7);
        reg.counter_with("lane_ops", "shard=\"0\"").add(1);
        reg.counter_with("lane_ops", "shard=\"1\"").add(2);
        reg.gauge_with("queue_depth", "shard=\"0\"").set(4);
        let h = reg.histogram("latency_nanos");
        h.record(1000);
        h.record(2000);
        let text = reg.snapshot().render_prometheus();

        // Every non-comment line must be `name_or_name{labels} <integer>`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!series.is_empty());
            value
                .parse::<i64>()
                .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        }
        // Stable name set.
        for needle in [
            "# TYPE requests_total counter",
            "requests_total 7",
            "lane_ops{shard=\"0\"} 1",
            "lane_ops{shard=\"1\"} 2",
            "# TYPE queue_depth gauge",
            "queue_depth{shard=\"0\"} 4",
            "# TYPE latency_nanos summary",
            "latency_nanos{quantile=\"0.5\"}",
            "latency_nanos{quantile=\"0.999\"}",
            "latency_nanos_count 2",
            "latency_nanos_sum 3000",
            "latency_nanos_max 2000",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Deterministic: rendering the same registry twice is identical.
        assert_eq!(text, reg.snapshot().render_prometheus());
    }

    #[test]
    fn labeled_histogram_renders_quantile_alongside_labels() {
        let reg = Registry::new();
        reg.histogram_with("q_nanos", "kind=\"degree\"").record(500);
        let text = reg.snapshot().render_prometheus();
        assert!(
            text.contains("q_nanos{kind=\"degree\",quantile=\"0.5\"}"),
            "bad rendering:\n{text}"
        );
        assert!(text.contains("q_nanos_count{kind=\"degree\"} 1"));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("obs_selftest_global");
        let b = global().counter("obs_selftest_global");
        a.inc();
        b.inc();
        assert!(global().snapshot().counter("obs_selftest_global").unwrap() >= 2);
    }
}
