//! The binary wire protocol: length-prefixed frames, varint scalars, and
//! explicit versioned encode/decode for every service wire type.
//!
//! No serde, no derives — the workspace builds fully offline, so the
//! protocol is hand-rolled and the byte layout is the documentation:
//!
//! ```text
//! frame    := length:u32-LE payload          (length = |payload|, bounded)
//! payload  := version:u8 kind:u8 id:varint body
//! kind     := 1 (request, client → server) | 2 (response, server → client)
//! varint   := LEB128, ≤ 10 bytes            (unsigned 64-bit)
//! zigzag   := varint of (v << 1) ^ (v >> 63) (signed 64-bit)
//! string   := len:varint bytes (UTF-8)
//! f64      := 8 bytes, IEEE-754 little-endian
//! ```
//!
//! `id` is the connection-scoped request id: the server echoes it on the
//! response, so a pipelined client can have many requests in flight and
//! match answers arriving **out of order**.
//!
//! Every container decode validates its claimed element count against the
//! bytes actually remaining in the frame *before* allocating, and frames
//! themselves are capped ([`MAX_FRAME_LEN`] by default) — a hostile length
//! prefix costs the peer their connection, never our memory.

use dgap::{GraphError, Update, VertexId};
use obs::{
    CounterSample, GaugeSample, HistogramSample, HistogramSnapshot, MetricsSnapshot, TraceEvent,
    HISTOGRAM_BUCKETS,
};
use service::{ClientOp, OpStatus, Query, QueryResult, Request, Response, ServiceStats};
use sharded::Ticket;
use std::fmt;
use std::sync::Mutex;

/// Protocol version stamped on (and checked in) every frame payload.
pub const PROTOCOL_VERSION: u8 = 1;

/// Bytes of the frame length prefix.
pub const FRAME_HEADER_LEN: usize = 4;

/// Default ceiling on one frame's payload length.  Large enough for a
/// metrics snapshot or a full-graph analytics answer at bench scale, small
/// enough that a hostile length prefix cannot balloon the decoder.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Frame kind: a client request.
pub const KIND_REQUEST: u8 = 1;
/// Frame kind: a server response.
pub const KIND_RESPONSE: u8 = 2;

// ----------------------------------------------------------------------
// Errors
// ----------------------------------------------------------------------

/// A decode failure.  Every variant means the byte stream is not a valid
/// conversation — the connection it arrived on cannot be resynchronised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before its payload did.
    Truncated(&'static str),
    /// A length prefix exceeded the configured frame cap.
    TooLarge {
        /// Claimed payload length.
        len: u64,
        /// The enforced ceiling.
        max: usize,
    },
    /// The payload's version byte is not one we speak.
    BadVersion(u8),
    /// An enum tag had no meaning where it appeared.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u64,
    },
    /// A claimed element count could not fit in the remaining bytes.
    BadCount {
        /// Which container was being decoded.
        what: &'static str,
        /// The claimed count.
        count: u64,
    },
    /// A string field was not valid UTF-8.
    BadUtf8(&'static str),
    /// A varint ran past its 10-byte maximum.
    BadVarint,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated(what) => write!(f, "truncated frame while decoding {what}"),
            WireError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadCount { what, count } => {
                write!(f, "{what} claims {count} elements but the frame is smaller")
            }
            WireError::BadUtf8(what) => write!(f, "{what} is not valid UTF-8"),
            WireError::BadVarint => write!(f, "varint longer than 10 bytes"),
        }
    }
}

impl From<WireError> for GraphError {
    fn from(err: WireError) -> GraphError {
        GraphError::Protocol(err.to_string())
    }
}

/// Decode result alias.
pub type WireResult<T> = Result<T, WireError>;

// ----------------------------------------------------------------------
// Primitive encoders
// ----------------------------------------------------------------------

/// Append a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag-encoded signed varint.
pub fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// ----------------------------------------------------------------------
// The decoder cursor
// ----------------------------------------------------------------------

/// A bounds-checked cursor over one frame payload.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the payload was consumed exactly.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn u8(&mut self, what: &'static str) -> WireResult<u8> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated(what))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a LEB128 varint.
    pub fn varint(&mut self, what: &'static str) -> WireResult<u64> {
        let mut v = 0u64;
        for shift in 0..10 {
            let byte = self.u8(what)?;
            v |= u64::from(byte & 0x7f) << (7 * shift);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::BadVarint)
    }

    /// Read a zigzag-encoded signed varint.
    pub fn zigzag(&mut self, what: &'static str) -> WireResult<i64> {
        let v = self.varint(what)?;
        Ok((v >> 1) as i64 ^ -((v & 1) as i64))
    }

    fn f64(&mut self, what: &'static str) -> WireResult<f64> {
        let bytes = self.take(8, what)?;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("take(8) returns 8 bytes"),
        )))
    }

    fn take(&mut self, len: usize, what: &'static str) -> WireResult<&'a [u8]> {
        if self.remaining() < len {
            return Err(WireError::Truncated(what));
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn string(&mut self, what: &'static str) -> WireResult<String> {
        let len = self.varint(what)?;
        if len > self.remaining() as u64 {
            return Err(WireError::Truncated(what));
        }
        String::from_utf8(self.take(len as usize, what)?.to_vec())
            .map_err(|_| WireError::BadUtf8(what))
    }

    /// Validate a claimed element count against the bytes left: each
    /// element needs at least `min_elem_bytes`, so a count the frame cannot
    /// possibly hold is rejected *before* any allocation happens.
    fn count(&self, claimed: u64, min_elem_bytes: usize, what: &'static str) -> WireResult<usize> {
        let fits = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if claimed > fits {
            return Err(WireError::BadCount {
                what,
                count: claimed,
            });
        }
        Ok(claimed as usize)
    }

    fn vec_varint(&mut self, what: &'static str) -> WireResult<Vec<u64>> {
        let n = self.varint(what)?;
        let n = self.count(n, 1, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.varint(what)?);
        }
        Ok(v)
    }
}

// ----------------------------------------------------------------------
// Bounded interner for `&'static str` wire fields
// ----------------------------------------------------------------------

/// Decode-side interner for the two `&'static str` fields on the wire
/// ([`GraphError::Unsupported`], [`TraceEvent::kind`]).  Interning leaks
/// each *distinct* string once, so both the table size and the per-string
/// length are capped: a hostile peer spraying unique strings gets the
/// sentinel back instead of growing our heap without bound.
fn intern_static(s: &str) -> &'static str {
    const MAX_INTERNED: usize = 256;
    const MAX_LEN: usize = 120;
    static TABLE: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    if s.len() > MAX_LEN {
        return "<oversized wire string>";
    }
    let mut table = TABLE.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(&known) = table.iter().find(|&&known| known == s) {
        return known;
    }
    if table.len() >= MAX_INTERNED {
        return "<interner full>";
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

// ----------------------------------------------------------------------
// Update / Ticket / Query
// ----------------------------------------------------------------------

const UPDATE_INSERT_VERTEX: u8 = 0;
const UPDATE_INSERT_EDGE: u8 = 1;
const UPDATE_DELETE_EDGE: u8 = 2;

/// Encode one [`Update`].
pub fn put_update(out: &mut Vec<u8>, update: &Update) {
    match *update {
        Update::InsertVertex(v) => {
            out.push(UPDATE_INSERT_VERTEX);
            put_varint(out, v);
        }
        Update::InsertEdge(s, d) => {
            out.push(UPDATE_INSERT_EDGE);
            put_varint(out, s);
            put_varint(out, d);
        }
        Update::DeleteEdge(s, d) => {
            out.push(UPDATE_DELETE_EDGE);
            put_varint(out, s);
            put_varint(out, d);
        }
    }
}

/// Decode one [`Update`].
pub fn get_update(dec: &mut Dec<'_>) -> WireResult<Update> {
    match dec.u8("update tag")? {
        UPDATE_INSERT_VERTEX => Ok(Update::InsertVertex(dec.varint("update vertex")?)),
        UPDATE_INSERT_EDGE => Ok(Update::InsertEdge(
            dec.varint("update src")?,
            dec.varint("update dst")?,
        )),
        UPDATE_DELETE_EDGE => Ok(Update::DeleteEdge(
            dec.varint("update src")?,
            dec.varint("update dst")?,
        )),
        tag => Err(WireError::BadTag {
            what: "Update",
            tag: tag.into(),
        }),
    }
}

/// Encode a [`Ticket`] (its raw per-shard targets).
pub fn put_ticket(out: &mut Vec<u8>, ticket: &Ticket) {
    put_varint(out, ticket.targets().len() as u64);
    for &t in ticket.targets() {
        put_varint(out, t);
    }
}

/// Decode a [`Ticket`].
pub fn get_ticket(dec: &mut Dec<'_>) -> WireResult<Ticket> {
    Ok(Ticket::from_targets(dec.vec_varint("ticket targets")?))
}

const QUERY_DEGREE: u8 = 0;
const QUERY_NEIGHBORS: u8 = 1;
const QUERY_STATS: u8 = 2;
const QUERY_METRICS: u8 = 3;
const QUERY_PAGERANK: u8 = 4;
const QUERY_BFS: u8 = 5;
const QUERY_CC: u8 = 6;
const QUERY_TRIANGLES: u8 = 7;
const QUERY_KCORE: u8 = 8;
const QUERY_TOPK_DEGREE: u8 = 9;
const QUERY_TOPK_PAGERANK: u8 = 10;
const QUERY_KHOP: u8 = 11;

/// Encode a [`Query`].
pub fn put_query(out: &mut Vec<u8>, query: &Query) {
    match *query {
        Query::Degree(v) => {
            out.push(QUERY_DEGREE);
            put_varint(out, v);
        }
        Query::Neighbors(v) => {
            out.push(QUERY_NEIGHBORS);
            put_varint(out, v);
        }
        Query::Stats => out.push(QUERY_STATS),
        Query::Metrics => out.push(QUERY_METRICS),
        Query::Pagerank { iterations } => {
            out.push(QUERY_PAGERANK);
            put_varint(out, iterations as u64);
        }
        Query::Bfs { source } => {
            out.push(QUERY_BFS);
            put_varint(out, source);
        }
        Query::ConnectedComponents => out.push(QUERY_CC),
        Query::TriangleCount => out.push(QUERY_TRIANGLES),
        Query::KCore { k } => {
            out.push(QUERY_KCORE);
            put_varint(out, k);
        }
        Query::TopKDegree { k } => {
            out.push(QUERY_TOPK_DEGREE);
            put_varint(out, k);
        }
        Query::TopKPagerank { k } => {
            out.push(QUERY_TOPK_PAGERANK);
            put_varint(out, k);
        }
        Query::KHop { source, depth } => {
            out.push(QUERY_KHOP);
            put_varint(out, source);
            put_varint(out, depth);
        }
    }
}

/// Decode a [`Query`].
pub fn get_query(dec: &mut Dec<'_>) -> WireResult<Query> {
    match dec.u8("query tag")? {
        QUERY_DEGREE => Ok(Query::Degree(dec.varint("query vertex")?)),
        QUERY_NEIGHBORS => Ok(Query::Neighbors(dec.varint("query vertex")?)),
        QUERY_STATS => Ok(Query::Stats),
        QUERY_METRICS => Ok(Query::Metrics),
        QUERY_PAGERANK => Ok(Query::Pagerank {
            iterations: dec.varint("pagerank iterations")? as usize,
        }),
        QUERY_BFS => Ok(Query::Bfs {
            source: dec.varint("bfs source")?,
        }),
        QUERY_CC => Ok(Query::ConnectedComponents),
        QUERY_TRIANGLES => Ok(Query::TriangleCount),
        QUERY_KCORE => Ok(Query::KCore {
            k: dec.varint("kcore k")?,
        }),
        QUERY_TOPK_DEGREE => Ok(Query::TopKDegree {
            k: dec.varint("topk degree k")?,
        }),
        QUERY_TOPK_PAGERANK => Ok(Query::TopKPagerank {
            k: dec.varint("topk pagerank k")?,
        }),
        QUERY_KHOP => Ok(Query::KHop {
            source: dec.varint("khop source")?,
            depth: dec.varint("khop depth")?,
        }),
        tag => Err(WireError::BadTag {
            what: "Query",
            tag: tag.into(),
        }),
    }
}

// ----------------------------------------------------------------------
// Request
// ----------------------------------------------------------------------

const REQUEST_MUTATE: u8 = 0;
const REQUEST_WAIT: u8 = 1;
const REQUEST_FLUSH: u8 = 2;
const REQUEST_QUERY: u8 = 3;
const REQUEST_MUTATE_AS: u8 = 4;
const REQUEST_PROBE_OP: u8 = 5;

fn put_updates(out: &mut Vec<u8>, ops: &[Update]) {
    put_varint(out, ops.len() as u64);
    for op in ops {
        put_update(out, op);
    }
}

fn get_updates(dec: &mut Dec<'_>) -> WireResult<Vec<Update>> {
    let n = dec.varint("mutate ops")?;
    // An Update is at least 2 bytes (tag + one varint).
    let n = dec.count(n, 2, "mutate ops")?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(get_update(dec)?);
    }
    Ok(ops)
}

/// Encode a [`Request`] body.  Anonymous mutations keep the original
/// `REQUEST_MUTATE` encoding; a mutation carrying a [`ClientOp`] travels
/// under its own tag with the identity first, so the two never alias.
pub fn put_request(out: &mut Vec<u8>, request: &Request) {
    match request {
        Request::Mutate { ops, client: None } => {
            out.push(REQUEST_MUTATE);
            put_updates(out, ops);
        }
        Request::Mutate {
            ops,
            client: Some(client),
        } => {
            out.push(REQUEST_MUTATE_AS);
            put_varint(out, client.client_id);
            put_varint(out, client.op_id);
            put_updates(out, ops);
        }
        Request::Wait {
            ticket,
            deadline_ms,
        } => {
            out.push(REQUEST_WAIT);
            put_ticket(out, ticket);
            // Deadline: 0 = unbounded (a real zero-deadline wait travels
            // as 1 ms — indistinguishable in effect, keeps the varint
            // encoding prefix-free with the old ticket-only frames).
            put_varint(out, deadline_ms.map_or(0, |d| d.max(1)));
        }
        Request::Flush => out.push(REQUEST_FLUSH),
        Request::ProbeOp { client_id, op_id } => {
            out.push(REQUEST_PROBE_OP);
            put_varint(out, *client_id);
            put_varint(out, *op_id);
        }
        Request::Query(query) => {
            out.push(REQUEST_QUERY);
            put_query(out, query);
        }
    }
}

/// Decode a [`Request`] body.
pub fn get_request(dec: &mut Dec<'_>) -> WireResult<Request> {
    match dec.u8("request tag")? {
        REQUEST_MUTATE => Ok(Request::Mutate {
            ops: get_updates(dec)?,
            client: None,
        }),
        REQUEST_MUTATE_AS => {
            let client = ClientOp {
                client_id: dec.varint("mutate client id")?,
                op_id: dec.varint("mutate op id")?,
            };
            Ok(Request::Mutate {
                ops: get_updates(dec)?,
                client: Some(client),
            })
        }
        REQUEST_WAIT => {
            let ticket = get_ticket(dec)?;
            let raw = dec.varint("wait deadline")?;
            Ok(Request::Wait {
                ticket,
                deadline_ms: (raw != 0).then_some(raw),
            })
        }
        REQUEST_FLUSH => Ok(Request::Flush),
        REQUEST_PROBE_OP => Ok(Request::ProbeOp {
            client_id: dec.varint("probe client id")?,
            op_id: dec.varint("probe op id")?,
        }),
        REQUEST_QUERY => Ok(Request::Query(get_query(dec)?)),
        tag => Err(WireError::BadTag {
            what: "Request",
            tag: tag.into(),
        }),
    }
}

// ----------------------------------------------------------------------
// GraphError
// ----------------------------------------------------------------------

const ERR_OUT_OF_SPACE: u8 = 0;
const ERR_VERTEX_OUT_OF_RANGE: u8 = 1;
const ERR_UNSUPPORTED: u8 = 2;
const ERR_CLOSED: u8 = 3;
const ERR_WORKER_DIED: u8 = 4;
const ERR_OTHER: u8 = 5;
const ERR_IO: u8 = 6;
const ERR_PROTOCOL: u8 = 7;
const ERR_OVERLOADED: u8 = 8;
const ERR_CORRUPTED: u8 = 9;
const ERR_DEGRADED: u8 = 10;
const ERR_TIMEOUT: u8 = 11;

/// Encode a [`GraphError`].  `GraphError` is `#[non_exhaustive]`; a
/// variant this protocol version does not know travels as `Other` carrying
/// its `Display` rendering (forward-compatible, lossy only in type).
pub fn put_graph_error(out: &mut Vec<u8>, err: &GraphError) {
    match err {
        GraphError::OutOfSpace(msg) => {
            out.push(ERR_OUT_OF_SPACE);
            put_str(out, msg);
        }
        GraphError::VertexOutOfRange { vertex, capacity } => {
            out.push(ERR_VERTEX_OUT_OF_RANGE);
            put_varint(out, *vertex);
            put_varint(out, *capacity as u64);
        }
        GraphError::Unsupported(op) => {
            out.push(ERR_UNSUPPORTED);
            put_str(out, op);
        }
        GraphError::Closed => out.push(ERR_CLOSED),
        GraphError::WorkerDied { shard } => {
            out.push(ERR_WORKER_DIED);
            put_varint(out, *shard as u64);
        }
        GraphError::Io(msg) => {
            out.push(ERR_IO);
            put_str(out, msg);
        }
        GraphError::Protocol(msg) => {
            out.push(ERR_PROTOCOL);
            put_str(out, msg);
        }
        GraphError::Overloaded { reason } => {
            out.push(ERR_OVERLOADED);
            put_str(out, reason);
        }
        GraphError::Corrupted { region, detail } => {
            out.push(ERR_CORRUPTED);
            put_str(out, region);
            put_str(out, detail);
        }
        GraphError::Degraded { shards } => {
            out.push(ERR_DEGRADED);
            put_varint(out, shards.len() as u64);
            for &s in shards {
                put_varint(out, s as u64);
            }
        }
        GraphError::Timeout { waited_ms } => {
            out.push(ERR_TIMEOUT);
            put_varint(out, *waited_ms);
        }
        GraphError::Other(msg) => {
            out.push(ERR_OTHER);
            put_str(out, msg);
        }
        other => {
            out.push(ERR_OTHER);
            put_str(out, &other.to_string());
        }
    }
}

/// Decode a [`GraphError`].  `Unsupported` strings pass through the
/// bounded interner (the variant holds `&'static str`).
pub fn get_graph_error(dec: &mut Dec<'_>) -> WireResult<GraphError> {
    match dec.u8("error tag")? {
        ERR_OUT_OF_SPACE => Ok(GraphError::OutOfSpace(dec.string("error message")?)),
        ERR_VERTEX_OUT_OF_RANGE => Ok(GraphError::VertexOutOfRange {
            vertex: dec.varint("error vertex")?,
            capacity: dec.varint("error capacity")? as usize,
        }),
        ERR_UNSUPPORTED => Ok(GraphError::Unsupported(intern_static(
            &dec.string("error operation")?,
        ))),
        ERR_CLOSED => Ok(GraphError::Closed),
        ERR_WORKER_DIED => Ok(GraphError::WorkerDied {
            shard: dec.varint("error shard")? as usize,
        }),
        ERR_IO => Ok(GraphError::Io(dec.string("error message")?)),
        ERR_PROTOCOL => Ok(GraphError::Protocol(dec.string("error message")?)),
        ERR_OVERLOADED => Ok(GraphError::Overloaded {
            reason: dec.string("error reason")?,
        }),
        ERR_CORRUPTED => Ok(GraphError::Corrupted {
            region: dec.string("error region")?,
            detail: dec.string("error detail")?,
        }),
        ERR_DEGRADED => {
            let n = dec.varint("degraded shard count")?;
            let n = dec.count(n, 1, "degraded shards")?;
            let mut shards = Vec::with_capacity(n);
            for _ in 0..n {
                shards.push(dec.varint("degraded shard")? as usize);
            }
            Ok(GraphError::Degraded { shards })
        }
        ERR_TIMEOUT => Ok(GraphError::Timeout {
            waited_ms: dec.varint("timeout waited_ms")?,
        }),
        ERR_OTHER => Ok(GraphError::Other(dec.string("error message")?)),
        tag => Err(WireError::BadTag {
            what: "GraphError",
            tag: tag.into(),
        }),
    }
}

// ----------------------------------------------------------------------
// ServiceStats / MetricsSnapshot
// ----------------------------------------------------------------------

fn put_service_stats(out: &mut Vec<u8>, s: &ServiceStats) {
    put_varint(out, s.num_vertices as u64);
    put_varint(out, s.num_edges as u64);
    put_varint(out, s.num_shards as u64);
    put_varint(out, s.ops_submitted);
    put_varint(out, s.ops_applied);
    put_varint(out, s.deletes_applied);
    put_varint(out, s.watermark);
    put_varint(out, s.snapshot_refreshes);
    put_varint(out, s.shard_captures);
    put_varint(out, s.refresh_nanos);
    put_varint(out, s.unified_shard_merges);
    put_varint(out, s.unify_nanos);
    put_varint(out, s.requests_served);
    put_varint(out, s.degraded_shards as u64);
}

fn get_service_stats(dec: &mut Dec<'_>) -> WireResult<ServiceStats> {
    Ok(ServiceStats {
        num_vertices: dec.varint("stats")? as usize,
        num_edges: dec.varint("stats")? as usize,
        num_shards: dec.varint("stats")? as usize,
        ops_submitted: dec.varint("stats")?,
        ops_applied: dec.varint("stats")?,
        deletes_applied: dec.varint("stats")?,
        watermark: dec.varint("stats")?,
        snapshot_refreshes: dec.varint("stats")?,
        shard_captures: dec.varint("stats")?,
        refresh_nanos: dec.varint("stats")?,
        unified_shard_merges: dec.varint("stats")?,
        unify_nanos: dec.varint("stats")?,
        requests_served: dec.varint("stats")?,
        degraded_shards: dec.varint("stats")? as usize,
    })
}

/// Histogram buckets travel sparsely: `nonzero_count (index value)*` —
/// most of the 64 log buckets are empty in practice.
fn put_histogram(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    let nonzero = h.buckets.iter().filter(|&&b| b != 0).count();
    put_varint(out, nonzero as u64);
    for (i, &b) in h.buckets.iter().enumerate() {
        if b != 0 {
            put_varint(out, i as u64);
            put_varint(out, b);
        }
    }
    put_varint(out, h.count);
    put_varint(out, h.sum);
    put_varint(out, h.max);
}

fn get_histogram(dec: &mut Dec<'_>) -> WireResult<HistogramSnapshot> {
    let nonzero = dec.varint("histogram buckets")?;
    if nonzero > HISTOGRAM_BUCKETS as u64 {
        return Err(WireError::BadCount {
            what: "histogram buckets",
            count: nonzero,
        });
    }
    let mut h = HistogramSnapshot::default();
    for _ in 0..nonzero {
        let index = dec.varint("bucket index")?;
        let value = dec.varint("bucket value")?;
        let slot = h.buckets.get_mut(index as usize).ok_or(WireError::BadTag {
            what: "histogram bucket index",
            tag: index,
        })?;
        *slot = value;
    }
    h.count = dec.varint("histogram count")?;
    h.sum = dec.varint("histogram sum")?;
    h.max = dec.varint("histogram max")?;
    Ok(h)
}

fn put_metrics(out: &mut Vec<u8>, m: &MetricsSnapshot) {
    put_varint(out, m.counters.len() as u64);
    for c in &m.counters {
        put_str(out, &c.name);
        put_str(out, &c.labels);
        put_varint(out, c.value);
    }
    put_varint(out, m.gauges.len() as u64);
    for g in &m.gauges {
        put_str(out, &g.name);
        put_str(out, &g.labels);
        put_zigzag(out, g.value);
    }
    put_varint(out, m.histograms.len() as u64);
    for h in &m.histograms {
        put_str(out, &h.name);
        put_str(out, &h.labels);
        put_histogram(out, &h.histogram);
    }
    put_varint(out, m.slow_ops.len() as u64);
    for e in &m.slow_ops {
        put_str(out, e.kind);
        put_varint(out, e.shard);
        put_varint(out, e.duration_ns);
        put_varint(out, e.epoch);
    }
}

fn get_metrics(dec: &mut Dec<'_>) -> WireResult<MetricsSnapshot> {
    let mut m = MetricsSnapshot::default();
    let n = dec.varint("counters")?;
    let n = dec.count(n, 3, "counters")?;
    m.counters.reserve(n);
    for _ in 0..n {
        m.counters.push(CounterSample {
            name: dec.string("counter name")?,
            labels: dec.string("counter labels")?,
            value: dec.varint("counter value")?,
        });
    }
    let n = dec.varint("gauges")?;
    let n = dec.count(n, 3, "gauges")?;
    m.gauges.reserve(n);
    for _ in 0..n {
        m.gauges.push(GaugeSample {
            name: dec.string("gauge name")?,
            labels: dec.string("gauge labels")?,
            value: dec.zigzag("gauge value")?,
        });
    }
    let n = dec.varint("histograms")?;
    let n = dec.count(n, 6, "histograms")?;
    m.histograms.reserve(n);
    for _ in 0..n {
        m.histograms.push(HistogramSample {
            name: dec.string("histogram name")?,
            labels: dec.string("histogram labels")?,
            histogram: get_histogram(dec)?,
        });
    }
    let n = dec.varint("slow ops")?;
    let n = dec.count(n, 4, "slow ops")?;
    m.slow_ops.reserve(n);
    for _ in 0..n {
        m.slow_ops.push(TraceEvent {
            kind: intern_static(&dec.string("trace kind")?),
            shard: dec.varint("trace shard")?,
            duration_ns: dec.varint("trace duration")?,
            epoch: dec.varint("trace epoch")?,
        });
    }
    Ok(m)
}

// ----------------------------------------------------------------------
// QueryResult / Response
// ----------------------------------------------------------------------

const RESULT_DEGREE: u8 = 0;
const RESULT_NEIGHBORS: u8 = 1;
const RESULT_STATS: u8 = 2;
const RESULT_METRICS: u8 = 3;
const RESULT_PAGERANK: u8 = 4;
const RESULT_BFS: u8 = 5;
const RESULT_CC: u8 = 6;
const RESULT_TRIANGLES: u8 = 7;
const RESULT_KCORE: u8 = 8;
const RESULT_TOPK_DEGREE: u8 = 9;
const RESULT_TOPK_PAGERANK: u8 = 10;
const RESULT_KHOP: u8 = 11;
const RESULT_PARTIAL: u8 = 12;

/// Encode a [`QueryResult`] body.
pub fn put_query_result(out: &mut Vec<u8>, result: &QueryResult) {
    match result {
        QueryResult::Degree(d) => {
            out.push(RESULT_DEGREE);
            put_varint(out, *d as u64);
        }
        QueryResult::Neighbors(n) => {
            out.push(RESULT_NEIGHBORS);
            put_varint(out, n.len() as u64);
            for &v in n {
                put_varint(out, v);
            }
        }
        QueryResult::Stats(s) => {
            out.push(RESULT_STATS);
            put_service_stats(out, s);
        }
        QueryResult::Metrics(m) => {
            out.push(RESULT_METRICS);
            put_metrics(out, m);
        }
        QueryResult::Pagerank(ranks) => {
            out.push(RESULT_PAGERANK);
            put_varint(out, ranks.len() as u64);
            for &r in ranks {
                put_f64(out, r);
            }
        }
        QueryResult::Bfs(parents) => {
            out.push(RESULT_BFS);
            put_varint(out, parents.len() as u64);
            for &p in parents {
                put_zigzag(out, p);
            }
        }
        QueryResult::ConnectedComponents(labels) => {
            out.push(RESULT_CC);
            put_varint(out, labels.len() as u64);
            for &l in labels {
                put_varint(out, l);
            }
        }
        QueryResult::TriangleCount(t) => {
            out.push(RESULT_TRIANGLES);
            put_varint(out, *t);
        }
        QueryResult::KCore(core) => {
            out.push(RESULT_KCORE);
            put_varint(out, core.len() as u64);
            for &v in core {
                put_varint(out, v);
            }
        }
        QueryResult::TopKDegree(top) => {
            out.push(RESULT_TOPK_DEGREE);
            put_varint(out, top.len() as u64);
            for &(v, d) in top {
                put_varint(out, v);
                put_varint(out, d);
            }
        }
        QueryResult::TopKPagerank(top) => {
            out.push(RESULT_TOPK_PAGERANK);
            put_varint(out, top.len() as u64);
            for &(v, r) in top {
                put_varint(out, v);
                put_f64(out, r);
            }
        }
        QueryResult::KHop(ball) => {
            out.push(RESULT_KHOP);
            put_varint(out, ball.len() as u64);
            for &v in ball {
                put_varint(out, v);
            }
        }
        QueryResult::Partial {
            degraded_shards,
            result,
        } => {
            out.push(RESULT_PARTIAL);
            put_varint(out, degraded_shards.len() as u64);
            for &s in degraded_shards {
                put_varint(out, s as u64);
            }
            put_query_result(out, result);
        }
    }
}

/// Decode a [`QueryResult`] body.
pub fn get_query_result(dec: &mut Dec<'_>) -> WireResult<QueryResult> {
    match dec.u8("result tag")? {
        RESULT_DEGREE => Ok(QueryResult::Degree(dec.varint("degree")? as usize)),
        RESULT_NEIGHBORS => {
            let ids: Vec<VertexId> = dec.vec_varint("neighbors")?;
            Ok(QueryResult::Neighbors(ids))
        }
        RESULT_STATS => Ok(QueryResult::Stats(get_service_stats(dec)?)),
        RESULT_METRICS => Ok(QueryResult::Metrics(Box::new(get_metrics(dec)?))),
        RESULT_PAGERANK => {
            let n = dec.varint("pagerank ranks")?;
            let n = dec.count(n, 8, "pagerank ranks")?;
            let mut ranks = Vec::with_capacity(n);
            for _ in 0..n {
                ranks.push(dec.f64("pagerank rank")?);
            }
            Ok(QueryResult::Pagerank(ranks))
        }
        RESULT_BFS => {
            let n = dec.varint("bfs parents")?;
            let n = dec.count(n, 1, "bfs parents")?;
            let mut parents = Vec::with_capacity(n);
            for _ in 0..n {
                parents.push(dec.zigzag("bfs parent")?);
            }
            Ok(QueryResult::Bfs(parents))
        }
        RESULT_CC => Ok(QueryResult::ConnectedComponents(
            dec.vec_varint("component labels")?,
        )),
        RESULT_TRIANGLES => Ok(QueryResult::TriangleCount(dec.varint("triangle count")?)),
        RESULT_KCORE => Ok(QueryResult::KCore(dec.vec_varint("kcore members")?)),
        RESULT_TOPK_DEGREE => {
            let n = dec.varint("topk degree entries")?;
            // Each entry is at least two varint bytes.
            let n = dec.count(n, 2, "topk degree entries")?;
            let mut top = Vec::with_capacity(n);
            for _ in 0..n {
                top.push((dec.varint("topk vertex")?, dec.varint("topk degree")?));
            }
            Ok(QueryResult::TopKDegree(top))
        }
        RESULT_TOPK_PAGERANK => {
            let n = dec.varint("topk pagerank entries")?;
            // Each entry is at least one varint byte plus an 8-byte rank.
            let n = dec.count(n, 9, "topk pagerank entries")?;
            let mut top = Vec::with_capacity(n);
            for _ in 0..n {
                top.push((dec.varint("topk vertex")?, dec.f64("topk rank")?));
            }
            Ok(QueryResult::TopKPagerank(top))
        }
        RESULT_KHOP => Ok(QueryResult::KHop(dec.vec_varint("khop members")?)),
        RESULT_PARTIAL => {
            let n = dec.varint("degraded shard count")?;
            let n = dec.count(n, 1, "degraded shards")?;
            let mut degraded_shards = Vec::with_capacity(n);
            for _ in 0..n {
                degraded_shards.push(dec.varint("degraded shard")? as usize);
            }
            let result = get_query_result(dec)?;
            // The service wraps at most once; hostile nesting would recurse
            // one stack frame per input byte, so refuse it outright.
            if matches!(result, QueryResult::Partial { .. }) {
                return Err(WireError::BadTag {
                    what: "nested Partial QueryResult",
                    tag: RESULT_PARTIAL.into(),
                });
            }
            Ok(QueryResult::Partial {
                degraded_shards,
                result: Box::new(result),
            })
        }
        tag => Err(WireError::BadTag {
            what: "QueryResult",
            tag: tag.into(),
        }),
    }
}

const RESPONSE_MUTATED: u8 = 0;
const RESPONSE_WAITED: u8 = 1;
const RESPONSE_FLUSHED: u8 = 2;
const RESPONSE_ANSWER: u8 = 3;
const RESPONSE_ERROR: u8 = 4;
const RESPONSE_OP_STATUS: u8 = 5;

const OP_STATUS_COMMITTED: u8 = 0;
const OP_STATUS_NOT_COMMITTED: u8 = 1;
const OP_STATUS_UNKNOWN: u8 = 2;

/// Encode a [`Response`] body.
pub fn put_response(out: &mut Vec<u8>, response: &Response) {
    match response {
        Response::Mutated { ticket, ops } => {
            out.push(RESPONSE_MUTATED);
            put_ticket(out, ticket);
            put_varint(out, *ops as u64);
        }
        Response::Waited => out.push(RESPONSE_WAITED),
        Response::Flushed => out.push(RESPONSE_FLUSHED),
        Response::OpStatus(status) => {
            out.push(RESPONSE_OP_STATUS);
            out.push(match status {
                OpStatus::Committed => OP_STATUS_COMMITTED,
                OpStatus::NotCommitted => OP_STATUS_NOT_COMMITTED,
                OpStatus::Unknown => OP_STATUS_UNKNOWN,
            });
        }
        Response::Answer(result) => {
            out.push(RESPONSE_ANSWER);
            put_query_result(out, result);
        }
        Response::Error(err) => {
            out.push(RESPONSE_ERROR);
            put_graph_error(out, err);
        }
    }
}

/// Decode a [`Response`] body.
pub fn get_response(dec: &mut Dec<'_>) -> WireResult<Response> {
    match dec.u8("response tag")? {
        RESPONSE_MUTATED => Ok(Response::Mutated {
            ticket: get_ticket(dec)?,
            ops: dec.varint("mutated ops")? as usize,
        }),
        RESPONSE_WAITED => Ok(Response::Waited),
        RESPONSE_FLUSHED => Ok(Response::Flushed),
        RESPONSE_OP_STATUS => match dec.u8("op status")? {
            OP_STATUS_COMMITTED => Ok(Response::OpStatus(OpStatus::Committed)),
            OP_STATUS_NOT_COMMITTED => Ok(Response::OpStatus(OpStatus::NotCommitted)),
            OP_STATUS_UNKNOWN => Ok(Response::OpStatus(OpStatus::Unknown)),
            tag => Err(WireError::BadTag {
                what: "OpStatus",
                tag: tag.into(),
            }),
        },
        RESPONSE_ANSWER => Ok(Response::Answer(get_query_result(dec)?)),
        RESPONSE_ERROR => Ok(Response::Error(get_graph_error(dec)?)),
        tag => Err(WireError::BadTag {
            what: "Response",
            tag: tag.into(),
        }),
    }
}

// ----------------------------------------------------------------------
// Frames
// ----------------------------------------------------------------------

/// One decoded frame payload.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A client request, tagged with its connection-scoped id.
    Request {
        /// Connection-scoped request id, echoed on the response.
        id: u64,
        /// The request itself.
        request: Request,
    },
    /// A server response, tagged with the id of the request it answers.
    Response {
        /// Id of the request this answers.
        id: u64,
        /// The response itself.
        response: Response,
    },
}

fn put_frame(out: &mut Vec<u8>, kind: u8, id: u64, body: impl FnOnce(&mut Vec<u8>)) {
    let header = out.len();
    out.extend_from_slice(&[0; FRAME_HEADER_LEN]);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    put_varint(out, id);
    body(out);
    let len = (out.len() - header - FRAME_HEADER_LEN) as u32;
    out[header..header + FRAME_HEADER_LEN].copy_from_slice(&len.to_le_bytes());
}

/// Append a complete request frame (header + payload) to `out`.
pub fn put_request_frame(out: &mut Vec<u8>, id: u64, request: &Request) {
    put_frame(out, KIND_REQUEST, id, |out| put_request(out, request));
}

/// Append a complete response frame (header + payload) to `out`.
pub fn put_response_frame(out: &mut Vec<u8>, id: u64, response: &Response) {
    put_frame(out, KIND_RESPONSE, id, |out| put_response(out, response));
}

/// Decode one frame *payload* (the bytes after the length prefix).
///
/// The payload must be consumed exactly: trailing bytes mean the peer and
/// we disagree about the encoding, which is as fatal as a short read.
pub fn decode_payload(payload: &[u8]) -> WireResult<Frame> {
    let mut dec = Dec::new(payload);
    let version = dec.u8("frame version")?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = dec.u8("frame kind")?;
    let id = dec.varint("frame id")?;
    let frame = match kind {
        KIND_REQUEST => Frame::Request {
            id,
            request: get_request(&mut dec)?,
        },
        KIND_RESPONSE => Frame::Response {
            id,
            response: get_response(&mut dec)?,
        },
        tag => {
            return Err(WireError::BadTag {
                what: "frame kind",
                tag: tag.into(),
            })
        }
    };
    if !dec.is_done() {
        return Err(WireError::Truncated("frame has trailing bytes"));
    }
    Ok(frame)
}

/// Incremental frame extraction over a growing byte buffer — the shape a
/// socket reader needs, where frames arrive split across arbitrary read
/// boundaries.
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
}

impl FrameBuffer {
    /// An empty buffer enforcing `max_frame` as the payload-length cap.
    pub fn new(max_frame: usize) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Append freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so the buffer's size
        // tracks the unconsumed tail, not the connection's lifetime.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extract the next complete frame, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes".  An error is terminal for the
    /// connection: a hostile or corrupt length prefix cannot be skipped,
    /// because nothing downstream of it can be trusted to align.
    pub fn next_frame(&mut self) -> WireResult<Option<Frame>> {
        let pending = &self.buf[self.start..];
        if pending.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            pending[..FRAME_HEADER_LEN]
                .try_into()
                .expect("header slice is 4 bytes"),
        ) as usize;
        if len > self.max_frame {
            return Err(WireError::TooLarge {
                len: len as u64,
                max: self.max_frame,
            });
        }
        if pending.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let payload = &pending[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        let frame = decode_payload(payload)?;
        self.start += FRAME_HEADER_LEN + len;
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ------------------------------------------------------------------
    // Round-trip helpers: encode a full frame, push it through a
    // FrameBuffer in awkward chunks, compare via Debug (Request/Response
    // do not derive PartialEq).
    // ------------------------------------------------------------------

    fn roundtrip_request(id: u64, request: &Request) {
        let mut bytes = Vec::new();
        put_request_frame(&mut bytes, id, request);
        // Feed one byte at a time: frames must survive arbitrary read
        // boundaries.
        let mut fb = FrameBuffer::new(MAX_FRAME_LEN);
        let mut decoded = None;
        for &b in &bytes {
            fb.extend(&[b]);
            if let Some(frame) = fb.next_frame().expect("valid frame") {
                decoded = Some(frame);
            }
        }
        match decoded.expect("frame completed") {
            Frame::Request {
                id: got_id,
                request: got,
            } => {
                assert_eq!(got_id, id);
                assert_eq!(format!("{got:?}"), format!("{request:?}"));
            }
            other => panic!("decoded wrong frame kind: {other:?}"),
        }
        assert_eq!(fb.pending_bytes(), 0);
    }

    fn roundtrip_response(id: u64, response: &Response) {
        let mut bytes = Vec::new();
        put_response_frame(&mut bytes, id, response);
        let mut fb = FrameBuffer::new(MAX_FRAME_LEN);
        let (head, tail) = bytes.split_at(bytes.len() / 2);
        fb.extend(head);
        assert!(fb.next_frame().expect("no error on partial").is_none());
        fb.extend(tail);
        match fb.next_frame().expect("valid frame").expect("complete") {
            Frame::Response {
                id: got_id,
                response: got,
            } => {
                assert_eq!(got_id, id);
                assert_eq!(format!("{got:?}"), format!("{response:?}"));
            }
            other => panic!("decoded wrong frame kind: {other:?}"),
        }
    }

    fn sample_stats() -> ServiceStats {
        // Fourteen distinct values so a swapped field order cannot pass.
        ServiceStats {
            num_vertices: 101,
            num_edges: 202,
            num_shards: 3,
            ops_submitted: 404,
            ops_applied: 505,
            deletes_applied: 606,
            watermark: 707,
            snapshot_refreshes: 808,
            shard_captures: 909,
            refresh_nanos: 1_010,
            unified_shard_merges: 1_111,
            unify_nanos: 1_212,
            requests_served: 1_313,
            degraded_shards: 2,
        }
    }

    fn sample_metrics() -> MetricsSnapshot {
        let mut hist = HistogramSnapshot::default();
        hist.buckets[0] = 7;
        hist.buckets[13] = 2;
        hist.buckets[HISTOGRAM_BUCKETS - 1] = 1;
        hist.count = 10;
        hist.sum = 123_456;
        hist.max = 99_999;
        MetricsSnapshot {
            counters: vec![CounterSample {
                name: "net_requests_total".to_string(),
                labels: String::new(),
                value: u64::MAX,
            }],
            gauges: vec![GaugeSample {
                name: "pipeline_queue_depth".to_string(),
                labels: "shard=\"0\"".to_string(),
                value: -42,
            }],
            histograms: vec![HistogramSample {
                name: "net_request_nanos".to_string(),
                labels: String::new(),
                histogram: hist,
            }],
            slow_ops: vec![TraceEvent {
                kind: "drain",
                shard: 2,
                duration_ns: 5_000_000,
                epoch: 17,
            }],
        }
    }

    // ------------------------------------------------------------------
    // Primitives
    // ------------------------------------------------------------------

    #[test]
    fn varint_and_zigzag_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(Dec::new(&buf).varint("v").unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_zigzag(&mut buf, v);
            assert_eq!(Dec::new(&buf).zigzag("v").unwrap(), v);
        }
    }

    #[test]
    fn varint_longer_than_ten_bytes_is_rejected() {
        let buf = [0x80u8; 11];
        assert_eq!(Dec::new(&buf).varint("v"), Err(WireError::BadVarint));
    }

    // ------------------------------------------------------------------
    // Satellite: every variant round-trips
    // ------------------------------------------------------------------

    #[test]
    fn every_request_variant_roundtrips() {
        roundtrip_request(
            1,
            &Request::Mutate {
                ops: vec![
                    Update::InsertVertex(0),
                    Update::InsertVertex(u64::MAX),
                    Update::InsertEdge(3, 4),
                    Update::DeleteEdge(u64::MAX, 0),
                ],
                client: None,
            },
        );
        roundtrip_request(
            2,
            &Request::Mutate {
                ops: Vec::new(),
                client: None,
            },
        );
        roundtrip_request(
            21,
            &Request::Mutate {
                ops: vec![Update::InsertEdge(3, 4), Update::DeleteEdge(3, 4)],
                client: Some(ClientOp {
                    client_id: u64::MAX,
                    op_id: 1,
                }),
            },
        );
        roundtrip_request(
            22,
            &Request::Mutate {
                ops: Vec::new(),
                client: Some(ClientOp {
                    client_id: 1,
                    op_id: u64::MAX,
                }),
            },
        );
        roundtrip_request(
            23,
            &Request::ProbeOp {
                client_id: 7,
                op_id: u64::MAX,
            },
        );
        roundtrip_request(
            u64::MAX,
            &Request::Wait {
                ticket: Ticket::from_targets(vec![0, 5, u64::MAX]),
                deadline_ms: None,
            },
        );
        roundtrip_request(
            3,
            &Request::Wait {
                ticket: Ticket::from_targets(Vec::new()),
                deadline_ms: None,
            },
        );
        roundtrip_request(
            7,
            &Request::Wait {
                ticket: Ticket::from_targets(vec![1, 2]),
                deadline_ms: Some(1500),
            },
        );
        roundtrip_request(
            8,
            &Request::Wait {
                ticket: Ticket::from_targets(vec![1]),
                deadline_ms: Some(u64::MAX),
            },
        );
        roundtrip_request(4, &Request::Flush);
        for query in [
            Query::Degree(9),
            Query::Neighbors(u64::MAX),
            Query::Stats,
            Query::Metrics,
            Query::Pagerank { iterations: 20 },
            Query::Bfs { source: 7 },
            Query::ConnectedComponents,
            Query::TriangleCount,
            Query::KCore { k: 3 },
            Query::KCore { k: u64::MAX },
            Query::TopKDegree { k: 10 },
            Query::TopKPagerank { k: u64::MAX },
            Query::KHop {
                source: u64::MAX,
                depth: 2,
            },
            Query::KHop {
                source: 0,
                depth: u64::MAX,
            },
        ] {
            roundtrip_request(5, &Request::Query(query));
        }
    }

    #[test]
    fn every_response_and_query_result_variant_roundtrips() {
        roundtrip_response(
            1,
            &Response::Mutated {
                ticket: Ticket::from_targets(vec![1, 2, 3]),
                ops: 42,
            },
        );
        roundtrip_response(2, &Response::Waited);
        roundtrip_response(3, &Response::Flushed);
        roundtrip_response(31, &Response::OpStatus(OpStatus::Committed));
        roundtrip_response(32, &Response::OpStatus(OpStatus::NotCommitted));
        roundtrip_response(33, &Response::OpStatus(OpStatus::Unknown));
        for result in [
            QueryResult::Degree(usize::MAX),
            QueryResult::Neighbors(vec![1, 2, u64::MAX]),
            QueryResult::Neighbors(Vec::new()),
            QueryResult::Stats(sample_stats()),
            QueryResult::Metrics(Box::new(sample_metrics())),
            QueryResult::Metrics(Box::default()),
            QueryResult::Pagerank(vec![0.25, -1.5, f64::MAX, 0.0]),
            QueryResult::Bfs(vec![-1, 0, 7, i64::MAX, i64::MIN]),
            QueryResult::ConnectedComponents(vec![0, 0, 3]),
            QueryResult::TriangleCount(u64::MAX),
            QueryResult::TriangleCount(0),
            QueryResult::KCore(vec![0, 5, u64::MAX]),
            QueryResult::KCore(Vec::new()),
            QueryResult::TopKDegree(vec![(7, u64::MAX), (u64::MAX, 0)]),
            QueryResult::TopKDegree(Vec::new()),
            QueryResult::TopKPagerank(vec![(3, 0.25), (u64::MAX, f64::MAX), (0, -0.0)]),
            QueryResult::TopKPagerank(Vec::new()),
            QueryResult::KHop(vec![1, 2, 3, u64::MAX]),
            QueryResult::KHop(Vec::new()),
            QueryResult::Partial {
                degraded_shards: vec![1, 3],
                result: Box::new(QueryResult::TriangleCount(9)),
            },
            QueryResult::Partial {
                degraded_shards: Vec::new(),
                result: Box::new(QueryResult::ConnectedComponents(vec![0, 1])),
            },
        ] {
            roundtrip_response(4, &Response::Answer(result));
        }
    }

    #[test]
    fn nested_partial_results_are_rejected() {
        let mut buf = Vec::new();
        put_query_result(
            &mut buf,
            &QueryResult::Partial {
                degraded_shards: vec![0],
                result: Box::new(QueryResult::Degree(1)),
            },
        );
        // Splice the whole Partial frame in as its own inner result.
        let mut nested = vec![12u8, 0]; // RESULT_PARTIAL, no shards
        nested.extend_from_slice(&buf);
        assert!(get_query_result(&mut Dec::new(&nested)).is_err());
    }

    #[test]
    fn every_graph_error_variant_roundtrips_losslessly() {
        // Satellite: Io / Protocol / Overloaded (and everything else)
        // survive the wire in both directions.  GraphError is PartialEq,
        // so this is exact.
        let errors = [
            GraphError::OutOfSpace("pool 3 full".to_string()),
            GraphError::VertexOutOfRange {
                vertex: u64::MAX,
                capacity: 128,
            },
            GraphError::Unsupported("pagerank"),
            GraphError::Closed,
            GraphError::WorkerDied { shard: 5 },
            GraphError::Io("connection reset by peer".to_string()),
            GraphError::Protocol("unknown Response tag 99".to_string()),
            GraphError::Overloaded {
                reason: "rate".to_string(),
            },
            GraphError::Overloaded {
                reason: "inflight".to_string(),
            },
            GraphError::Overloaded {
                reason: "backpressure".to_string(),
            },
            GraphError::Corrupted {
                region: "edge section 3".to_string(),
                detail: "shard 1 @ +4096: crc mismatch".to_string(),
            },
            GraphError::Degraded {
                shards: vec![0, 2, 5],
            },
            GraphError::Degraded { shards: Vec::new() },
            GraphError::Timeout { waited_ms: 250 },
            GraphError::Other("anything else".to_string()),
        ];
        for err in errors {
            let mut buf = Vec::new();
            put_graph_error(&mut buf, &err);
            let mut dec = Dec::new(&buf);
            let back = get_graph_error(&mut dec).expect("error decodes");
            assert!(dec.is_done());
            assert_eq!(back, err);
            // And nested inside a Response frame.
            roundtrip_response(9, &Response::Error(err));
        }
    }

    #[test]
    fn wire_error_maps_to_protocol_graph_error() {
        let err: GraphError = WireError::BadVersion(9).into();
        match err {
            GraphError::Protocol(msg) => assert!(msg.contains("version 9"), "{msg}"),
            other => panic!("wrong mapping: {other:?}"),
        }
    }

    #[test]
    fn oversized_unsupported_string_gets_the_sentinel() {
        let mut buf = Vec::new();
        buf.push(2); // ERR_UNSUPPORTED
        put_str(&mut buf, &"x".repeat(4096));
        let back = get_graph_error(&mut Dec::new(&buf)).unwrap();
        assert_eq!(back, GraphError::Unsupported("<oversized wire string>"));
    }

    // ------------------------------------------------------------------
    // Satellite: truncated / oversized / garbage rejection
    // ------------------------------------------------------------------

    #[test]
    fn every_strict_prefix_of_a_valid_payload_is_rejected() {
        let mut samples: Vec<Vec<u8>> = Vec::new();
        let mut frame = Vec::new();
        put_request_frame(
            &mut frame,
            77,
            &Request::Mutate {
                ops: vec![Update::InsertEdge(1, 2), Update::DeleteEdge(3, 4)],
                client: None,
            },
        );
        samples.push(frame[FRAME_HEADER_LEN..].to_vec());
        let mut frame = Vec::new();
        put_request_frame(
            &mut frame,
            84,
            &Request::Mutate {
                ops: vec![Update::InsertEdge(1, 2)],
                client: Some(ClientOp {
                    client_id: 300,
                    op_id: 7,
                }),
            },
        );
        samples.push(frame[FRAME_HEADER_LEN..].to_vec());
        let mut frame = Vec::new();
        put_request_frame(
            &mut frame,
            85,
            &Request::ProbeOp {
                client_id: 300,
                op_id: 300,
            },
        );
        samples.push(frame[FRAME_HEADER_LEN..].to_vec());
        let mut frame = Vec::new();
        put_response_frame(&mut frame, 86, &Response::OpStatus(OpStatus::Unknown));
        samples.push(frame[FRAME_HEADER_LEN..].to_vec());
        let mut frame = Vec::new();
        put_response_frame(
            &mut frame,
            78,
            &Response::Answer(QueryResult::Metrics(Box::new(sample_metrics()))),
        );
        samples.push(frame[FRAME_HEADER_LEN..].to_vec());
        let mut frame = Vec::new();
        put_response_frame(
            &mut frame,
            79,
            &Response::Error(GraphError::Overloaded {
                reason: "rate".to_string(),
            }),
        );
        samples.push(frame[FRAME_HEADER_LEN..].to_vec());
        let mut frame = Vec::new();
        put_request_frame(
            &mut frame,
            80,
            &Request::Query(Query::KHop {
                source: 300,
                depth: 2,
            }),
        );
        samples.push(frame[FRAME_HEADER_LEN..].to_vec());
        let mut frame = Vec::new();
        put_response_frame(
            &mut frame,
            81,
            &Response::Answer(QueryResult::TopKPagerank(vec![(1, 0.5), (300, 0.25)])),
        );
        samples.push(frame[FRAME_HEADER_LEN..].to_vec());
        let mut frame = Vec::new();
        put_response_frame(
            &mut frame,
            82,
            &Response::Answer(QueryResult::TopKDegree(vec![(1, 9), (300, 8)])),
        );
        samples.push(frame[FRAME_HEADER_LEN..].to_vec());
        let mut frame = Vec::new();
        put_response_frame(
            &mut frame,
            83,
            &Response::Answer(QueryResult::KCore(vec![0, 1, 300])),
        );
        samples.push(frame[FRAME_HEADER_LEN..].to_vec());

        for payload in samples {
            decode_payload(&payload).expect("full payload decodes");
            for cut in 0..payload.len() {
                assert!(
                    decode_payload(&payload[..cut]).is_err(),
                    "prefix of {cut}/{} bytes decoded",
                    payload.len()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_after_a_valid_body_are_rejected() {
        let mut frame = Vec::new();
        put_request_frame(&mut frame, 1, &Request::Flush);
        let mut payload = frame[FRAME_HEADER_LEN..].to_vec();
        payload.push(0);
        assert!(decode_payload(&payload).is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_buffering() {
        let mut fb = FrameBuffer::new(MAX_FRAME_LEN);
        fb.extend(&u32::MAX.to_le_bytes());
        match fb.next_frame() {
            Err(WireError::TooLarge { len, max }) => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("hostile length accepted: {other:?}"),
        }
    }

    #[test]
    fn hostile_element_counts_error_without_allocating() {
        // Each body claims ~2^60 elements with almost no bytes behind the
        // claim.  `count()` must reject before `Vec::with_capacity` — if it
        // did not, these tests would OOM rather than fail an assert.
        let huge = 1u64 << 60;

        // Mutate claiming 2^60 ops.
        let mut body = vec![0u8]; // REQUEST_MUTATE
        put_varint(&mut body, huge);
        let err = get_request(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadCount { .. }), "{err:?}");

        // Tagged mutate claiming 2^60 ops after its identity.
        let mut body = vec![4u8]; // REQUEST_MUTATE_AS
        put_varint(&mut body, 1); // client id
        put_varint(&mut body, 1); // op id
        put_varint(&mut body, huge);
        let err = get_request(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadCount { .. }), "{err:?}");

        // Neighbors claiming 2^60 vertex ids.
        let mut body = vec![1u8]; // RESULT_NEIGHBORS
        put_varint(&mut body, huge);
        let err = get_query_result(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadCount { .. }), "{err:?}");

        // Pagerank claiming 2^60 ranks (8 bytes each).
        let mut body = vec![4u8]; // RESULT_PAGERANK
        put_varint(&mut body, huge);
        let err = get_query_result(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadCount { .. }), "{err:?}");

        // Metrics claiming 2^60 counters.
        let mut body = vec![3u8]; // RESULT_METRICS
        put_varint(&mut body, huge);
        let err = get_query_result(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadCount { .. }), "{err:?}");

        // K-core claiming 2^60 members.
        let mut body = vec![8u8]; // RESULT_KCORE
        put_varint(&mut body, huge);
        let err = get_query_result(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadCount { .. }), "{err:?}");

        // Top-k degree claiming 2^60 pairs (2 bytes each minimum).
        let mut body = vec![9u8]; // RESULT_TOPK_DEGREE
        put_varint(&mut body, huge);
        let err = get_query_result(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadCount { .. }), "{err:?}");

        // Top-k pagerank claiming 2^60 pairs (9 bytes each minimum).
        let mut body = vec![10u8]; // RESULT_TOPK_PAGERANK
        put_varint(&mut body, huge);
        let err = get_query_result(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadCount { .. }), "{err:?}");

        // K-hop claiming 2^60 members.
        let mut body = vec![11u8]; // RESULT_KHOP
        put_varint(&mut body, huge);
        let err = get_query_result(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadCount { .. }), "{err:?}");

        // Histogram claiming more nonzero buckets than exist.
        let mut body = Vec::new();
        put_varint(&mut body, HISTOGRAM_BUCKETS as u64 + 1);
        let err = get_histogram(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadCount { .. }), "{err:?}");

        // Histogram bucket index out of range.
        let mut body = Vec::new();
        put_varint(&mut body, 1);
        put_varint(&mut body, HISTOGRAM_BUCKETS as u64); // index 64: invalid
        put_varint(&mut body, 5);
        let err = get_histogram(&mut Dec::new(&body)).unwrap_err();
        assert!(matches!(err, WireError::BadTag { .. }), "{err:?}");
    }

    #[test]
    fn garbage_version_kind_and_tags_are_rejected() {
        // Wrong protocol version.
        assert!(matches!(
            decode_payload(&[9, KIND_REQUEST, 0, 2]),
            Err(WireError::BadVersion(9))
        ));
        // Unknown frame kind.
        assert!(matches!(
            decode_payload(&[PROTOCOL_VERSION, 7, 0]),
            Err(WireError::BadTag {
                what: "frame kind",
                ..
            })
        ));
        // Unknown request tag.
        assert!(matches!(
            decode_payload(&[PROTOCOL_VERSION, KIND_REQUEST, 0, 200]),
            Err(WireError::BadTag {
                what: "Request",
                ..
            })
        ));
        // Unknown response tag.
        assert!(matches!(
            decode_payload(&[PROTOCOL_VERSION, KIND_RESPONSE, 0, 200]),
            Err(WireError::BadTag {
                what: "Response",
                ..
            })
        ));
        // Op-status response carrying a meaningless status byte.
        assert!(matches!(
            decode_payload(&[PROTOCOL_VERSION, KIND_RESPONSE, 0, 5, 9]),
            Err(WireError::BadTag {
                what: "OpStatus",
                ..
            })
        ));
        // Empty payload.
        assert!(decode_payload(&[]).is_err());
        // Pure noise: must error, never panic.
        let noise: Vec<u8> = (0..=255u8).rev().collect();
        assert!(decode_payload(&noise).is_err());
    }

    #[test]
    fn invalid_utf8_in_strings_is_rejected() {
        let mut body = vec![5u8]; // ERR_OTHER
        put_varint(&mut body, 2);
        body.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            get_graph_error(&mut Dec::new(&body)),
            Err(WireError::BadUtf8("error message"))
        );
    }

    #[test]
    fn frame_buffer_separates_back_to_back_frames() {
        let mut bytes = Vec::new();
        put_request_frame(&mut bytes, 1, &Request::Flush);
        put_request_frame(&mut bytes, 2, &Request::Query(Query::Stats));
        put_response_frame(&mut bytes, 1, &Response::Flushed);
        let mut fb = FrameBuffer::new(MAX_FRAME_LEN);
        fb.extend(&bytes);
        let mut ids = Vec::new();
        while let Some(frame) = fb.next_frame().unwrap() {
            ids.push(match frame {
                Frame::Request { id, .. } => id,
                Frame::Response { id, .. } => id + 100,
            });
        }
        assert_eq!(ids, vec![1, 2, 101]);
        assert_eq!(fb.pending_bytes(), 0);
    }
}
