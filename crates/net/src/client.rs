//! The remote counterpart of [`service::GraphClient`]: same call surface,
//! but every request crosses a TCP socket as a [`crate::wire`] frame.
//!
//! A [`RemoteClient`] is cheap to clone; clones share one connection.  Each
//! request carries a connection-unique id, and a background demux thread
//! routes response frames — which the server may emit **out of order** —
//! back to whichever caller is waiting.  [`RemoteClient::send`] exposes the
//! pipelining directly: fire several requests, then harvest the
//! [`PendingReply`]s in any order.

use crate::wire::{self, Frame, FrameBuffer};
use dgap::{GraphError, GraphResult, Update, VertexId};
use obs::MetricsSnapshot;
use service::{ClientOp, OpStatus, Query, QueryResult, Request, Response, ServiceStats};
use sharded::Ticket;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shared connection state: the write half (framed sends are serialised
/// under the lock) and the pending-reply routing table fed by the demux
/// thread.
struct Core {
    write: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, Sender<Response>>>,
    next_id: AtomicU64,
    closed: AtomicBool,
}

impl Core {
    /// Mark the connection dead and wake every waiter: their reply senders
    /// drop, so `PendingReply::wait` observes the disconnect.
    fn poison(&self) {
        self.closed.store(true, Ordering::Release);
        self.pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
        let write = self.write.lock().unwrap_or_else(|p| p.into_inner());
        let _ = write.shutdown(Shutdown::Both);
    }
}

/// Closes the socket when the last clone of the client is dropped, which
/// also unblocks the demux thread's read.
struct ConnGuard {
    core: Arc<Core>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.core.poison();
    }
}

/// A handle to a [`crate::GraphServer`] over TCP, mirroring
/// [`service::GraphClient`]: `mutate` / `wait` / `flush` / `query` plus the
/// same convenience accessors.
#[derive(Clone)]
pub struct RemoteClient {
    core: Arc<Core>,
    _guard: Arc<ConnGuard>,
}

/// An in-flight request: hold several to pipeline, then [`wait`] in any
/// order.
///
/// [`wait`]: PendingReply::wait
pub struct PendingReply {
    rx: Receiver<Response>,
}

impl PendingReply {
    /// Block until the server's reply arrives (or the connection dies).
    pub fn wait(self) -> GraphResult<Response> {
        self.rx.recv().map_err(|_| GraphError::Closed)
    }
}

impl RemoteClient {
    /// Connect to a [`crate::GraphServer`] at `addr` and start the demux
    /// thread.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> GraphResult<RemoteClient> {
        let stream = TcpStream::connect(addr).map_err(|e| GraphError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let read_half = stream
            .try_clone()
            .map_err(|e| GraphError::Io(e.to_string()))?;
        let core = Arc::new(Core {
            write: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        let demux_core = Arc::clone(&core);
        std::thread::Builder::new()
            .name("graph-net-demux".to_string())
            .spawn(move || demux_loop(&demux_core, read_half))
            .map_err(|e| GraphError::Io(e.to_string()))?;
        let guard = Arc::new(ConnGuard {
            core: Arc::clone(&core),
        });
        Ok(RemoteClient {
            core,
            _guard: guard,
        })
    }

    /// [`RemoteClient::connect`] with bounded retry: up to `attempts`
    /// connection attempts, sleeping `base_delay`, `2 × base_delay`,
    /// `4 × base_delay`, … between them (exponential backoff, no sleep
    /// after the last failure).  The reconnect primitive for a durable
    /// client riding out a server restart — pair it with
    /// [`RemoteClient::probe_op`] to resolve in-doubt operations once the
    /// connection is back.
    ///
    /// Returns the last attempt's error if every attempt fails.
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        attempts: usize,
        base_delay: Duration,
    ) -> GraphResult<RemoteClient> {
        assert!(attempts > 0, "connect_retry needs at least one attempt");
        let mut delay = base_delay;
        let mut last = GraphError::Io("no connection attempts made".to_string());
        for attempt in 0..attempts {
            match Self::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(err) => last = err,
            }
            if attempt + 1 < attempts {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
        }
        Err(last)
    }

    /// Fire a request without waiting: the building block for pipelining.
    pub fn send(&self, request: &Request) -> GraphResult<PendingReply> {
        if self.core.closed.load(Ordering::Acquire) {
            return Err(GraphError::Closed);
        }
        let id = self.core.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let (tx, rx) = mpsc::channel();
        self.core
            .pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, tx);
        let mut buf = Vec::with_capacity(64);
        wire::put_request_frame(&mut buf, id, request);
        let write_result = {
            let mut write = self.core.write.lock().unwrap_or_else(|p| p.into_inner());
            write.write_all(&buf)
        };
        if let Err(e) = write_result {
            self.core
                .pending
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(&id);
            return Err(GraphError::Io(e.to_string()));
        }
        Ok(PendingReply { rx })
    }

    /// One round trip: send, then wait.
    pub fn call(&self, request: &Request) -> GraphResult<Response> {
        self.send(request)?.wait()
    }

    /// Submit a batch of updates; the returned [`Ticket`] buys
    /// read-your-writes via [`RemoteClient::wait`].
    pub fn mutate(&self, ops: Vec<Update>) -> GraphResult<Ticket> {
        match self.call(&Request::Mutate { ops, client: None })? {
            Response::Mutated { ticket, .. } => Ok(ticket),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Mutated", &other)),
        }
    }

    /// Submit a batch under a `(client_id, op_id)` identity (both non-zero;
    /// see [`ClientOp`] for the numbering and retry contract).  Duplicate
    /// submissions — retries after an error, or a concurrent double-send —
    /// are acknowledged with the original ticket and applied exactly once.
    pub fn mutate_as(&self, client_id: u64, op_id: u64, ops: Vec<Update>) -> GraphResult<Ticket> {
        let client = Some(ClientOp { client_id, op_id });
        match self.call(&Request::Mutate { ops, client })? {
            Response::Mutated { ticket, .. } => Ok(ticket),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Mutated", &other)),
        }
    }

    /// Did `(client_id, op_id)` durably commit on the server?
    pub fn probe_op(&self, client_id: u64, op_id: u64) -> GraphResult<OpStatus> {
        match self.call(&Request::ProbeOp { client_id, op_id })? {
            Response::OpStatus(status) => Ok(status),
            Response::Error(err) => Err(err),
            other => Err(unexpected("OpStatus", &other)),
        }
    }

    /// Exactly-once submit-and-wait: probe `(client_id, op_id)` first, and
    /// only submit (then wait on the ticket) when the server does not
    /// already have it committed.  Safe to call any number of times with
    /// the same identity and the identical `ops` — the canonical retry
    /// loop after an error or a [`RemoteClient::connect_retry`] reconnect
    /// is simply calling this again.  When this returns `Ok`, the batch is
    /// durably applied exactly once; the returned ticket is already
    /// satisfied (empty when the probe short-circuited).
    pub fn mutate_durable(
        &self,
        client_id: u64,
        op_id: u64,
        ops: Vec<Update>,
    ) -> GraphResult<Ticket> {
        if self.probe_op(client_id, op_id)? == OpStatus::Committed {
            return Ok(Ticket::empty());
        }
        let ticket = self.mutate_as(client_id, op_id, ops)?;
        self.wait(&ticket)?;
        Ok(ticket)
    }

    /// Block until everything behind `ticket` is applied.
    pub fn wait(&self, ticket: &Ticket) -> GraphResult<()> {
        match self.call(&Request::Wait {
            ticket: ticket.clone(),
            deadline_ms: None,
        })? {
            Response::Waited => Ok(()),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Waited", &other)),
        }
    }

    /// [`RemoteClient::wait`] with an upper bound enforced server-side: if
    /// the ticket has not drained within `deadline` the server answers the
    /// structured [`GraphError::Timeout`] instead of pinning a worker (and
    /// this connection) indefinitely.  The ticket stays valid — retry the
    /// wait later.
    pub fn wait_deadline(&self, ticket: &Ticket, deadline: Duration) -> GraphResult<()> {
        match self.call(&Request::Wait {
            ticket: ticket.clone(),
            deadline_ms: Some(deadline.as_millis() as u64),
        })? {
            Response::Waited => Ok(()),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Waited", &other)),
        }
    }

    /// Global flush barrier: every update submitted so far (by any client)
    /// is applied when this returns.
    pub fn flush(&self) -> GraphResult<()> {
        match self.call(&Request::Flush)? {
            Response::Flushed => Ok(()),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Flushed", &other)),
        }
    }

    /// Run a read query against the server's current snapshot.
    pub fn query(&self, query: Query) -> GraphResult<QueryResult> {
        match self.call(&Request::Query(query))? {
            Response::Answer(result) => Ok(result),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Answer", &other)),
        }
    }

    /// Degree of `v` in the current snapshot.
    pub fn degree(&self, v: VertexId) -> GraphResult<usize> {
        match self.query(Query::Degree(v))? {
            QueryResult::Degree(d) => Ok(d),
            other => Err(unexpected_result("Degree", &other)),
        }
    }

    /// Neighbors of `v` in the current snapshot.
    pub fn neighbors(&self, v: VertexId) -> GraphResult<Vec<VertexId>> {
        match self.query(Query::Neighbors(v))? {
            QueryResult::Neighbors(n) => Ok(n),
            other => Err(unexpected_result("Neighbors", &other)),
        }
    }

    /// Service-wide counters (graph size, pipeline, snapshot cache, served
    /// requests).
    pub fn stats(&self) -> GraphResult<ServiceStats> {
        match self.query(Query::Stats)? {
            QueryResult::Stats(stats) => Ok(stats),
            other => Err(unexpected_result("Stats", &other)),
        }
    }

    /// Number of unordered triangles in the current snapshot.
    pub fn triangle_count(&self) -> GraphResult<u64> {
        match self.query(Query::TriangleCount)? {
            QueryResult::TriangleCount(t) => Ok(t),
            other => Err(unexpected_result("TriangleCount", &other)),
        }
    }

    /// The vertices of the k-core, ascending.
    pub fn k_core(&self, k: u64) -> GraphResult<Vec<VertexId>> {
        match self.query(Query::KCore { k })? {
            QueryResult::KCore(core) => Ok(core),
            other => Err(unexpected_result("KCore", &other)),
        }
    }

    /// The `k` highest-degree vertices, descending.
    pub fn top_k_degree(&self, k: u64) -> GraphResult<Vec<(VertexId, u64)>> {
        match self.query(Query::TopKDegree { k })? {
            QueryResult::TopKDegree(top) => Ok(top),
            other => Err(unexpected_result("TopKDegree", &other)),
        }
    }

    /// The `k` highest-PageRank vertices, descending (served from the
    /// maintained rank vector on the server).
    pub fn top_k_pagerank(&self, k: u64) -> GraphResult<Vec<(VertexId, f64)>> {
        match self.query(Query::TopKPagerank { k })? {
            QueryResult::TopKPagerank(top) => Ok(top),
            other => Err(unexpected_result("TopKPagerank", &other)),
        }
    }

    /// Every vertex within `depth` hops of `source`, ascending.
    pub fn khop(&self, source: VertexId, depth: u64) -> GraphResult<Vec<VertexId>> {
        match self.query(Query::KHop { source, depth })? {
            QueryResult::KHop(ball) => Ok(ball),
            other => Err(unexpected_result("KHop", &other)),
        }
    }

    /// Full metrics snapshot from the server's registry — includes the
    /// `net_*` series describing the connection this client is using.
    pub fn metrics(&self) -> GraphResult<MetricsSnapshot> {
        match self.query(Query::Metrics)? {
            QueryResult::Metrics(snap) => Ok(*snap),
            other => Err(unexpected_result("Metrics", &other)),
        }
    }

    /// Hang up.  Outstanding [`PendingReply`]s (from any clone) observe
    /// [`GraphError::Closed`].
    pub fn close(&self) {
        self.core.poison();
    }
}

fn demux_loop(core: &Arc<Core>, mut stream: TcpStream) {
    let mut frames = FrameBuffer::new(wire::MAX_FRAME_LEN);
    let mut scratch = [0u8; 16 * 1024];
    loop {
        loop {
            match frames.next_frame() {
                Ok(Some(Frame::Response { id, response })) => {
                    let waiter = core
                        .pending
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .remove(&id);
                    if let Some(tx) = waiter {
                        let _ = tx.send(response);
                    }
                    // id 0 (or an id we gave up on) has no waiter: the
                    // server's courtesy error before hanging up. Dropped.
                }
                Ok(Some(Frame::Request { .. })) | Err(_) => {
                    // Servers do not send requests; either way the stream
                    // is unusable.
                    core.poison();
                    return;
                }
                Ok(None) => break,
            }
        }
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => {
                core.poison();
                return;
            }
            Ok(n) => frames.extend(&scratch[..n]),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> GraphError {
    GraphError::Protocol(format!("wanted {wanted} response, got {got:?}"))
}

fn unexpected_result(wanted: &str, got: &QueryResult) -> GraphError {
    GraphError::Protocol(format!("wanted {wanted} result, got {got:?}"))
}
