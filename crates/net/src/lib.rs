//! # net — the out-of-process serving plane
//!
//! Everything below this crate assumes the caller shares an address space
//! with the engine.  This crate removes that assumption with zero external
//! dependencies: a hand-rolled binary wire protocol ([`wire`]), a TCP
//! [`GraphServer`] that multiplexes many connections onto the
//! [`service::GraphService`] worker pool, and a [`RemoteClient`] that
//! mirrors the in-process [`service::GraphClient`] API call-for-call.
//!
//! ## Wire format
//!
//! Frames are length-prefixed; payloads are explicit, versioned
//! encodings — no derive magic, no reflection:
//!
//! ```text
//! [len: u32 LE] [version: u8] [kind: u8] [id: varint] [body...]
//!                                 |
//!                 1 = request, 2 = response
//! ```
//!
//! Integers are LEB128 varints (zigzag for signed), floats 8-byte LE,
//! strings length-prefixed UTF-8.  The decoder is **hostile-input safe**:
//! frame lengths are capped, claimed element counts are validated against
//! the bytes actually present before any allocation, and strings are
//! checked UTF-8 — a garbage peer costs a bounded parse, never memory.
//!
//! ## Multi-tenant admission control
//!
//! The server treats each connection as a tenant with quotas (in-flight
//! window, ops/sec token bucket) and sheds mutations while the ingest
//! pipeline's own backpressure telemetry says it is behind.  Shed requests
//! get a structured [`dgap::GraphError::Overloaded`] reply — the
//! connection stays healthy, so a well-behaved client simply backs off.
//!
//! ## Quick start
//!
//! ```
//! use dgap::Update;
//! use net::{GraphServer, NetConfig, RemoteClient};
//! use service::ServiceConfig;
//!
//! let server = GraphServer::start(
//!     ServiceConfig::small_test(),
//!     NetConfig::loopback(),
//! )
//! .unwrap();
//! let client = RemoteClient::connect(server.local_addr()).unwrap();
//!
//! let ticket = client
//!     .mutate(vec![Update::InsertEdge(0, 1), Update::InsertEdge(0, 2)])
//!     .unwrap();
//! client.wait(&ticket).unwrap(); // read-your-writes over TCP
//! assert_eq!(client.degree(0).unwrap(), 2);
//!
//! client.close();
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{PendingReply, RemoteClient};
pub use server::{GraphServer, NetConfig};
