//! The TCP front-end: many concurrent connections multiplexed onto the
//! [`service::GraphService`] worker pool, with per-client admission
//! control.
//!
//! ## Connection anatomy
//!
//! Each accepted socket gets two threads.  The **reader** accumulates
//! bytes into a [`wire::FrameBuffer`], applies admission control to every
//! decoded request, and forwards admitted requests through the service's
//! tag-routing [`service::RawClient`] — the request id doubles as the tag,
//! and the shared reply channel feeds the **writer**, which encodes
//! response frames back onto the socket in whatever order the workers
//! finish them.  Pipelining is therefore free: a connection can have up to
//! `max_inflight` requests outstanding and replies interleave out of
//! order.  Because replies are routed by id, reusing an id while its first
//! use is still in flight is a protocol error and costs the client its
//! connection.
//!
//! ## Admission control
//!
//! Three quotas guard the shared engine, all shedding with a structured
//! [`GraphError::Overloaded`] response (never a dropped connection):
//!
//! * **in-flight window** — at most `max_inflight` admitted requests per
//!   connection awaiting their reply;
//! * **ops/sec token bucket** — each request costs its operation count
//!   (a `Mutate` batch costs one token per update, everything else one); a
//!   batch costing more than the whole bucket is admitted against a *full*
//!   bucket with the excess charged as debt, so even oversized batches
//!   stay retryable;
//! * **backpressure** — `Mutate` requests are shed while the ingest
//!   pipeline's own telemetry (the PR 6 `pipeline_queue_depth` gauges and
//!   `pipeline_backpressure_stalls` counters) says the drain workers are
//!   behind, so remote writers stall at the edge instead of inside the
//!   service worker pool.

use crate::wire::{self, Frame, FrameBuffer};
use dgap::{GraphError, GraphResult};
use obs::{Counter, Gauge, Histogram, Registry};
use pmem::PmemPool;
use service::{GraphService, RawClient, Request, Response, ServiceConfig, ShardedRecovery};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server listens, admits and times out clients.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen address.  Port 0 picks a free port (read it back with
    /// [`GraphServer::local_addr`]).
    pub addr: String,
    /// Per-connection cap on admitted requests awaiting their reply.
    pub max_inflight: usize,
    /// Per-connection operations/second token bucket (`None` = unmetered).
    /// A `Mutate` costs one token per update, every other request one.  A
    /// batch costing more than the whole bucket is admitted when the bucket
    /// is full, with the excess charged as debt (the connection is then
    /// shed until the debt refills) — shedding is always retryable.
    pub ops_per_sec: Option<u64>,
    /// Token-bucket burst capacity; `0` means one second's worth
    /// (`ops_per_sec`).
    pub burst_ops: u64,
    /// Shed `Mutate` requests while the pipeline's queued batches
    /// (summed `pipeline_queue_depth` gauges) reach this, or while the
    /// `pipeline_backpressure_stalls` counters are actively advancing
    /// (`None` disables backpressure shedding).
    pub shed_queue_depth: Option<u64>,
    /// Close a connection that sends no frame for this long.
    pub idle_timeout: Duration,
    /// Ceiling on one frame's payload length.
    pub max_frame_len: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 64,
            ops_per_sec: None,
            burst_ops: 0,
            shed_queue_depth: None,
            idle_timeout: Duration::from_secs(30),
            max_frame_len: wire::MAX_FRAME_LEN,
        }
    }
}

impl NetConfig {
    /// Loopback defaults on an OS-assigned port — what tests and examples
    /// want.
    pub fn loopback() -> NetConfig {
        NetConfig::default()
    }
}

/// How often a blocked reader wakes to check idle/shutdown state.
const POLL_TICK: Duration = Duration::from_millis(25);
/// How long [`GraphServer::shutdown`] waits for connections to drain.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// The `net_*` series, registered in the service's own registry so one
/// `Query::Metrics` (or `METRICS_serve.prom` dump) covers the whole stack.
struct NetMetrics {
    connections_open: Arc<Gauge>,
    connections_total: Arc<Counter>,
    requests_total: Arc<Counter>,
    responses_total: Arc<Counter>,
    shed_inflight: Arc<Counter>,
    shed_rate: Arc<Counter>,
    shed_backpressure: Arc<Counter>,
    request_nanos: Arc<Histogram>,
    idle_disconnects: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
}

impl NetMetrics {
    fn new(registry: &Registry) -> NetMetrics {
        NetMetrics {
            connections_open: registry.gauge("net_connections_open"),
            connections_total: registry.counter("net_connections_total"),
            requests_total: registry.counter("net_requests_total"),
            responses_total: registry.counter("net_responses_total"),
            shed_inflight: registry.counter_with("net_requests_shed", "reason=\"inflight\""),
            shed_rate: registry.counter_with("net_requests_shed", "reason=\"rate\""),
            shed_backpressure: registry
                .counter_with("net_requests_shed", "reason=\"backpressure\""),
            request_nanos: registry.histogram("net_request_nanos"),
            idle_disconnects: registry.counter("net_idle_disconnects"),
            protocol_errors: registry.counter("net_protocol_errors"),
            bytes_read: registry.counter("net_bytes_read"),
            bytes_written: registry.counter("net_bytes_written"),
        }
    }

    fn shed(&self, reason: &'static str) -> &Counter {
        match reason {
            "inflight" => &self.shed_inflight,
            "rate" => &self.shed_rate,
            _ => &self.shed_backpressure,
        }
    }
}

struct Shared {
    raw: RawClient,
    metrics: NetMetrics,
    /// The pipeline's per-shard queue-depth gauges — the backpressure
    /// signal, read instead of re-plumbed.
    queue_depth: Vec<Arc<Gauge>>,
    /// The pipeline's per-shard backpressure-stall counters.
    stalls: Vec<Arc<Counter>>,
    config: NetConfig,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    conn_seq: AtomicU64,
}

impl Shared {
    fn stall_sum(&self) -> u64 {
        self.stalls.iter().map(|c| c.get()).sum()
    }

    fn queue_depth_sum(&self) -> u64 {
        self.queue_depth.iter().map(|g| g.get().max(0) as u64).sum()
    }
}

/// A per-connection ops/sec token bucket.  Lives on the reader thread, so
/// plain arithmetic suffices.
struct TokenBucket {
    rate: Option<u64>,
    capacity: f64,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    fn new(rate: Option<u64>, burst: u64) -> TokenBucket {
        let capacity = match rate {
            Some(r) => (if burst > 0 { burst } else { r }) as f64,
            None => 0.0,
        };
        TokenBucket {
            rate,
            capacity,
            tokens: capacity,
            refilled: Instant::now(),
        }
    }

    /// Admit a request costing `cost` tokens, or refuse it.
    ///
    /// A cost larger than the whole bucket is still admissible — against a
    /// *full* bucket — by charging the excess as debt: the balance goes
    /// negative and refills over `cost / rate` seconds, during which the
    /// connection is shed.  [`GraphError::Overloaded`] promises that
    /// backing off and retrying is safe, so no single request may be
    /// permanently inadmissible.
    fn admit(&mut self, cost: u64) -> bool {
        let Some(rate) = self.rate else { return true };
        let now = Instant::now();
        let refill = now.duration_since(self.refilled).as_secs_f64() * rate as f64;
        self.tokens = (self.tokens + refill).min(self.capacity);
        self.refilled = now;
        if cost == 0 {
            return true;
        }
        let need = (cost as f64).min(self.capacity);
        if self.capacity <= 0.0 || self.tokens < need {
            return false;
        }
        self.tokens -= cost as f64;
        true
    }
}

/// The TCP server: accepts connections, speaks the [`crate::wire`]
/// protocol, and multiplexes every admitted request onto the owned
/// [`GraphService`]'s worker pool.
///
/// [`GraphServer::shutdown`] drains gracefully: the listener stops, open
/// connections finish their in-flight requests and close, then the service
/// itself shuts down.  Dropping the server does the same.
pub struct GraphServer {
    service: Option<GraphService>,
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl GraphServer {
    /// Build a fresh engine ([`GraphService::start`]) and serve it on
    /// `net.addr`.
    pub fn start(config: ServiceConfig, net: NetConfig) -> GraphResult<GraphServer> {
        Self::serve(GraphService::start(config)?, net)
    }

    /// Restart over existing pools ([`GraphService::open`] — per-shard
    /// crash recovery included) and serve the recovered graph: the
    /// crash-restart-reconnect path.  Clients that kept their addresses
    /// reconnect and observe everything that was durable before the crash.
    pub fn open(
        config: ServiceConfig,
        net: NetConfig,
        pools: Vec<Arc<PmemPool>>,
    ) -> GraphResult<(GraphServer, ShardedRecovery)> {
        let (service, recovery) = GraphService::open(config, pools)?;
        Ok((Self::serve(service, net)?, recovery))
    }

    /// Serve an already-running service on `net.addr`.
    pub fn serve(service: GraphService, net: NetConfig) -> GraphResult<GraphServer> {
        let listener = TcpListener::bind(&net.addr).map_err(|e| GraphError::Io(e.to_string()))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| GraphError::Io(e.to_string()))?;
        let registry = Arc::clone(service.registry());
        let num_shards = service.graph().num_shards();
        let shared = Arc::new(Shared {
            raw: service.raw_client(),
            metrics: NetMetrics::new(&registry),
            queue_depth: (0..num_shards)
                .map(|s| registry.gauge_with("pipeline_queue_depth", &format!("shard=\"{s}\"")))
                .collect(),
            stalls: (0..num_shards)
                .map(|s| {
                    registry.counter_with("pipeline_backpressure_stalls", &format!("shard=\"{s}\""))
                })
                .collect(),
            config: net,
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            conn_seq: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("graph-net-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(GraphServer {
            service: Some(service),
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (the real port when `net.addr` asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service behind the socket (for in-process clients, stats,
    /// registry access and [`GraphService::shard_pools`]).
    pub fn service(&self) -> &GraphService {
        self.service.as_ref().expect("service lives until shutdown")
    }

    /// Handles to each shard's persistent pool — keep them across a
    /// shutdown or crash to restart with [`GraphServer::open`].
    pub fn shard_pools(&self) -> Vec<Arc<PmemPool>> {
        self.service().shard_pools()
    }

    /// Open connections right now.
    pub fn active_connections(&self) -> usize {
        self.shared.active_conns.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, let open connections finish their
    /// in-flight requests and disconnect, then shut the service down.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // Readers notice the flag within a poll tick, stop taking new
        // frames, and close once their in-flight replies are written.
        let drain_deadline = Instant::now() + DRAIN_TIMEOUT;
        while self.shared.active_conns.load(Ordering::Acquire) > 0
            && Instant::now() < drain_deadline
        {
            std::thread::sleep(POLL_TICK);
        }
        if let Some(service) = self.service.take() {
            service.shutdown();
        }
    }
}

impl Drop for GraphServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    // The wake-up connection (or a late client): refuse.
                    drop(stream);
                    break;
                }
                let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
                shared.active_conns.fetch_add(1, Ordering::AcqRel);
                shared.metrics.connections_total.inc();
                shared.metrics.connections_open.add(1);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("graph-net-conn-{conn_id}"))
                    .spawn(move || {
                        run_connection(&conn_shared, stream, conn_id);
                        conn_shared.metrics.connections_open.sub(1);
                        conn_shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    shared.metrics.connections_open.sub(1);
                    shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(_) if shared.shutdown.load(Ordering::Acquire) => break,
            Err(_) => {
                // Persistent accept errors (EMFILE under fd exhaustion,
                // say) must not busy-spin this thread at 100% CPU exactly
                // when the box is under resource pressure.
                std::thread::sleep(POLL_TICK);
            }
        }
    }
}

/// Reply routing state shared between a connection's reader and writer:
/// admission timestamps keyed by request id, so the writer can close the
/// latency measurement and release the in-flight slot.
struct ConnTracking {
    starts: Mutex<HashMap<u64, Instant>>,
    inflight: AtomicUsize,
}

fn run_connection(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let tracking = Arc::new(ConnTracking {
        starts: Mutex::new(HashMap::new()),
        inflight: AtomicUsize::new(0),
    });
    let (reply_tx, reply_rx) = mpsc::channel::<(u64, Response)>();
    let writer = {
        let shared = Arc::clone(shared);
        let tracking = Arc::clone(&tracking);
        std::thread::Builder::new()
            .name(format!("graph-net-write-{conn_id}"))
            .spawn(move || writer_loop(&shared, &tracking, write_half, reply_rx))
            .expect("spawn connection writer")
    };

    reader_loop(shared, &tracking, &stream, &reply_tx);

    // Reader done: no new requests.  In-flight envelopes still hold reply
    // sender clones; the writer drains them, then its channel disconnects.
    drop(reply_tx);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

fn reader_loop(
    shared: &Arc<Shared>,
    tracking: &Arc<ConnTracking>,
    mut stream: &TcpStream,
    reply_tx: &Sender<(u64, Response)>,
) {
    let cfg = &shared.config;
    let mut frames = FrameBuffer::new(cfg.max_frame_len);
    let mut bucket = TokenBucket::new(cfg.ops_per_sec, cfg.burst_ops);
    let mut scratch = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    let mut last_stalls = shared.stall_sum();

    loop {
        // Serve every complete frame already buffered.
        loop {
            match frames.next_frame() {
                Ok(Some(Frame::Request { id, request })) => {
                    let keep_going = serve_request(
                        shared,
                        tracking,
                        reply_tx,
                        &mut bucket,
                        &mut last_stalls,
                        id,
                        request,
                    );
                    if !keep_going {
                        return;
                    }
                }
                Ok(Some(Frame::Response { .. })) => {
                    // Clients do not send responses; the stream is garbage.
                    shared.metrics.protocol_errors.inc();
                    let _ = reply_tx.send((
                        0,
                        Response::Error(GraphError::Protocol(
                            "unexpected response frame from client".to_string(),
                        )),
                    ));
                    return;
                }
                Ok(None) => break,
                Err(err) => {
                    // Framing is lost: report once (id 0 = unroutable) and
                    // hang up.
                    shared.metrics.protocol_errors.inc();
                    let _ = reply_tx.send((0, Response::Error(GraphError::from(err))));
                    return;
                }
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut scratch) {
            Ok(0) => return, // client hung up
            Ok(n) => {
                shared.metrics.bytes_read.add(n as u64);
                frames.extend(&scratch[..n]);
                last_activity = Instant::now();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if last_activity.elapsed() >= cfg.idle_timeout {
                    shared.metrics.idle_disconnects.inc();
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Admit (or shed) one decoded request and route it to the worker pool.
/// Returns `false` when the conversation is broken beyond repair and the
/// reader must hang up.
#[allow(clippy::too_many_arguments)]
fn serve_request(
    shared: &Arc<Shared>,
    tracking: &Arc<ConnTracking>,
    reply_tx: &Sender<(u64, Response)>,
    bucket: &mut TokenBucket,
    last_stalls: &mut u64,
    id: u64,
    request: Request,
) -> bool {
    shared.metrics.requests_total.inc();
    // Reply routing is keyed by request id: reusing one while its first
    // use is still in flight would make the two replies indistinguishable
    // (and leak the in-flight slot of whichever loses the race).  The
    // framing is intact but the conversation is not — hang up, like any
    // other protocol violation.
    if tracking
        .starts
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .contains_key(&id)
    {
        shared.metrics.protocol_errors.inc();
        let _ = reply_tx.send((
            0,
            Response::Error(GraphError::Protocol(format!(
                "request id {id} reused while still in flight"
            ))),
        ));
        return false;
    }
    let cost = match &request {
        Request::Mutate { ops, .. } => ops.len().max(1) as u64,
        _ => 1,
    };
    let is_mutate = matches!(request, Request::Mutate { .. });
    let verdict = if tracking.inflight.load(Ordering::Acquire) >= shared.config.max_inflight {
        Some("inflight")
    } else if !bucket.admit(cost) {
        Some("rate")
    } else if is_mutate && over_backpressure(shared, last_stalls) {
        Some("backpressure")
    } else {
        None
    };
    if let Some(reason) = verdict {
        shared.metrics.shed(reason).inc();
        let _ = reply_tx.send((
            id,
            Response::Error(GraphError::Overloaded {
                reason: reason.to_string(),
            }),
        ));
        return true;
    }
    tracking.inflight.fetch_add(1, Ordering::AcqRel);
    tracking
        .starts
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(id, Instant::now());
    if shared.raw.submit(id, request, reply_tx.clone()).is_err() {
        // Service already shut down: answer directly so the client is not
        // left waiting on a reply that will never come.
        tracking
            .starts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
        tracking.inflight.fetch_sub(1, Ordering::AcqRel);
        let _ = reply_tx.send((id, Response::Error(GraphError::Closed)));
    }
    true
}

/// The backpressure verdict for one `Mutate`: the pipeline's queued-batch
/// gauges have reached the configured depth, or its stall counters moved
/// since this connection last checked (producers are actively blocked on a
/// full queue).
fn over_backpressure(shared: &Shared, last_stalls: &mut u64) -> bool {
    let Some(limit) = shared.config.shed_queue_depth else {
        return false;
    };
    if shared.queue_depth_sum() >= limit {
        return true;
    }
    let stalls = shared.stall_sum();
    let advanced = stalls > *last_stalls;
    *last_stalls = stalls;
    advanced
}

fn writer_loop(
    shared: &Arc<Shared>,
    tracking: &Arc<ConnTracking>,
    mut stream: TcpStream,
    replies: mpsc::Receiver<(u64, Response)>,
) {
    let mut buf = Vec::with_capacity(4 * 1024);
    for (id, response) in replies {
        // A tracked id was admitted: close its latency span and free its
        // in-flight slot.  Shed and protocol replies were never admitted.
        let start = tracking
            .starts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
        if let Some(start) = start {
            shared
                .metrics
                .request_nanos
                .record(start.elapsed().as_nanos() as u64);
            tracking.inflight.fetch_sub(1, Ordering::AcqRel);
        }
        buf.clear();
        wire::put_response_frame(&mut buf, id, &response);
        if stream.write_all(&buf).is_err() {
            return; // connection is gone; remaining replies are moot
        }
        shared.metrics.bytes_written.add(buf.len() as u64);
        shared.metrics.responses_total.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::TokenBucket;

    #[test]
    fn token_bucket_spends_within_capacity_classically() {
        let mut bucket = TokenBucket::new(Some(1), 10);
        for _ in 0..10 {
            assert!(bucket.admit(1));
        }
        assert!(!bucket.admit(1), "bucket drained");
        let mut unmetered = TokenBucket::new(None, 0);
        assert!(unmetered.admit(u64::MAX), "no rate means no metering");
    }

    #[test]
    fn token_bucket_admits_an_oversized_batch_once_as_debt() {
        let mut bucket = TokenBucket::new(Some(100), 100);
        // A cost beyond the whole bucket is admissible against a full
        // bucket — shedding it forever would break Overloaded's
        // retry-is-safe contract.
        assert!(bucket.admit(1_000));
        // The excess is debt: nothing else is admitted until it refills.
        assert!(!bucket.admit(1));
        assert!(!bucket.admit(1_000));
    }

    #[test]
    fn zero_rate_bucket_admits_nothing_but_free_requests() {
        let mut bucket = TokenBucket::new(Some(0), 0);
        assert!(!bucket.admit(1));
        assert!(bucket.admit(0));
    }
}
