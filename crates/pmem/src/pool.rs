//! The emulated persistent-memory pool.

use crate::arena::Arena;
use crate::config::{AdrMode, Media, PmemConfig, CACHE_LINE, XPLINE};
use crate::crc::crc32c;
use crate::error::{PmemError, Result};
use crate::stats::{PmemStats, StatsSnapshot};
use crate::{PmemOffset, NULL_OFFSET};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic number stored at offset 0 of every pool image.
const MAGIC: u64 = 0x4447_4150_504d_454d; // "DGAPPMEM"

/// Size of the pool header in bytes.  User allocations start after it.
const HEADER_SIZE: u64 = 512;

/// Number of root-directory slots in the header.
const N_ROOTS: usize = 32;

/// Offset of the root table inside the header.
const ROOT_TABLE_OFF: u64 = 64;

/// Offset of the header's CRC32C inside the header.  The checksum covers
/// the fixed fields (`0..24`: magic, capacity, allocation cursor) and the
/// root table (`64..64 + N_ROOTS * 8`); the CRC slot itself and the
/// reserved gap are excluded.  It is re-sealed under the allocator lock on
/// every cursor or root-slot update, in the same flush + single-fence as
/// the field it covers, so a crash can never persist one without the other.
const HEADER_CRC_OFF: u64 = 56;

/// Number of lock shards protecting the persistence-tracking sets.
const PERSIST_SHARDS: usize = 32;

/// In [`PmemPool::simulate_crash_with`], keep cache lines that were flushed
/// but not yet fenced (optimistic: the flush completed before power loss).
pub const CRASH_KEEP_FLUSHED: bool = true;

/// In [`PmemPool::simulate_crash_with`], drop cache lines that were flushed
/// but not yet fenced (pessimistic: the flush never reached the ADR domain).
pub const CRASH_DROP_FLUSHED: bool = false;

/// Substring carried by the panic payload raised when an armed write
/// fail-point fires (see [`PmemPool::arm_write_failpoint`]).  Crash-fuzzing
/// harnesses match on this marker to tell injected crashes apart from real
/// bugs.
pub const CRASH_FAILPOINT_MARKER: &str = "injected crash fail-point";

/// Sentinel for a disarmed write fail-point.
const FAILPOINT_OFF: u64 = u64::MAX;

/// Well-known slots in the pool's root directory.
///
/// Like a PMDK root object, these let a data structure find its superblock
/// again after the pool is re-opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootId {
    /// Primary superblock of the framework owning this pool.
    Superblock,
    /// Edge-array region (used by DGAP and the CSR baseline).
    EdgeArray,
    /// Per-section edge-log region.
    EdgeLogs,
    /// Per-thread undo-log region.
    UndoLogs,
    /// Backup copy of DRAM metadata written at graceful shutdown.
    MetadataBackup,
    /// Any other user-defined slot (wraps around the remaining table space).
    Custom(u8),
}

impl RootId {
    fn slot(self) -> usize {
        match self {
            RootId::Superblock => 0,
            RootId::EdgeArray => 1,
            RootId::EdgeLogs => 2,
            RootId::UndoLogs => 3,
            RootId::MetadataBackup => 4,
            RootId::Custom(n) => 5 + (n as usize % (N_ROOTS - 5)),
        }
    }
}

#[derive(Default)]
struct PersistShard {
    /// Lines written since they were last persisted.
    dirty: HashSet<u64>,
    /// Lines flushed since the last fence, together with the line contents
    /// captured at flush time.  Capturing the bytes here (rather than
    /// re-reading the working image at fence time) mirrors the write-pending
    /// queue on real hardware and avoids racing with writers that dirty the
    /// line again after flushing it.
    flushed: std::collections::HashMap<u64, [u8; CACHE_LINE]>,
}

/// An emulated persistent-memory pool.
///
/// See the [crate-level documentation](crate) for the behavioural model.
/// All methods take `&self`; the pool is `Send + Sync` and may be shared
/// across writer and analysis threads, mirroring a real mapped device.
/// Callers are responsible (exactly as on real hardware) for ensuring that
/// concurrently accessed byte ranges are disjoint; DGAP does this with its
/// per-section locks.
pub struct PmemPool {
    config: PmemConfig,
    /// Working image: what loads observe.
    work: Arena,
    /// Persisted image: what survives a crash.  `None` when persistence
    /// tracking is disabled.
    durable: Option<Arena>,
    shards: Vec<Mutex<PersistShard>>,
    stats: PmemStats,
    /// End offset of the previous write, used to classify sequential access.
    last_write_end: AtomicU64,
    /// DRAM-cached allocation cursor (also persisted in the header).
    alloc_cursor: Mutex<u64>,
    /// Countdown until an injected crash on the write path; `u64::MAX` means
    /// disarmed.  See [`PmemPool::arm_write_failpoint`].
    write_failpoint: AtomicU64,
    /// Human-readable provenance of this pool (image file path, shard name,
    /// ...), carried in integrity errors so a multi-shard deployment can
    /// tell which pool failed.  `"<memory>"` until someone labels it.
    label: Mutex<String>,
}

impl PmemPool {
    /// Create a new, zero-filled pool.
    ///
    /// The capacity is rounded up to a multiple of the XPLine size.
    pub fn new(mut config: PmemConfig) -> Self {
        let cap = config.capacity.max(HEADER_SIZE as usize * 2);
        let cap = cap.div_ceil(XPLINE) * XPLINE;
        config.capacity = cap;
        let track = config.track_persistence && config.media == Media::Pmem;
        let pool = PmemPool {
            work: Arena::new(cap),
            durable: if track { Some(Arena::new(cap)) } else { None },
            shards: (0..PERSIST_SHARDS)
                .map(|_| Mutex::new(PersistShard::default()))
                .collect(),
            stats: PmemStats::new(),
            last_write_end: AtomicU64::new(u64::MAX),
            alloc_cursor: Mutex::new(HEADER_SIZE),
            write_failpoint: AtomicU64::new(FAILPOINT_OFF),
            label: Mutex::new("<memory>".to_string()),
            config,
        };
        // Initialise and persist the header.
        pool.write_u64(0, MAGIC);
        pool.write_u64(8, cap as u64);
        pool.write_u64(16, HEADER_SIZE);
        pool.write_u32(HEADER_CRC_OFF, pool.compute_header_crc());
        pool.persist(0, HEADER_SIZE as usize);
        pool
    }

    /// Label this pool with its provenance (file path, shard name, ...).
    /// The label is volatile metadata: it travels in error messages, not in
    /// the pool image.
    pub fn set_label(&self, label: impl Into<String>) {
        *self.label.lock() = label.into();
    }

    /// The pool's provenance label (see [`PmemPool::set_label`]).
    pub fn label(&self) -> String {
        self.label.lock().clone()
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PmemConfig {
        &self.config
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Bytes currently handed out by the allocator (header included).
    pub fn used(&self) -> usize {
        *self.alloc_cursor.lock() as usize
    }

    /// Size of the pool header (magic, allocation cursor, root directory
    /// and their checksum) in bytes.  Offsets below this are metadata, not
    /// allocated data.
    pub fn header_bytes(&self) -> usize {
        HEADER_SIZE as usize
    }

    /// Bytes still available for allocation.
    pub fn available(&self) -> usize {
        self.capacity() - self.used()
    }

    /// `true` when the pool emulates persistent media (as opposed to DRAM).
    pub fn is_persistent(&self) -> bool {
        self.config.media == Media::Pmem
    }

    /// The platform persistence-domain mode (ADR or eADR).
    pub fn adr_mode(&self) -> AdrMode {
        self.config.adr
    }

    /// Live statistics counters for this pool.
    pub fn stats(&self) -> &PmemStats {
        &self.stats
    }

    /// Convenience: a point-in-time snapshot of the statistics.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocate `len` bytes aligned to `align` (a power of two).
    ///
    /// The allocator is a persistent bump allocator: the cursor lives in the
    /// pool header so allocations survive restarts.  There is no `free`;
    /// long-lived frameworks pre-allocate their regions (as DGAP does) or
    /// recycle them internally.
    pub fn alloc(&self, len: usize, align: usize) -> Result<PmemOffset> {
        if !align.is_power_of_two() {
            return Err(PmemError::BadAlignment(align));
        }
        let mut cursor = self.alloc_cursor.lock();
        let start = (*cursor + align as u64 - 1) & !(align as u64 - 1);
        let end = start + len as u64;
        if end > self.capacity() as u64 {
            return Err(PmemError::OutOfSpace {
                requested: len,
                available: self.capacity().saturating_sub(*cursor as usize),
            });
        }
        let padded = end - *cursor;
        *cursor = end;
        // Persist the new cursor so the allocator state survives a crash,
        // re-sealing the header CRC in the same flush + fence (both live in
        // the first cache line, so one flush captures both and a crash can
        // never persist the cursor without its checksum).
        self.write_u64(16, end);
        self.write_u32(HEADER_CRC_OFF, self.compute_header_crc());
        self.flush(16, (HEADER_CRC_OFF + 4 - 16) as usize);
        self.fence();
        self.stats.allocations.fetch_add(1, Ordering::Relaxed);
        self.stats
            .allocated_bytes
            .fetch_add(padded, Ordering::Relaxed);
        Ok(start)
    }

    /// Allocate and zero-fill a region.  Zeroing goes through the normal
    /// write path so it is charged and tracked like any other store.
    pub fn alloc_zeroed(&self, len: usize, align: usize) -> Result<PmemOffset> {
        let off = self.alloc(len, align)?;
        self.memset(off, 0, len);
        Ok(off)
    }

    // ------------------------------------------------------------------
    // Root directory
    // ------------------------------------------------------------------

    /// Register `offset` under the given root slot and persist the entry.
    pub fn set_root(&self, id: RootId, offset: PmemOffset) -> Result<()> {
        let slot_off = ROOT_TABLE_OFF + (id.slot() as u64) * 8;
        // The allocator lock doubles as the header-CRC lock: it serialises
        // this recompute against concurrent `alloc` cursor updates.
        let _guard = self.alloc_cursor.lock();
        self.write_u64(slot_off, offset);
        self.write_u32(HEADER_CRC_OFF, self.compute_header_crc());
        // Slot line and CRC line are distinct cache lines: flush both, one
        // fence.  A crash before the fence loses both together.
        self.flush(slot_off, 8);
        self.flush(HEADER_CRC_OFF, 4);
        self.fence();
        Ok(())
    }

    /// Look up a root slot.  Returns [`PmemError::NoSuchRoot`] if the slot
    /// was never set (offset 0).
    pub fn root(&self, id: RootId) -> Result<PmemOffset> {
        let slot_off = ROOT_TABLE_OFF + (id.slot() as u64) * 8;
        let v = self.read_u64(slot_off);
        if v == NULL_OFFSET {
            Err(PmemError::NoSuchRoot(id.slot() as u64))
        } else {
            Ok(v)
        }
    }

    // ------------------------------------------------------------------
    // Header integrity
    // ------------------------------------------------------------------

    /// CRC32C over the header fields the pool itself owns: the fixed
    /// fields (`0..24`) and the root table.  Reads the working image
    /// directly so checksum maintenance does not perturb the cost-model
    /// accounting of the workload being measured.
    fn compute_header_crc(&self) -> u32 {
        let mut buf = [0u8; 24 + N_ROOTS * 8];
        self.work.read(0, &mut buf[..24]);
        self.work.read(ROOT_TABLE_OFF as usize, &mut buf[24..]);
        crc32c(&buf)
    }

    /// Check the pool header against its stored CRC32C.
    ///
    /// Returns [`PmemError::BadImage`] — carrying the pool label and the
    /// byte offset of the failing region — when the magic, the recorded
    /// capacity, or the checksum does not match.  Called by
    /// [`PmemPool::open_file`]; frameworks above also call it as the first
    /// step of their own verify passes.
    pub fn verify_header(&self) -> Result<()> {
        let magic = self.read_u64(0);
        if magic != MAGIC {
            return Err(PmemError::bad_image(
                self.label(),
                0,
                format!("bad magic {magic:#x}"),
            ));
        }
        let cap = self.read_u64(8);
        if cap != self.capacity() as u64 {
            return Err(PmemError::bad_image(
                self.label(),
                8,
                format!(
                    "recorded capacity {cap} != pool capacity {}",
                    self.capacity()
                ),
            ));
        }
        let stored = self.read_u32(HEADER_CRC_OFF);
        let actual = self.compute_header_crc();
        if stored != actual {
            return Err(PmemError::bad_image(
                self.label(),
                0,
                format!("header crc mismatch: stored {stored:#010x}, computed {actual:#010x}"),
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Media-fault injection
    // ------------------------------------------------------------------

    /// Flip one bit of the byte at `offset`, in both the working and the
    /// durable image, bypassing persistence tracking and statistics.
    ///
    /// This models a media fault — a cell the device returns differently
    /// from what was stored — not a software write, so it deliberately does
    /// not tick fail-points, charge costs, or dirty cache lines.  Companion
    /// to the crash fail-points in `sharded::failpoint`; corruption-fuzzing
    /// harnesses drive it with seeded offsets.
    pub fn inject_bit_flip(&self, offset: PmemOffset, bit: u32) {
        self.check_bounds(offset, 1);
        let bit = bit % 8;
        let mut b = [0u8; 1];
        self.work.read(offset as usize, &mut b);
        b[0] ^= 1 << bit;
        self.work.write(offset as usize, &b);
        if let Some(d) = &self.durable {
            let mut b = [0u8; 1];
            d.read(offset as usize, &mut b);
            b[0] ^= 1 << bit;
            d.write(offset as usize, &b);
        }
    }

    /// Tear the cache line containing `offset`: garble a seeded suffix of
    /// the line in both images, as if the device lost power mid-line and
    /// re-materialised stale or scrambled cells.  Every garbled byte is
    /// XORed with a non-zero value, so the line is guaranteed to differ
    /// from what was written.  Same accounting bypass as
    /// [`PmemPool::inject_bit_flip`].
    pub fn inject_torn_line(&self, offset: PmemOffset, seed: u64) {
        self.check_bounds(offset, 1);
        let line_off = (offset as usize / CACHE_LINE) * CACHE_LINE;
        let line_len = CACHE_LINE.min(self.capacity() - line_off);
        // Seeded xorshift; `| 1` keeps every mask byte non-zero.
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let start = (next() as usize) % line_len;
        for arena in std::iter::once(&self.work).chain(self.durable.as_ref()) {
            let mut buf = [0u8; CACHE_LINE];
            arena.read(line_off, &mut buf[..line_len]);
            let mut x2 = seed | 1;
            for b in buf[start..line_len].iter_mut() {
                x2 ^= x2 << 13;
                x2 ^= x2 >> 7;
                x2 ^= x2 << 17;
                *b ^= (x2 as u8) | 1;
            }
            arena.write(line_off, &buf[..line_len]);
        }
    }

    // ------------------------------------------------------------------
    // Bounds / cost helpers
    // ------------------------------------------------------------------

    #[inline]
    fn check_bounds(&self, offset: PmemOffset, len: usize) {
        let cap = self.capacity() as u64;
        assert!(
            offset.checked_add(len as u64).is_some_and(|end| end <= cap),
            "pmem access out of bounds: offset {offset} len {len} capacity {cap}"
        );
    }

    #[inline]
    fn lines(offset: PmemOffset, len: usize) -> (u64, u64) {
        if len == 0 {
            return (0, 0);
        }
        let first = offset / CACHE_LINE as u64;
        let last = (offset + len as u64 - 1) / CACHE_LINE as u64;
        (first, last)
    }

    #[inline]
    fn charge_write(&self, offset: PmemOffset, len: usize) {
        if len == 0 {
            return;
        }
        let (first, last) = Self::lines(offset, len);
        let nlines = last - first + 1;
        let prev_end = self
            .last_write_end
            .swap(offset + len as u64, Ordering::Relaxed);
        let sequential = prev_end == offset;
        let cost = &self.config.cost;
        self.stats
            .logical_bytes_written
            .fetch_add(len as u64, Ordering::Relaxed);
        self.stats.write_ops.fetch_add(1, Ordering::Relaxed);
        if sequential {
            self.stats.seq_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.rand_writes.fetch_add(1, Ordering::Relaxed);
        }
        match self.config.media {
            Media::Dram => {
                self.stats
                    .media_bytes_written
                    .fetch_add(nlines * CACHE_LINE as u64, Ordering::Relaxed);
                self.stats.charge_ns(nlines * cost.dram_write_line_ns);
            }
            Media::Pmem => {
                // Store itself goes to the cache: cheap.  Media traffic is
                // charged at flush time (ADR) or here (eADR, where stores
                // are already inside the persistence domain).
                if self.config.adr == AdrMode::Eadr {
                    self.stats
                        .media_bytes_written
                        .fetch_add(nlines * CACHE_LINE as u64, Ordering::Relaxed);
                }
                let per_line = if sequential {
                    cost.pm_write_line_seq_ns
                } else {
                    cost.pm_write_line_rand_ns
                };
                self.stats.charge_ns(nlines * per_line);
            }
        }
        // Track dirtiness for crash simulation.
        if self.durable.is_some() {
            let eadr = self.config.adr == AdrMode::Eadr;
            for line in first..=last {
                let shard = &self.shards[(line as usize) % PERSIST_SHARDS];
                let mut s = shard.lock();
                if eadr {
                    // Under eADR the caches are inside the persistence
                    // domain: every store behaves as if it were immediately
                    // flushed.  Capture the line content now; the next fence
                    // makes it durable.
                    let mut buf = [0u8; CACHE_LINE];
                    let off = (line as usize) * CACHE_LINE;
                    let n = CACHE_LINE.min(self.capacity() - off);
                    self.work.read(off, &mut buf[..n]);
                    s.flushed.insert(line, buf);
                } else {
                    s.dirty.insert(line);
                }
            }
        }
    }

    #[inline]
    fn charge_read(&self, offset: PmemOffset, len: usize) {
        if len == 0 {
            return;
        }
        let (first, last) = Self::lines(offset, len);
        let nlines = last - first + 1;
        let cost = &self.config.cost;
        self.stats
            .logical_bytes_read
            .fetch_add(len as u64, Ordering::Relaxed);
        self.stats.read_ops.fetch_add(1, Ordering::Relaxed);
        let per_line = match self.config.media {
            Media::Dram => cost.dram_read_line_ns,
            Media::Pmem => cost.pm_read_line_ns,
        };
        self.stats.charge_ns(nlines * per_line);
    }

    // ------------------------------------------------------------------
    // Crash fail-point
    // ------------------------------------------------------------------

    /// Arm a crash fail-point on the write path: the `nth` store operation
    /// from now (`write` / `memset` / `copy_within`, zero-based) panics with
    /// a payload containing [`CRASH_FAILPOINT_MARKER`] *before* mutating the
    /// working image.  Combined with [`PmemPool::simulate_crash`] in the
    /// caller's recovery harness this kills an ingest thread at an arbitrary
    /// point mid-operation.  Pool-scoped, so concurrent tests on other pools
    /// are unaffected.
    pub fn arm_write_failpoint(&self, nth: u64) {
        assert!(nth < FAILPOINT_OFF, "fail-point countdown out of range");
        self.write_failpoint.store(nth, Ordering::SeqCst);
    }

    /// Disarm a previously armed write fail-point.
    pub fn disarm_write_failpoint(&self) {
        self.write_failpoint.store(FAILPOINT_OFF, Ordering::SeqCst);
    }

    #[inline]
    fn tick_failpoint(&self) {
        if self.write_failpoint.load(Ordering::Relaxed) == FAILPOINT_OFF {
            return;
        }
        let prev = self.write_failpoint.fetch_sub(1, Ordering::SeqCst);
        if prev == FAILPOINT_OFF {
            // Disarmed between the fast-path load and the decrement: undo.
            self.write_failpoint.fetch_add(1, Ordering::SeqCst);
        } else if prev == 0 {
            self.write_failpoint.store(FAILPOINT_OFF, Ordering::SeqCst);
            panic!("{CRASH_FAILPOINT_MARKER}: pmem write path");
        }
    }

    // ------------------------------------------------------------------
    // Raw reads and writes
    // ------------------------------------------------------------------

    /// Write `src` at `offset`.  The data is *not* durable until it is
    /// flushed and fenced (on ADR platforms).
    pub fn write(&self, offset: PmemOffset, src: &[u8]) {
        self.tick_failpoint();
        self.check_bounds(offset, src.len());
        self.work.write(offset as usize, src);
        self.charge_write(offset, src.len());
    }

    /// Read `dst.len()` bytes starting at `offset` into `dst`.
    pub fn read(&self, offset: PmemOffset, dst: &mut [u8]) {
        self.check_bounds(offset, dst.len());
        self.work.read(offset as usize, dst);
        self.charge_read(offset, dst.len());
    }

    /// Read `len` bytes at `offset` into a fresh vector.
    pub fn read_vec(&self, offset: PmemOffset, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(offset, &mut v);
        v
    }

    /// Fill `len` bytes at `offset` with `byte`.
    pub fn memset(&self, offset: PmemOffset, byte: u8, len: usize) {
        self.tick_failpoint();
        self.check_bounds(offset, len);
        self.work.fill(offset as usize, byte, len);
        self.charge_write(offset, len);
    }

    /// Copy `len` bytes from `src_off` to `dst_off` within the pool
    /// (memmove semantics).  Charged as a read of the source plus a write of
    /// the destination.
    pub fn copy_within(&self, src_off: PmemOffset, dst_off: PmemOffset, len: usize) {
        self.tick_failpoint();
        self.check_bounds(src_off, len);
        self.check_bounds(dst_off, len);
        self.work
            .copy_within(src_off as usize, dst_off as usize, len);
        self.charge_read(src_off, len);
        self.charge_write(dst_off, len);
    }

    /// Write a little-endian `u32` at `offset`.
    #[inline]
    pub fn write_u32(&self, offset: PmemOffset, value: u32) {
        self.write(offset, &value.to_le_bytes());
    }

    /// Read a little-endian `u32` at `offset`.
    #[inline]
    pub fn read_u32(&self, offset: PmemOffset) -> u32 {
        let mut b = [0u8; 4];
        self.read(offset, &mut b);
        u32::from_le_bytes(b)
    }

    /// Write a little-endian `u64` at `offset`.
    #[inline]
    pub fn write_u64(&self, offset: PmemOffset, value: u64) {
        self.write(offset, &value.to_le_bytes());
    }

    /// Read a little-endian `u64` at `offset`.
    #[inline]
    pub fn read_u64(&self, offset: PmemOffset) -> u64 {
        let mut b = [0u8; 8];
        self.read(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a slice of `u32`s starting at `offset` (little-endian).
    pub fn write_u32_slice(&self, offset: PmemOffset, values: &[u32]) {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write(offset, &bytes);
    }

    /// Read `out.len()` `u32`s starting at `offset` (little-endian).
    pub fn read_u32_slice(&self, offset: PmemOffset, out: &mut [u32]) {
        let bytes = self.read_vec(offset, out.len() * 4);
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            out[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }

    /// Write a slice of `u64`s starting at `offset` (little-endian).
    pub fn write_u64_slice(&self, offset: PmemOffset, values: &[u64]) {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write(offset, &bytes);
    }

    /// Read `out.len()` `u64`s starting at `offset` (little-endian).
    pub fn read_u64_slice(&self, offset: PmemOffset, out: &mut [u64]) {
        let bytes = self.read_vec(offset, out.len() * 8);
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            out[i] = u64::from_le_bytes(b);
        }
    }

    // ------------------------------------------------------------------
    // Persistence primitives
    // ------------------------------------------------------------------

    /// Flush the cache lines covering `[offset, offset + len)` (CLWB /
    /// CLFLUSHOPT).  On eADR platforms and DRAM pools this is a no-op apart
    /// from statistics.
    pub fn flush(&self, offset: PmemOffset, len: usize) {
        if len == 0 || self.config.media == Media::Dram {
            return;
        }
        if self.config.adr == AdrMode::Eadr {
            // Caches are already in the persistence domain; flush is free.
            return;
        }
        self.check_bounds(offset, len);
        let (first, last) = Self::lines(offset, len);
        let nlines = last - first + 1;
        let cost = &self.config.cost;
        self.stats.flushes.fetch_add(nlines, Ordering::Relaxed);
        self.stats.charge_ns(nlines * cost.flush_ns);
        // Media traffic: the device writes back whole XPLines.
        let first_xp = offset / XPLINE as u64;
        let last_xp = (offset + len as u64 - 1) / XPLINE as u64;
        let nxp = last_xp - first_xp + 1;
        self.stats
            .media_bytes_written
            .fetch_add(nxp * XPLINE as u64, Ordering::Relaxed);
        self.stats.xplines_touched.fetch_add(nxp, Ordering::Relaxed);
        for line in first..=last {
            let shard = &self.shards[(line as usize) % PERSIST_SHARDS];
            let mut s = shard.lock();
            if s.flushed.contains_key(&line) {
                // Repeated flush of a line whose previous flush has not been
                // fenced yet: the persistent in-place update pattern.
                self.stats.inplace_flushes.fetch_add(1, Ordering::Relaxed);
                self.stats.charge_ns(cost.pm_inplace_penalty_ns);
            }
            if self.durable.is_some() {
                // Capture the line content at flush time (write-pending
                // queue semantics).
                let mut buf = [0u8; CACHE_LINE];
                let loff = (line as usize) * CACHE_LINE;
                let n = CACHE_LINE.min(self.capacity() - loff);
                self.work.read(loff, &mut buf[..n]);
                s.flushed.insert(line, buf);
            } else {
                s.flushed.insert(line, [0u8; CACHE_LINE]);
            }
            s.dirty.remove(&line);
        }
    }

    /// Issue a store fence (SFENCE).  All previously flushed lines become
    /// durable; on eADR platforms all dirty lines become durable.
    pub fn fence(&self) {
        self.stats.fences.fetch_add(1, Ordering::Relaxed);
        self.stats.charge_ns(self.config.cost.fence_ns);
        if self.config.media == Media::Dram {
            return;
        }
        if let Some(durable) = &self.durable {
            for shard in &self.shards {
                let mut s = shard.lock();
                for (&line, data) in s.flushed.iter() {
                    let off = (line as usize) * CACHE_LINE;
                    let len = CACHE_LINE.min(self.capacity() - off);
                    durable.write(off, &data[..len]);
                }
                s.flushed.clear();
            }
        } else {
            // No durable image: still clear the flush-pending sets so the
            // in-place detection stays meaningful.
            for shard in &self.shards {
                shard.lock().flushed.clear();
            }
        }
    }

    /// Flush then fence: make `[offset, offset + len)` durable.
    pub fn persist(&self, offset: PmemOffset, len: usize) {
        self.flush(offset, len);
        self.fence();
    }

    // ------------------------------------------------------------------
    // Crash simulation
    // ------------------------------------------------------------------

    /// Simulate a power failure using the optimistic policy (flushed but
    /// un-fenced lines survive).  See [`PmemPool::simulate_crash_with`].
    pub fn simulate_crash(&self) {
        self.simulate_crash_with(CRASH_KEEP_FLUSHED);
    }

    /// Simulate a power failure.
    ///
    /// Everything that was not persisted is discarded: the working image is
    /// reset to the durable image.  `keep_flushed` chooses whether lines
    /// that were flushed but not yet fenced survive ([`CRASH_KEEP_FLUSHED`])
    /// or are lost ([`CRASH_DROP_FLUSHED`]).  After this call the pool is in
    /// the state a freshly re-opened pool would be in; callers then run
    /// their recovery procedure.
    ///
    /// # Panics
    ///
    /// Panics if the pool was created with `track_persistence = false` or
    /// emulates DRAM (in which case a crash simply loses everything — there
    /// is no meaningful recovery to test).
    pub fn simulate_crash_with(&self, keep_flushed: bool) {
        let durable = self
            .durable
            .as_ref()
            .expect("simulate_crash requires a Pmem pool with track_persistence enabled");
        // Under eADR every completed store is inside the persistence domain,
        // so pending lines always survive regardless of the crash policy.
        let keep_flushed = keep_flushed || self.config.adr == AdrMode::Eadr;
        // Optionally promote flushed-but-unfenced lines first.
        for shard in &self.shards {
            let mut s = shard.lock();
            if keep_flushed {
                for (&line, data) in s.flushed.iter() {
                    let off = (line as usize) * CACHE_LINE;
                    let len = CACHE_LINE.min(self.capacity() - off);
                    durable.write(off, &data[..len]);
                }
            }
            s.flushed.clear();
            s.dirty.clear();
        }
        // The working image now reflects only durable data.
        self.work.copy_range_from(durable, 0, self.capacity());
        self.last_write_end.store(u64::MAX, Ordering::Relaxed);
        // Reload the allocator cursor from the (durable) header.
        let cursor = {
            let mut b = [0u8; 8];
            self.work.read(16, &mut b);
            u64::from_le_bytes(b)
        };
        *self.alloc_cursor.lock() = cursor.max(HEADER_SIZE);
    }

    // ------------------------------------------------------------------
    // Pool images on disk
    // ------------------------------------------------------------------

    /// Serialize the durable image (or the working image when persistence
    /// tracking is off) to a file, producing a pool image that can be
    /// re-opened with [`PmemPool::open_file`].
    pub fn save_to_file(&self, path: &std::path::Path) -> Result<()> {
        use std::io::Write as _;
        let image = match &self.durable {
            Some(d) => d.to_vec(),
            None => self.work.to_vec(),
        };
        let mut f = std::fs::File::create(path)?;
        f.write_all(&MAGIC.to_le_bytes())?;
        f.write_all(&(image.len() as u64).to_le_bytes())?;
        f.write_all(&image)?;
        f.sync_all()?;
        Ok(())
    }

    /// Re-open a pool image written by [`PmemPool::save_to_file`].
    ///
    /// The configuration's capacity must match the image capacity.
    pub fn open_file(path: &std::path::Path, mut config: PmemConfig) -> Result<Self> {
        let source = path.display().to_string();
        let bytes = std::fs::read(path)?;
        if bytes.len() < 16 {
            return Err(PmemError::bad_image(&source, 0, "image too small"));
        }
        let magic = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        if magic != MAGIC {
            return Err(PmemError::bad_image(
                &source,
                0,
                format!("bad magic {magic:#x}"),
            ));
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        if bytes.len() != 16 + len {
            return Err(PmemError::bad_image(
                &source,
                8,
                format!(
                    "truncated image: expected {} bytes, found {}",
                    16 + len,
                    bytes.len() - 16
                ),
            ));
        }
        config.capacity = len;
        let pool = PmemPool::new(config);
        pool.set_label(&source);
        pool.work.load_from(&bytes[16..]);
        if let Some(d) = &pool.durable {
            d.load_from(&bytes[16..]);
        }
        pool.verify_header()?;
        let cursor = pool.read_u64(16);
        *pool.alloc_cursor.lock() = cursor.max(HEADER_SIZE);
        pool.stats.reset();
        Ok(pool)
    }
}

impl std::fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemPool")
            .field("capacity", &self.capacity())
            .field("used", &self.used())
            .field("media", &self.config.media)
            .field("adr", &self.config.adr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CostModel;

    fn test_pool() -> PmemPool {
        PmemPool::new(PmemConfig::small_test())
    }

    #[test]
    fn header_is_initialised() {
        let p = test_pool();
        assert_eq!(p.read_u64(0), MAGIC);
        assert_eq!(p.read_u64(8), p.capacity() as u64);
    }

    #[test]
    fn alloc_respects_alignment_and_bounds() {
        let p = test_pool();
        let a = p.alloc(100, 64).unwrap();
        assert_eq!(a % 64, 0);
        let b = p.alloc(10, 8).unwrap();
        assert!(b >= a + 100);
        assert!(p.alloc(usize::MAX / 2, 8).is_err());
        assert!(p.alloc(8, 3).is_err());
    }

    #[test]
    fn write_read_roundtrip_u32_u64_slices() {
        let p = test_pool();
        let off = p.alloc(1024, 8).unwrap();
        p.write_u32(off, 0xdead_beef);
        assert_eq!(p.read_u32(off), 0xdead_beef);
        p.write_u64(off + 8, u64::MAX - 3);
        assert_eq!(p.read_u64(off + 8), u64::MAX - 3);
        let vals = [1u32, 2, 3, 4, 5];
        p.write_u32_slice(off + 64, &vals);
        let mut out = [0u32; 5];
        p.read_u32_slice(off + 64, &mut out);
        assert_eq!(out, vals);
        let vals64 = [10u64, 20, 30];
        p.write_u64_slice(off + 128, &vals64);
        let mut out64 = [0u64; 3];
        p.read_u64_slice(off + 128, &mut out64);
        assert_eq!(out64, vals64);
    }

    #[test]
    fn unpersisted_writes_are_lost_on_crash() {
        let p = test_pool();
        let off = p.alloc(256, 64).unwrap();
        p.write_u64(off, 111);
        p.persist(off, 8);
        p.write_u64(off + 64, 222); // never flushed
        p.simulate_crash();
        assert_eq!(p.read_u64(off), 111);
        assert_eq!(p.read_u64(off + 64), 0);
    }

    #[test]
    fn flushed_but_unfenced_depends_on_crash_policy() {
        // Pessimistic policy drops flushed-but-unfenced lines.
        let p = test_pool();
        let off = p.alloc(256, 64).unwrap();
        p.write_u64(off, 7);
        p.flush(off, 8); // no fence
        p.simulate_crash_with(CRASH_DROP_FLUSHED);
        assert_eq!(p.read_u64(off), 0);

        // Optimistic policy keeps them.
        let p = test_pool();
        let off = p.alloc(256, 64).unwrap();
        p.write_u64(off, 7);
        p.flush(off, 8);
        p.simulate_crash_with(CRASH_KEEP_FLUSHED);
        assert_eq!(p.read_u64(off), 7);
    }

    #[test]
    fn overwrite_after_persist_reverts_to_persisted_value() {
        let p = test_pool();
        let off = p.alloc(64, 64).unwrap();
        p.write_u32(off, 1);
        p.persist(off, 4);
        p.write_u32(off, 2); // dirty overwrite, not persisted
        assert_eq!(p.read_u32(off), 2);
        p.simulate_crash();
        assert_eq!(p.read_u32(off), 1);
    }

    #[test]
    fn allocator_cursor_survives_crash() {
        let p = test_pool();
        let a = p.alloc(128, 64).unwrap();
        p.simulate_crash();
        let b = p.alloc(128, 64).unwrap();
        assert!(b >= a + 128, "allocation after crash must not overlap");
    }

    #[test]
    fn roots_survive_crash() {
        let p = test_pool();
        let off = p.alloc(64, 8).unwrap();
        p.set_root(RootId::Superblock, off).unwrap();
        p.set_root(RootId::Custom(3), off + 8).unwrap();
        p.simulate_crash();
        assert_eq!(p.root(RootId::Superblock).unwrap(), off);
        assert_eq!(p.root(RootId::Custom(3)).unwrap(), off + 8);
        assert!(p.root(RootId::EdgeLogs).is_err());
    }

    #[test]
    fn write_amplification_reflects_xpline_granularity() {
        let cfg = PmemConfig::small_test();
        let p = PmemPool::new(cfg);
        let off = p.alloc(4096, 256).unwrap();
        let before = p.stats_snapshot();
        // 4-byte writes to scattered XPLines, each persisted individually.
        for i in 0..8u64 {
            p.write_u32(off + i * 256, i as u32);
            p.persist(off + i * 256, 4);
        }
        let d = p.stats_snapshot().delta_since(&before);
        assert_eq!(d.logical_bytes_written, 32);
        // Each 4-byte persist costs a full 256 B XPLine of media traffic.
        assert_eq!(d.media_bytes_written, 8 * 256);
        assert!(d.write_amplification() > 50.0);
    }

    #[test]
    fn inplace_flush_detected() {
        let cfg = PmemConfig::small_test().cost_model(CostModel::default());
        let p = PmemPool::new(cfg);
        let off = p.alloc(64, 64).unwrap();
        let before = p.stats_snapshot();
        // Two flushes of the same line without an intervening fence.
        p.write_u32(off, 1);
        p.flush(off, 4);
        p.write_u32(off + 4, 2);
        p.flush(off + 4, 4);
        let d = p.stats_snapshot().delta_since(&before);
        assert_eq!(d.inplace_flushes, 1);
        // After a fence the same line flushes cleanly again.
        p.fence();
        let before = p.stats_snapshot();
        p.write_u32(off + 8, 3);
        p.flush(off + 8, 4);
        let d = p.stats_snapshot().delta_since(&before);
        assert_eq!(d.inplace_flushes, 0);
    }

    #[test]
    fn sequential_writes_classified_and_cheaper() {
        let cfg = PmemConfig::with_capacity(1 << 20);
        let p = PmemPool::new(cfg);
        let off = p.alloc(64 * 1024, 64).unwrap();
        let before = p.stats_snapshot();
        let buf = [0xabu8; 64];
        for i in 0..128u64 {
            p.write(off + i * 64, &buf);
        }
        let seq = p.stats_snapshot().delta_since(&before);
        assert!(seq.seq_writes >= 127, "seq writes: {}", seq.seq_writes);

        let before = p.stats_snapshot();
        // Strided (random-ish) pattern: never contiguous with previous end.
        for i in 0..128u64 {
            let stride = ((i * 37) % 128) * 128;
            p.write(off + stride, &buf[..32]);
        }
        let rnd = p.stats_snapshot().delta_since(&before);
        assert!(rnd.rand_writes >= 100, "rand writes: {}", rnd.rand_writes);
        // Random writes cost more simulated time per byte.
        let seq_per_byte = seq.simulated_ns as f64 / seq.logical_bytes_written as f64;
        let rnd_per_byte = rnd.simulated_ns as f64 / rnd.logical_bytes_written as f64;
        assert!(rnd_per_byte > seq_per_byte);
    }

    #[test]
    fn eadr_makes_flush_free_and_every_store_durable() {
        let cfg = PmemConfig::small_test().adr_mode(AdrMode::Eadr);
        let p = PmemPool::new(cfg);
        let off = p.alloc(64, 64).unwrap();
        p.write_u64(off, 99);
        let before = p.stats_snapshot();
        p.flush(off, 8);
        let d = p.stats_snapshot().delta_since(&before);
        assert_eq!(d.flushes, 0, "flush should be a no-op under eADR");
        p.fence();
        p.write_u64(off + 8, 100); // not flushed, not fenced
        p.simulate_crash();
        assert_eq!(p.read_u64(off), 99);
        assert_eq!(
            p.read_u64(off + 8),
            100,
            "under eADR every completed store is inside the persistence domain"
        );
    }

    #[test]
    fn dram_pool_has_no_flush_cost() {
        let p = PmemPool::new(PmemConfig::dram_with_capacity(1 << 20));
        let off = p.alloc(1024, 64).unwrap();
        p.write_u64(off, 5);
        let before = p.stats_snapshot();
        p.persist(off, 8);
        let d = p.stats_snapshot().delta_since(&before);
        assert_eq!(d.flushes, 0);
        assert!(!p.is_persistent());
    }

    #[test]
    fn copy_within_moves_data_and_charges_both_sides() {
        let p = test_pool();
        let off = p.alloc(1024, 64).unwrap();
        p.write_u32_slice(off, &[1, 2, 3, 4]);
        let before = p.stats_snapshot();
        p.copy_within(off, off + 512, 16);
        let d = p.stats_snapshot().delta_since(&before);
        assert_eq!(d.logical_bytes_read, 16);
        assert_eq!(d.logical_bytes_written, 16);
        let mut out = [0u32; 4];
        p.read_u32_slice(off + 512, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn memset_clears_region() {
        let p = test_pool();
        let off = p.alloc(256, 64).unwrap();
        p.write_u32_slice(off, &[9; 16]);
        p.memset(off, 0, 64);
        let mut out = [9u32; 16];
        p.read_u32_slice(off, &mut out);
        assert_eq!(out, [0; 16]);
    }

    #[test]
    fn save_and_reopen_file_image() {
        let dir = std::env::temp_dir().join(format!("pmem-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.img");
        let p = test_pool();
        let off = p.alloc(64, 8).unwrap();
        p.write_u64(off, 4242);
        p.persist(off, 8);
        p.set_root(RootId::Superblock, off).unwrap();
        p.save_to_file(&path).unwrap();

        let q = PmemPool::open_file(&path, PmemConfig::small_test()).unwrap();
        let r = q.root(RootId::Superblock).unwrap();
        assert_eq!(r, off);
        assert_eq!(q.read_u64(r), 4242);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_file_rejects_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pmem-garbage-{}.img", std::process::id()));
        std::fs::write(&path, b"not a pool").unwrap();
        assert!(PmemPool::open_file(&path, PmemConfig::small_test()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_crc_stays_valid_across_alloc_roots_and_crash() {
        let p = test_pool();
        p.verify_header().unwrap();
        let off = p.alloc(256, 64).unwrap();
        p.set_root(RootId::EdgeArray, off).unwrap();
        p.verify_header().unwrap();
        p.simulate_crash();
        p.verify_header().unwrap();
        assert_eq!(p.root(RootId::EdgeArray).unwrap(), off);
    }

    #[test]
    fn bit_flip_in_root_table_is_detected_with_context() {
        let p = test_pool();
        let off = p.alloc(64, 8).unwrap();
        p.set_root(RootId::Superblock, off).unwrap();
        p.set_label("shard-7");
        p.inject_bit_flip(ROOT_TABLE_OFF, 3);
        let err = p.verify_header().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("shard-7"), "{msg}");
        assert!(msg.contains("crc mismatch"), "{msg}");
        assert!(matches!(err, PmemError::BadImage { .. }));
    }

    #[test]
    fn bit_flip_hits_both_images() {
        let p = test_pool();
        let off = p.alloc(64, 64).unwrap();
        p.write_u64(off, 0);
        p.persist(off, 8);
        p.inject_bit_flip(off, 0);
        assert_eq!(p.read_u64(off), 1, "working image flipped");
        p.simulate_crash();
        assert_eq!(p.read_u64(off), 1, "durable image flipped too");
        // Flipping back restores the original value.
        p.inject_bit_flip(off, 0);
        assert_eq!(p.read_u64(off), 0);
    }

    #[test]
    fn torn_line_garbles_a_suffix_durably() {
        let p = test_pool();
        let off = p.alloc(128, 64).unwrap();
        let pattern = [0x5au8; 64];
        p.write(off, &pattern);
        p.persist(off, 64);
        p.inject_torn_line(off + 17, 0xfeed_beef);
        let after = p.read_vec(off, 64);
        assert_ne!(after, pattern.to_vec(), "line must differ after tear");
        p.simulate_crash();
        assert_eq!(p.read_vec(off, 64), after, "tear survives the crash");
    }

    #[test]
    fn open_file_rejects_corrupted_root_table() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pmem-corrupt-{}.img", std::process::id()));
        let p = test_pool();
        let off = p.alloc(64, 8).unwrap();
        p.set_root(RootId::Superblock, off).unwrap();
        p.save_to_file(&path).unwrap();
        // Flip a bit of the first root slot inside the on-disk image
        // (16-byte file header + pool offset).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16 + ROOT_TABLE_OFF as usize] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = PmemPool::open_file(&path, PmemConfig::small_test()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("crc mismatch"), "{msg}");
        assert!(
            msg.contains(&path.display().to_string()),
            "error must name the image file: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let p = test_pool();
        p.write_u64(p.capacity() as u64 - 4, 1);
    }

    #[test]
    fn concurrent_disjoint_writers_persist_correctly() {
        use std::sync::Arc;
        let p = Arc::new(test_pool());
        let off = p.alloc(64 * 64, 64).unwrap();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..8u64 {
                    let o = off + t * 8 * 64 + i * 64;
                    p.write_u64(o, t * 100 + i);
                    p.persist(o, 8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        p.simulate_crash();
        for t in 0..8u64 {
            for i in 0..8u64 {
                assert_eq!(p.read_u64(off + t * 8 * 64 + i * 64), t * 100 + i);
            }
        }
    }
}
