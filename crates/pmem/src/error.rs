//! Error type shared by all pmem operations.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, PmemError>;

/// Errors raised by the emulated persistent-memory pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmemError {
    /// The pool does not have enough free space to satisfy an allocation.
    OutOfSpace {
        /// Number of bytes that were requested.
        requested: usize,
        /// Number of bytes still available in the pool.
        available: usize,
    },
    /// An access (read/write/flush) touched bytes outside the pool.
    OutOfBounds {
        /// Offset of the access.
        offset: u64,
        /// Length of the access.
        len: usize,
        /// Capacity of the pool.
        capacity: usize,
    },
    /// The requested alignment is not a power of two.
    BadAlignment(usize),
    /// The requested root slot does not exist.
    NoSuchRoot(u64),
    /// A transaction was used after it was committed or aborted.
    TransactionClosed,
    /// The undo journal of a transaction is full.
    JournalFull {
        /// Journal capacity in bytes.
        capacity: usize,
        /// Bytes needed by the failed `add_range`.
        needed: usize,
    },
    /// The pool image on disk is corrupt or has the wrong magic number.
    BadImage(String),
    /// An I/O error occurred while saving/loading a pool image.
    Io(String),
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::OutOfSpace {
                requested,
                available,
            } => write!(
                f,
                "pmem pool out of space: requested {requested} bytes, {available} available"
            ),
            PmemError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "pmem access out of bounds: offset {offset} len {len} capacity {capacity}"
            ),
            PmemError::BadAlignment(a) => write!(f, "alignment {a} is not a power of two"),
            PmemError::NoSuchRoot(id) => write!(f, "no root registered under id {id}"),
            PmemError::TransactionClosed => write!(f, "transaction already committed or aborted"),
            PmemError::JournalFull { capacity, needed } => write!(
                f,
                "transaction journal full: capacity {capacity} bytes, {needed} more needed"
            ),
            PmemError::BadImage(msg) => write!(f, "bad pool image: {msg}"),
            PmemError::Io(msg) => write!(f, "pool image i/o error: {msg}"),
        }
    }
}

impl std::error::Error for PmemError {}

impl From<std::io::Error> for PmemError {
    fn from(e: std::io::Error) -> Self {
        PmemError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_values() {
        let e = PmemError::OutOfSpace {
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));

        let e = PmemError::OutOfBounds {
            offset: 5,
            len: 6,
            capacity: 7,
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('6') && s.contains('7'));

        let e = PmemError::BadAlignment(3);
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: PmemError = io.into();
        assert!(matches!(e, PmemError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(PmemError::NoSuchRoot(3), PmemError::NoSuchRoot(3),);
        assert_ne!(PmemError::NoSuchRoot(3), PmemError::NoSuchRoot(4));
    }
}
