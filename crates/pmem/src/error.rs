//! Error type shared by all pmem operations.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, PmemError>;

/// Errors raised by the emulated persistent-memory pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmemError {
    /// The pool does not have enough free space to satisfy an allocation.
    OutOfSpace {
        /// Number of bytes that were requested.
        requested: usize,
        /// Number of bytes still available in the pool.
        available: usize,
    },
    /// An access (read/write/flush) touched bytes outside the pool.
    OutOfBounds {
        /// Offset of the access.
        offset: u64,
        /// Length of the access.
        len: usize,
        /// Capacity of the pool.
        capacity: usize,
    },
    /// The requested alignment is not a power of two.
    BadAlignment(usize),
    /// The requested root slot does not exist.
    NoSuchRoot(u64),
    /// A transaction was used after it was committed or aborted.
    TransactionClosed,
    /// The undo journal of a transaction is full.
    JournalFull {
        /// Journal capacity in bytes.
        capacity: usize,
        /// Bytes needed by the failed `add_range`.
        needed: usize,
    },
    /// The pool image is corrupt: wrong magic, truncated, or a region
    /// failed its CRC32C check.  Carries enough context to identify the
    /// failing region in a multi-shard deployment.
    BadImage {
        /// Where the pool came from: the image file path, or the pool's
        /// label (`"<memory>"` for an unlabelled in-memory pool).
        source: String,
        /// Byte offset of the failing region inside the pool image.
        offset: u64,
        /// What exactly failed (bad magic, CRC mismatch, truncation...).
        detail: String,
    },
    /// An I/O error occurred while saving/loading a pool image.
    Io(String),
}

impl PmemError {
    /// Shorthand constructor for [`PmemError::BadImage`].
    pub fn bad_image(source: impl Into<String>, offset: u64, detail: impl Into<String>) -> Self {
        PmemError::BadImage {
            source: source.into(),
            offset,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::OutOfSpace {
                requested,
                available,
            } => write!(
                f,
                "pmem pool out of space: requested {requested} bytes, {available} available"
            ),
            PmemError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "pmem access out of bounds: offset {offset} len {len} capacity {capacity}"
            ),
            PmemError::BadAlignment(a) => write!(f, "alignment {a} is not a power of two"),
            PmemError::NoSuchRoot(id) => write!(f, "no root registered under id {id}"),
            PmemError::TransactionClosed => write!(f, "transaction already committed or aborted"),
            PmemError::JournalFull { capacity, needed } => write!(
                f,
                "transaction journal full: capacity {capacity} bytes, {needed} more needed"
            ),
            PmemError::BadImage {
                source,
                offset,
                detail,
            } => write!(f, "bad pool image ({source} @ +{offset}): {detail}"),
            PmemError::Io(msg) => write!(f, "pool image i/o error: {msg}"),
        }
    }
}

impl std::error::Error for PmemError {}

impl From<std::io::Error> for PmemError {
    fn from(e: std::io::Error) -> Self {
        PmemError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_values() {
        let e = PmemError::OutOfSpace {
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));

        let e = PmemError::OutOfBounds {
            offset: 5,
            len: 6,
            capacity: 7,
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('6') && s.contains('7'));

        let e = PmemError::BadAlignment(3);
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: PmemError = io.into();
        assert!(matches!(e, PmemError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn bad_image_carries_source_and_offset() {
        let e = PmemError::bad_image("/pools/shard3.img", 4096, "crc mismatch");
        let s = e.to_string();
        assert!(s.contains("/pools/shard3.img"), "{s}");
        assert!(s.contains("4096"), "{s}");
        assert!(s.contains("crc mismatch"), "{s}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(PmemError::NoSuchRoot(3), PmemError::NoSuchRoot(3),);
        assert_ne!(PmemError::NoSuchRoot(3), PmemError::NoSuchRoot(4));
    }
}
