//! Raw byte arena backing a pool's working and persisted images.
//!
//! The arena intentionally allows shared mutation through `&self`, mirroring
//! real memory-mapped persistent memory: the device itself does not arbitrate
//! concurrent stores, the software above it must.  Higher layers (DGAP's
//! per-section locks, the baselines' own locks) guarantee that two threads
//! never write the same byte range concurrently and never read a range that
//! another thread is concurrently writing.  Under that invariant the raw
//! pointer copies below are race-free because all concurrently accessed byte
//! ranges are disjoint.

pub(crate) struct Arena {
    /// Raw pointer into a heap allocation of `len` bytes.  Kept as a raw
    /// pointer (rather than a `Box` behind an `UnsafeCell`) so that no `&mut`
    /// to the whole buffer is ever materialised while disjoint ranges are
    /// being accessed from multiple threads.
    base: *mut u8,
    len: usize,
}

// SAFETY: see module docs — callers guarantee disjointness of concurrently
// accessed byte ranges, making the unsynchronised accesses race-free.
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

impl Drop for Arena {
    fn drop(&mut self) {
        // SAFETY: `base`/`len` came from `Box::into_raw` of a boxed slice of
        // exactly `len` bytes and are only reconstructed once, here.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.base, self.len,
            )));
        }
    }
}

impl Arena {
    /// Allocate a zero-filled arena of `capacity` bytes.
    pub(crate) fn new(capacity: usize) -> Self {
        let boxed = vec![0u8; capacity].into_boxed_slice();
        let base = Box::into_raw(boxed).cast::<u8>();
        Arena {
            base,
            len: capacity,
        }
    }

    /// Total number of bytes in the arena.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn base(&self) -> *mut u8 {
        self.base
    }

    /// Copy `src` into the arena at `offset`.  Caller must have bounds-checked.
    #[inline]
    pub(crate) fn write(&self, offset: usize, src: &[u8]) {
        debug_assert!(offset + src.len() <= self.len());
        // SAFETY: bounds checked by caller (debug-asserted here); disjointness
        // of concurrent accesses guaranteed by higher-level locking.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.base().add(offset), src.len());
        }
    }

    /// Copy `dst.len()` bytes from the arena at `offset` into `dst`.
    #[inline]
    pub(crate) fn read(&self, offset: usize, dst: &mut [u8]) {
        debug_assert!(offset + dst.len() <= self.len());
        // SAFETY: as above.
        unsafe {
            std::ptr::copy_nonoverlapping(self.base().add(offset), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Copy `len` bytes from `src_off` to `dst_off` inside the arena.
    /// Overlapping ranges are handled (memmove semantics).
    #[inline]
    pub(crate) fn copy_within(&self, src_off: usize, dst_off: usize, len: usize) {
        debug_assert!(src_off + len <= self.len());
        debug_assert!(dst_off + len <= self.len());
        // SAFETY: as above; `copy` allows overlap.
        unsafe {
            std::ptr::copy(self.base().add(src_off), self.base().add(dst_off), len);
        }
    }

    /// Fill `len` bytes starting at `offset` with `byte`.
    #[inline]
    pub(crate) fn fill(&self, offset: usize, byte: u8, len: usize) {
        debug_assert!(offset + len <= self.len());
        // SAFETY: as above.
        unsafe {
            std::ptr::write_bytes(self.base().add(offset), byte, len);
        }
    }

    /// Copy `len` bytes at `offset` from `other` into `self` at the same
    /// offset.  Used to promote flushed lines into the persisted image and
    /// to restore the working image after a simulated crash.
    pub(crate) fn copy_range_from(&self, other: &Arena, offset: usize, len: usize) {
        debug_assert!(offset + len <= self.len());
        debug_assert!(offset + len <= other.len());
        // SAFETY: as above; the two arenas are distinct allocations.
        unsafe {
            std::ptr::copy_nonoverlapping(other.base().add(offset), self.base().add(offset), len);
        }
    }

    /// Clone the full contents into a `Vec<u8>` (used for pool image export).
    pub(crate) fn to_vec(&self) -> Vec<u8> {
        let mut v = vec![0u8; self.len()];
        self.read(0, &mut v);
        v
    }

    /// Overwrite the full contents from `bytes` (used for pool image import).
    pub(crate) fn load_from(&self, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.len(), "image size mismatch");
        self.write(0, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let a = Arena::new(128);
        a.write(10, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        a.read(10, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn new_arena_is_zeroed() {
        let a = Arena::new(64);
        let mut buf = [0xffu8; 64];
        a.read(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn copy_within_handles_overlap() {
        let a = Arena::new(32);
        a.write(0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        // shift right by 2 within an overlapping region
        a.copy_within(0, 2, 8);
        let mut buf = [0u8; 10];
        a.read(0, &mut buf);
        assert_eq!(buf, [1, 2, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn fill_sets_bytes() {
        let a = Arena::new(16);
        a.fill(4, 0xab, 8);
        let mut buf = [0u8; 16];
        a.read(0, &mut buf);
        assert_eq!(&buf[4..12], &[0xab; 8]);
        assert_eq!(buf[3], 0);
        assert_eq!(buf[12], 0);
    }

    #[test]
    fn copy_range_from_other_arena() {
        let a = Arena::new(64);
        let b = Arena::new(64);
        a.write(8, &[9, 9, 9, 9]);
        b.copy_range_from(&a, 8, 4);
        let mut buf = [0u8; 4];
        b.read(8, &mut buf);
        assert_eq!(buf, [9, 9, 9, 9]);
    }

    #[test]
    fn export_import_roundtrip() {
        let a = Arena::new(32);
        a.write(0, &[7; 32]);
        let img = a.to_vec();
        let b = Arena::new(32);
        b.load_from(&img);
        let mut buf = [0u8; 32];
        b.read(0, &mut buf);
        assert_eq!(buf, [7; 32]);
    }

    #[test]
    fn concurrent_disjoint_writes_are_visible() {
        use std::sync::Arc;
        let a = Arc::new(Arena::new(1024));
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let off = t as usize * 128;
                a.write(off, &[t + 1; 128]);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u8 {
            let mut buf = [0u8; 128];
            a.read(t as usize * 128, &mut buf);
            assert!(buf.iter().all(|&b| b == t + 1));
        }
    }
}
