//! # pmem — an emulated persistent-memory substrate
//!
//! This crate emulates an Intel Optane DC Persistent Memory module (DCPMM)
//! in App Direct mode, providing the substrate on which the DGAP dynamic
//! graph framework (and all the baseline graph systems it is compared
//! against) are built.
//!
//! The emulator is *not* a cycle-accurate device model.  It reproduces the
//! behavioural properties that the DGAP paper's designs react to:
//!
//! * **Byte addressability with explicit persistence.**  Stores land in a
//!   volatile working image; they only become durable after an explicit
//!   [`PmemPool::flush`] of the covering cache line followed by a
//!   [`PmemPool::fence`] (CLWB/CLFLUSHOPT + SFENCE on real hardware).  On an
//!   eADR platform the flush step is unnecessary and is modelled as free.
//! * **Asymmetric and pattern-dependent write cost.**  A configurable
//!   [`CostModel`] charges simulated nanoseconds for reads, sequential
//!   writes, random writes, repeated in-place flushes of the same line, and
//!   fences — mirroring the measurements in Fig. 1 of the paper.
//! * **256-byte internal write buffering (XPLine).**  Media writes are
//!   accounted at cache-line granularity and grouped into 256 B XPLines so
//!   that small scattered writes show the write-amplification the paper
//!   reports.
//! * **Crash semantics.**  [`PmemPool::simulate_crash`] discards everything
//!   that was not persisted (with 8-byte atomic write granularity for lines
//!   that were flushed but not yet fenced), allowing deterministic testing
//!   of recovery paths.
//! * **PMDK-style transactions.**  [`tx::Transaction`] provides an undo-log
//!   transaction comparable to `libpmemobj`, complete with the journal
//!   allocation and ordering overheads that make it expensive — it is the
//!   baseline DGAP's per-thread undo log is designed to beat.
//!
//! ## Addressing model
//!
//! Like PMDK, persistent data structures never store raw pointers.  All
//! references inside the pool are [`PmemOffset`]s (byte offsets from the
//! start of the pool).  A small *root directory* stored in the pool header
//! maps well-known [`RootId`]s to offsets so that data structures can be
//! located again after a restart or crash.
//!
//! ## Example
//!
//! ```
//! use pmem::{PmemPool, PmemConfig, RootId};
//!
//! let pool = PmemPool::new(PmemConfig::small_test());
//! let off = pool.alloc(1024, 64).unwrap();
//! pool.write_u64(off, 0xdead_beef);
//! pool.persist(off, 8);                 // flush + fence
//! pool.set_root(RootId::Custom(7), off).unwrap();
//!
//! // After a crash only persisted data survives.
//! pool.simulate_crash();
//! assert_eq!(pool.read_u64(pool.root(RootId::Custom(7)).unwrap()), 0xdead_beef);
//! ```

#![warn(missing_docs)]

mod arena;
mod config;
pub mod crc;
mod error;
mod pool;
mod stats;
pub mod tx;

pub use config::{AdrMode, CostModel, Media, PmemConfig, CACHE_LINE, XPLINE};
pub use crc::{crc32c, Crc32c};
pub use error::{PmemError, Result};
pub use pool::{PmemPool, RootId, CRASH_DROP_FLUSHED, CRASH_FAILPOINT_MARKER, CRASH_KEEP_FLUSHED};
pub use stats::{PmemStats, StatsSnapshot};

/// A byte offset inside a [`PmemPool`].
///
/// Persistent data structures store these instead of raw pointers so that
/// they remain valid across restarts (the pool may be re-opened at a
/// different virtual address, just like a PMDK pool).
pub type PmemOffset = u64;

/// Sentinel offset meaning "null" / "no object".
///
/// Offset 0 always falls inside the pool header and is never returned by the
/// allocator, so it can be used as a null value.
pub const NULL_OFFSET: PmemOffset = 0;
