//! Operation counters and the simulated-time accumulator.
//!
//! Every access to a [`crate::PmemPool`] updates these counters; benchmark
//! harnesses read a [`StatsSnapshot`] before and after a phase and subtract
//! to obtain per-phase figures such as write amplification (Fig. 1(a)) or
//! simulated insertion time (Fig. 1(b), Table 5).

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters maintained by a pool.  All counters use relaxed ordering:
/// they are statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct PmemStats {
    /// Bytes of payload the caller asked to write (`write*` calls).
    pub logical_bytes_written: AtomicU64,
    /// Bytes actually charged to the media, accounted at cache-line
    /// granularity (a 4-byte store dirties a whole 64 B line which must be
    /// written back on flush).  `media_bytes_written / logical_bytes_written`
    /// is the write-amplification factor.
    pub media_bytes_written: AtomicU64,
    /// Bytes of payload read by the caller.
    pub logical_bytes_read: AtomicU64,
    /// Number of `write*` calls.
    pub write_ops: AtomicU64,
    /// Number of `read*` calls.
    pub read_ops: AtomicU64,
    /// Number of cache-line flushes issued.
    pub flushes: AtomicU64,
    /// Number of fences issued.
    pub fences: AtomicU64,
    /// Number of flushes that hit a line already flushed since the previous
    /// fence (the expensive "persistent in-place update" pattern).
    pub inplace_flushes: AtomicU64,
    /// Number of writes classified as sequential (continuing the previous
    /// write's address range).
    pub seq_writes: AtomicU64,
    /// Number of writes classified as random.
    pub rand_writes: AtomicU64,
    /// Number of XPLines (256 B buffers) touched by media write-back.
    pub xplines_touched: AtomicU64,
    /// Number of PMDK-style transactions started.
    pub tx_started: AtomicU64,
    /// Number of PMDK-style transactions committed.
    pub tx_committed: AtomicU64,
    /// Number of PMDK-style transactions aborted.
    pub tx_aborted: AtomicU64,
    /// Bytes copied into transaction undo journals.
    pub tx_journal_bytes: AtomicU64,
    /// Accumulated simulated time in nanoseconds according to the pool's
    /// [`crate::CostModel`].
    pub simulated_ns: AtomicU64,
    /// Number of allocations served.
    pub allocations: AtomicU64,
    /// Bytes handed out by the allocator (including alignment padding).
    pub allocated_bytes: AtomicU64,
}

impl PmemStats {
    /// Create a zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `ns` simulated nanoseconds.
    #[inline]
    pub fn charge_ns(&self, ns: u64) {
        if ns != 0 {
            self.simulated_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Take a consistent-enough snapshot of all counters (each counter is
    /// read atomically; the set is not a single atomic snapshot, which is
    /// fine for statistics).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            logical_bytes_written: self.logical_bytes_written.load(Ordering::Relaxed),
            media_bytes_written: self.media_bytes_written.load(Ordering::Relaxed),
            logical_bytes_read: self.logical_bytes_read.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            inplace_flushes: self.inplace_flushes.load(Ordering::Relaxed),
            seq_writes: self.seq_writes.load(Ordering::Relaxed),
            rand_writes: self.rand_writes.load(Ordering::Relaxed),
            xplines_touched: self.xplines_touched.load(Ordering::Relaxed),
            tx_started: self.tx_started.load(Ordering::Relaxed),
            tx_committed: self.tx_committed.load(Ordering::Relaxed),
            tx_aborted: self.tx_aborted.load(Ordering::Relaxed),
            tx_journal_bytes: self.tx_journal_bytes.load(Ordering::Relaxed),
            simulated_ns: self.simulated_ns.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            allocated_bytes: self.allocated_bytes.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero.  Benchmarks call this between phases.
    pub fn reset(&self) {
        self.logical_bytes_written.store(0, Ordering::Relaxed);
        self.media_bytes_written.store(0, Ordering::Relaxed);
        self.logical_bytes_read.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
        self.inplace_flushes.store(0, Ordering::Relaxed);
        self.seq_writes.store(0, Ordering::Relaxed);
        self.rand_writes.store(0, Ordering::Relaxed);
        self.xplines_touched.store(0, Ordering::Relaxed);
        self.tx_started.store(0, Ordering::Relaxed);
        self.tx_committed.store(0, Ordering::Relaxed);
        self.tx_aborted.store(0, Ordering::Relaxed);
        self.tx_journal_bytes.store(0, Ordering::Relaxed);
        self.simulated_ns.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.allocated_bytes.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of every [`PmemStats`] counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`PmemStats::logical_bytes_written`].
    pub logical_bytes_written: u64,
    /// See [`PmemStats::media_bytes_written`].
    pub media_bytes_written: u64,
    /// See [`PmemStats::logical_bytes_read`].
    pub logical_bytes_read: u64,
    /// See [`PmemStats::write_ops`].
    pub write_ops: u64,
    /// See [`PmemStats::read_ops`].
    pub read_ops: u64,
    /// See [`PmemStats::flushes`].
    pub flushes: u64,
    /// See [`PmemStats::fences`].
    pub fences: u64,
    /// See [`PmemStats::inplace_flushes`].
    pub inplace_flushes: u64,
    /// See [`PmemStats::seq_writes`].
    pub seq_writes: u64,
    /// See [`PmemStats::rand_writes`].
    pub rand_writes: u64,
    /// See [`PmemStats::xplines_touched`].
    pub xplines_touched: u64,
    /// See [`PmemStats::tx_started`].
    pub tx_started: u64,
    /// See [`PmemStats::tx_committed`].
    pub tx_committed: u64,
    /// See [`PmemStats::tx_aborted`].
    pub tx_aborted: u64,
    /// See [`PmemStats::tx_journal_bytes`].
    pub tx_journal_bytes: u64,
    /// See [`PmemStats::simulated_ns`].
    pub simulated_ns: u64,
    /// See [`PmemStats::allocations`].
    pub allocations: u64,
    /// See [`PmemStats::allocated_bytes`].
    pub allocated_bytes: u64,
}

impl StatsSnapshot {
    /// Write-amplification factor: media bytes written divided by logical
    /// payload bytes written.  Returns 0.0 when nothing was written.
    pub fn write_amplification(&self) -> f64 {
        if self.logical_bytes_written == 0 {
            0.0
        } else {
            self.media_bytes_written as f64 / self.logical_bytes_written as f64
        }
    }

    /// Simulated time expressed in seconds.
    pub fn simulated_seconds(&self) -> f64 {
        self.simulated_ns as f64 / 1e9
    }

    /// Counter-wise difference `self - earlier`, saturating at zero.
    /// Benchmarks use this to isolate one phase of a run.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            logical_bytes_written: self
                .logical_bytes_written
                .saturating_sub(earlier.logical_bytes_written),
            media_bytes_written: self
                .media_bytes_written
                .saturating_sub(earlier.media_bytes_written),
            logical_bytes_read: self
                .logical_bytes_read
                .saturating_sub(earlier.logical_bytes_read),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            fences: self.fences.saturating_sub(earlier.fences),
            inplace_flushes: self.inplace_flushes.saturating_sub(earlier.inplace_flushes),
            seq_writes: self.seq_writes.saturating_sub(earlier.seq_writes),
            rand_writes: self.rand_writes.saturating_sub(earlier.rand_writes),
            xplines_touched: self.xplines_touched.saturating_sub(earlier.xplines_touched),
            tx_started: self.tx_started.saturating_sub(earlier.tx_started),
            tx_committed: self.tx_committed.saturating_sub(earlier.tx_committed),
            tx_aborted: self.tx_aborted.saturating_sub(earlier.tx_aborted),
            tx_journal_bytes: self
                .tx_journal_bytes
                .saturating_sub(earlier.tx_journal_bytes),
            simulated_ns: self.simulated_ns.saturating_sub(earlier.simulated_ns),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            allocated_bytes: self.allocated_bytes.saturating_sub(earlier.allocated_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_computes_ratio() {
        let snap = StatsSnapshot {
            logical_bytes_written: 100,
            media_bytes_written: 700,
            ..Default::default()
        };
        assert!((snap.write_amplification() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn write_amplification_zero_when_no_writes() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.write_amplification(), 0.0);
    }

    #[test]
    fn delta_since_subtracts() {
        let a = StatsSnapshot {
            flushes: 10,
            fences: 4,
            simulated_ns: 1_000,
            ..Default::default()
        };
        let b = StatsSnapshot {
            flushes: 25,
            fences: 5,
            simulated_ns: 3_000,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.flushes, 15);
        assert_eq!(d.fences, 1);
        assert_eq!(d.simulated_ns, 2_000);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let a = StatsSnapshot {
            flushes: 10,
            ..Default::default()
        };
        let b = StatsSnapshot::default();
        assert_eq!(b.delta_since(&a).flushes, 0);
    }

    #[test]
    fn reset_clears_counters() {
        let stats = PmemStats::new();
        stats.flushes.fetch_add(5, Ordering::Relaxed);
        stats.charge_ns(123);
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(snap.flushes, 0);
        assert_eq!(snap.simulated_ns, 0);
    }

    #[test]
    fn simulated_seconds_converts() {
        let snap = StatsSnapshot {
            simulated_ns: 2_500_000_000,
            ..Default::default()
        };
        assert!((snap.simulated_seconds() - 2.5).abs() < 1e-12);
    }
}
