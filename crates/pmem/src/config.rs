//! Pool configuration: media type, platform persistence domain and the
//! latency cost model.

/// Size of a CPU cache line in bytes.  Flush granularity.
pub const CACHE_LINE: usize = 64;

/// Size of the Optane DCPMM internal write buffer ("XPLine") in bytes.
///
/// Writes smaller than an XPLine that force the buffer to be evicted early
/// waste media bandwidth; the emulator accounts media traffic at this
/// granularity when computing write amplification.
pub const XPLINE: usize = 256;

/// Which physical medium the pool emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Media {
    /// Emulated Optane DCPMM: persistence requires flush + fence, writes are
    /// slow and asymmetric with reads.
    Pmem,
    /// Plain DRAM: no persistence (a crash loses everything), symmetric
    /// latency.  Used as the "DRAM" bar in Fig. 1(b) and for components the
    /// paper deliberately keeps volatile.
    Dram,
}

/// Whether the platform's persistence domain includes the CPU caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdrMode {
    /// Asynchronous DRAM Refresh: the write-pending queue is protected but
    /// CPU caches are not.  Software must flush cache lines explicitly.
    Adr,
    /// Extended ADR (3rd-gen Xeon Scalable): caches are inside the
    /// persistence domain, so flushes are unnecessary (only fences for
    /// ordering).
    Eadr,
}

/// Latency cost model, in simulated nanoseconds.
///
/// The default numbers follow the published Optane characterisation studies
/// cited by the paper (Izraelevitz et al., Yang et al.): reads ~2-3x DRAM,
/// persistent writes ~7-8x DRAM, sequential media access much cheaper than
/// random, and repeated flushes of the same cache line (persistent in-place
/// updates) severely penalised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of reading one cache line from the emulated PM media.
    pub pm_read_line_ns: u64,
    /// Cost of writing one cache line to PM when the access continues a
    /// sequential stream (the previous write ended where this one starts).
    pub pm_write_line_seq_ns: u64,
    /// Cost of writing one cache line to PM at a random location.
    pub pm_write_line_rand_ns: u64,
    /// Additional penalty charged when a cache line is flushed again while
    /// its previous flush is still "in flight" (models the blocking caused
    /// by persistent in-place updates, Fig. 1(c)).
    pub pm_inplace_penalty_ns: u64,
    /// Cost of a flush instruction (CLWB / CLFLUSHOPT) for one line.
    pub flush_ns: u64,
    /// Cost of an SFENCE.
    pub fence_ns: u64,
    /// Cost of reading one cache line from DRAM.
    pub dram_read_line_ns: u64,
    /// Cost of writing one cache line to DRAM.
    pub dram_write_line_ns: u64,
    /// Fixed overhead charged per PMDK-style transaction for journal
    /// allocation and metadata ordering (the "high memory allocation cost"
    /// and "excessive ordering" bottlenecks of §2.4.2).
    pub tx_overhead_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            pm_read_line_ns: 300,
            pm_write_line_seq_ns: 200,
            pm_write_line_rand_ns: 700,
            pm_inplace_penalty_ns: 1200,
            flush_ns: 100,
            fence_ns: 50,
            dram_read_line_ns: 100,
            dram_write_line_ns: 100,
            tx_overhead_ns: 2500,
        }
    }
}

impl CostModel {
    /// A cost model in which every operation is free.  Useful for unit tests
    /// that only care about functional behaviour.
    pub fn zero() -> Self {
        CostModel {
            pm_read_line_ns: 0,
            pm_write_line_seq_ns: 0,
            pm_write_line_rand_ns: 0,
            pm_inplace_penalty_ns: 0,
            flush_ns: 0,
            fence_ns: 0,
            dram_read_line_ns: 0,
            dram_write_line_ns: 0,
            tx_overhead_ns: 0,
        }
    }
}

/// Configuration for a [`crate::PmemPool`].
#[derive(Debug, Clone)]
pub struct PmemConfig {
    /// Total pool capacity in bytes (header included).
    pub capacity: usize,
    /// Emulated medium.
    pub media: Media,
    /// Platform persistence domain.
    pub adr: AdrMode,
    /// Latency model used to accumulate simulated time.
    pub cost: CostModel,
    /// When `true` the pool keeps a shadow "persisted image" so that
    /// [`crate::PmemPool::simulate_crash`] can discard un-persisted data.
    /// Costs one extra copy of `capacity` bytes of DRAM; disable for very
    /// large benchmark pools where crash testing is not needed.
    pub track_persistence: bool,
    /// Seed used for randomised crash decisions (whether a flushed-but-not-
    /// fenced line survives).  Deterministic by default.
    pub crash_seed: u64,
}

impl PmemConfig {
    /// A pool suitable for unit tests: 4 MiB, persistence tracking enabled,
    /// zero-cost latency model so tests run fast.
    pub fn small_test() -> Self {
        PmemConfig {
            capacity: 4 << 20,
            media: Media::Pmem,
            adr: AdrMode::Adr,
            cost: CostModel::zero(),
            track_persistence: true,
            crash_seed: 0x5eed,
        }
    }

    /// A pool with the default (realistic) cost model and a caller-chosen
    /// capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        PmemConfig {
            capacity,
            media: Media::Pmem,
            adr: AdrMode::Adr,
            cost: CostModel::default(),
            track_persistence: true,
            crash_seed: 0x5eed,
        }
    }

    /// Same as [`PmemConfig::with_capacity`] but emulating plain DRAM
    /// (volatile, symmetric latency).  Used for the DRAM bars in Fig. 1(b)
    /// and Table 5's data-placement ablation.
    pub fn dram_with_capacity(capacity: usize) -> Self {
        PmemConfig {
            capacity,
            media: Media::Dram,
            adr: AdrMode::Adr,
            cost: CostModel::default(),
            track_persistence: false,
            crash_seed: 0x5eed,
        }
    }

    /// Builder-style: set the platform mode.
    pub fn adr_mode(mut self, adr: AdrMode) -> Self {
        self.adr = adr;
        self
    }

    /// Builder-style: set the cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style: enable or disable persistence (crash) tracking.
    pub fn persistence_tracking(mut self, on: bool) -> Self {
        self.track_persistence = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cost_model_is_asymmetric() {
        let c = CostModel::default();
        assert!(c.pm_write_line_rand_ns > c.pm_read_line_ns);
        assert!(c.pm_read_line_ns > c.dram_read_line_ns);
        assert!(c.pm_write_line_rand_ns > c.pm_write_line_seq_ns);
        assert!(c.pm_inplace_penalty_ns > c.pm_write_line_rand_ns);
    }

    #[test]
    fn zero_cost_model_is_all_zero() {
        let c = CostModel::zero();
        assert_eq!(c.pm_read_line_ns, 0);
        assert_eq!(c.fence_ns, 0);
        assert_eq!(c.tx_overhead_ns, 0);
    }

    #[test]
    fn builders_compose() {
        let cfg = PmemConfig::with_capacity(1 << 20)
            .adr_mode(AdrMode::Eadr)
            .persistence_tracking(false)
            .cost_model(CostModel::zero());
        assert_eq!(cfg.capacity, 1 << 20);
        assert_eq!(cfg.adr, AdrMode::Eadr);
        assert!(!cfg.track_persistence);
        assert_eq!(cfg.cost, CostModel::zero());
    }

    #[test]
    fn dram_config_is_volatile() {
        let cfg = PmemConfig::dram_with_capacity(1024);
        assert_eq!(cfg.media, Media::Dram);
        assert!(!cfg.track_persistence);
    }

    #[test]
    fn constants_are_powers_of_two() {
        assert!(CACHE_LINE.is_power_of_two());
        assert!(XPLINE.is_power_of_two());
        assert_eq!(XPLINE % CACHE_LINE, 0);
    }
}
