//! PMDK-style undo-log transactions.
//!
//! `libpmemobj` protects multi-word updates with an undo journal: before a
//! protected range is modified, its current contents are copied into a
//! persistent journal, the journal entry is flushed and fenced, and only
//! then is the range overwritten.  On commit the journal is invalidated; on
//! a crash the (still valid) journal is replayed to roll the ranges back.
//!
//! The paper identifies two reasons this is expensive on Optane (§2.4.2 and
//! §3's "Per-thread Undo Log" discussion):
//!
//! 1. *journal allocation cost* — each transaction allocates and initialises
//!    journal metadata on PM, and
//! 2. *excessive ordering* — every `add_range` needs its own flush + fence
//!    before the protected store may proceed.
//!
//! The emulator reproduces both: [`TxContext::begin`] charges
//! [`crate::CostModel::tx_overhead_ns`], and [`Transaction::add_range`]
//! persists the journal entry eagerly.  DGAP's per-thread undo log
//! (`dgap::ulog`) exists to beat precisely this baseline; the "No EL&UL"
//! ablation of Table 5 swaps it back in.
//!
//! # Example
//!
//! ```
//! use pmem::{PmemPool, PmemConfig};
//! use pmem::tx::TxContext;
//!
//! let pool = PmemPool::new(PmemConfig::small_test());
//! let data = pool.alloc(64, 8).unwrap();
//! pool.write_u64(data, 1);
//! pool.persist(data, 8);
//!
//! let ctx = TxContext::new(&pool, 4096).unwrap();
//! let mut tx = ctx.begin().unwrap();
//! tx.add_range(data, 8).unwrap();          // journal old value
//! pool.write_u64(data, 2);                  // protected update
//! tx.commit();                              // make it durable
//! assert_eq!(pool.read_u64(data), 2);
//! ```

use crate::error::{PmemError, Result};
use crate::pool::PmemPool;
use crate::PmemOffset;
use std::sync::atomic::Ordering;

/// Journal header layout (all fields little-endian `u64`):
///
/// | offset | field                                   |
/// |--------|-----------------------------------------|
/// | 0      | `VALID` flag (1 = journal live)         |
/// | 8      | number of entries                       |
/// | 16     | bytes of entry data used                |
/// | 24..   | entries                                 |
///
/// Each entry is `(target_offset: u64, len: u64, data: [u8; len])`, packed
/// back to back.
const HDR_VALID: u64 = 0;
const HDR_NENTRIES: u64 = 8;
const HDR_USED: u64 = 16;
const HDR_SIZE: u64 = 24;

/// A reusable transaction journal bound to one [`PmemPool`].
///
/// Real PMDK keeps per-thread journal lanes inside the pool; `TxContext`
/// plays the same role.  Create one context per writer thread (they are not
/// `Sync`-free to share concurrently for the *same* transaction) and call
/// [`TxContext::begin`] for every transaction.
pub struct TxContext<'p> {
    pool: &'p PmemPool,
    /// Offset of the journal region inside the pool.
    journal: PmemOffset,
    /// Capacity of the journal's entry area in bytes.
    capacity: usize,
}

impl<'p> TxContext<'p> {
    /// Allocate a journal of `capacity` bytes (entry area, excluding the
    /// header) inside `pool`.
    pub fn new(pool: &'p PmemPool, capacity: usize) -> Result<Self> {
        let journal = pool.alloc_zeroed(HDR_SIZE as usize + capacity, 64)?;
        pool.persist(journal, HDR_SIZE as usize);
        Ok(TxContext {
            pool,
            journal,
            capacity,
        })
    }

    /// Re-attach to a journal previously created at `journal` (after a pool
    /// re-open).  `capacity` must match the original allocation.
    pub fn attach(pool: &'p PmemPool, journal: PmemOffset, capacity: usize) -> Self {
        TxContext {
            pool,
            journal,
            capacity,
        }
    }

    /// Offset of the journal region, for storing in a root slot so the
    /// journal can be found again after a restart.
    pub fn journal_offset(&self) -> PmemOffset {
        self.journal
    }

    /// Start a transaction.  Charges the PMDK journal-allocation/ordering
    /// overhead captured by [`crate::CostModel::tx_overhead_ns`].
    pub fn begin(&self) -> Result<Transaction<'_, 'p>> {
        let cost = self.pool.config().cost;
        self.pool.stats().charge_ns(cost.tx_overhead_ns);
        self.pool.stats().tx_started.fetch_add(1, Ordering::Relaxed);
        // Reset and publish an empty, *valid* journal before any range is
        // added; ordering matters for crash consistency.
        self.pool.write_u64(self.journal + HDR_NENTRIES, 0);
        self.pool.write_u64(self.journal + HDR_USED, 0);
        self.pool.persist(self.journal + HDR_NENTRIES, 16);
        self.pool.write_u64(self.journal + HDR_VALID, 1);
        self.pool.persist(self.journal + HDR_VALID, 8);
        Ok(Transaction {
            ctx: self,
            open: true,
        })
    }

    /// `true` if the journal holds a live (uncommitted) transaction — i.e. a
    /// crash happened mid-transaction and [`TxContext::recover`] should run.
    pub fn needs_recovery(&self) -> bool {
        self.pool.read_u64(self.journal + HDR_VALID) == 1
    }

    /// Roll back a transaction that was interrupted by a crash: every
    /// journaled range is restored to its pre-transaction contents.
    /// Returns the number of ranges restored.
    pub fn recover(&self) -> usize {
        if !self.needs_recovery() {
            return 0;
        }
        let restored = self.rollback();
        self.invalidate();
        restored
    }

    fn rollback(&self) -> usize {
        let nentries = self.pool.read_u64(self.journal + HDR_NENTRIES) as usize;
        let mut cursor = self.journal + HDR_SIZE;
        for _ in 0..nentries {
            let target = self.pool.read_u64(cursor);
            let len = self.pool.read_u64(cursor + 8) as usize;
            let data = self.pool.read_vec(cursor + 16, len);
            self.pool.write(target, &data);
            self.pool.persist(target, len);
            cursor += 16 + len as u64;
        }
        nentries
    }

    fn invalidate(&self) {
        self.pool.write_u64(self.journal + HDR_VALID, 0);
        self.pool.persist(self.journal + HDR_VALID, 8);
    }
}

/// A live transaction.  Obtain one from [`TxContext::begin`].
///
/// Dropping a transaction without committing aborts it (rolls back every
/// journaled range), mirroring `libpmemobj` semantics.
pub struct Transaction<'c, 'p> {
    ctx: &'c TxContext<'p>,
    open: bool,
}

impl Transaction<'_, '_> {
    /// Journal the current contents of `[offset, offset + len)` so the range
    /// can be rolled back.  Must be called *before* modifying the range.
    ///
    /// Each call persists its journal entry immediately (flush + fence),
    /// reproducing the "excessive ordering" overhead of PMDK transactions.
    pub fn add_range(&mut self, offset: PmemOffset, len: usize) -> Result<()> {
        if !self.open {
            return Err(PmemError::TransactionClosed);
        }
        let pool = self.ctx.pool;
        let used = pool.read_u64(self.ctx.journal + HDR_USED);
        let needed = 16 + len as u64;
        if used + needed > self.ctx.capacity as u64 {
            return Err(PmemError::JournalFull {
                capacity: self.ctx.capacity,
                needed: needed as usize,
            });
        }
        let entry_off = self.ctx.journal + HDR_SIZE + used;
        // Copy the old contents into the journal.
        let old = pool.read_vec(offset, len);
        pool.write_u64(entry_off, offset);
        pool.write_u64(entry_off + 8, len as u64);
        pool.write(entry_off + 16, &old);
        pool.persist(entry_off, 16 + len);
        // Publish the entry (count + used) and persist before the caller is
        // allowed to touch the protected range.
        let nentries = pool.read_u64(self.ctx.journal + HDR_NENTRIES);
        pool.write_u64(self.ctx.journal + HDR_NENTRIES, nentries + 1);
        pool.write_u64(self.ctx.journal + HDR_USED, used + needed);
        pool.persist(self.ctx.journal + HDR_NENTRIES, 16);
        pool.stats()
            .tx_journal_bytes
            .fetch_add(needed, Ordering::Relaxed);
        Ok(())
    }

    /// Convenience: journal a range and overwrite it with `data` in one call.
    pub fn write(&mut self, offset: PmemOffset, data: &[u8]) -> Result<()> {
        self.add_range(offset, data.len())?;
        self.ctx.pool.write(offset, data);
        Ok(())
    }

    /// Commit: persist all protected ranges and invalidate the journal.
    pub fn commit(mut self) {
        let pool = self.ctx.pool;
        // Persist the protected ranges themselves.  (Callers may already
        // have flushed them; re-flushing is safe and mirrors PMDK, which
        // flushes every snapshotted range at commit.)
        let nentries = pool.read_u64(self.ctx.journal + HDR_NENTRIES) as usize;
        let mut cursor = self.ctx.journal + HDR_SIZE;
        for _ in 0..nentries {
            let target = pool.read_u64(cursor);
            let len = pool.read_u64(cursor + 8) as usize;
            pool.flush(target, len);
            cursor += 16 + len as u64;
        }
        pool.fence();
        self.ctx.invalidate();
        pool.stats().tx_committed.fetch_add(1, Ordering::Relaxed);
        self.open = false;
    }

    /// Abort: roll back every journaled range and invalidate the journal.
    pub fn abort(mut self) {
        self.do_abort();
    }

    fn do_abort(&mut self) {
        if !self.open {
            return;
        }
        self.ctx.rollback();
        self.ctx.invalidate();
        self.ctx
            .pool
            .stats()
            .tx_aborted
            .fetch_add(1, Ordering::Relaxed);
        self.open = false;
    }
}

impl Drop for Transaction<'_, '_> {
    fn drop(&mut self) {
        self.do_abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PmemConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PmemConfig::small_test())
    }

    #[test]
    fn commit_makes_updates_durable() {
        let p = pool();
        let data = p.alloc(64, 8).unwrap();
        p.write_u64(data, 10);
        p.persist(data, 8);

        let ctx = TxContext::new(&p, 1024).unwrap();
        let mut tx = ctx.begin().unwrap();
        tx.add_range(data, 8).unwrap();
        p.write_u64(data, 20);
        tx.commit();

        p.simulate_crash();
        assert_eq!(p.read_u64(data), 20);
    }

    #[test]
    fn abort_rolls_back() {
        let p = pool();
        let data = p.alloc(64, 8).unwrap();
        p.write_u64(data, 10);
        p.persist(data, 8);

        let ctx = TxContext::new(&p, 1024).unwrap();
        let mut tx = ctx.begin().unwrap();
        tx.write(data, &20u64.to_le_bytes()).unwrap();
        assert_eq!(p.read_u64(data), 20);
        tx.abort();
        assert_eq!(p.read_u64(data), 10);
    }

    #[test]
    fn drop_without_commit_aborts() {
        let p = pool();
        let data = p.alloc(64, 8).unwrap();
        p.write_u64(data, 10);
        p.persist(data, 8);

        let ctx = TxContext::new(&p, 1024).unwrap();
        {
            let mut tx = ctx.begin().unwrap();
            tx.add_range(data, 8).unwrap();
            p.write_u64(data, 99);
        } // dropped here
        assert_eq!(p.read_u64(data), 10);
        assert_eq!(p.stats_snapshot().tx_aborted, 1);
    }

    #[test]
    fn crash_mid_transaction_recovers_old_values() {
        let p = pool();
        let a = p.alloc(64, 8).unwrap();
        let b = p.alloc(64, 8).unwrap();
        p.write_u64(a, 1);
        p.write_u64(b, 2);
        p.persist(a, 8);
        p.persist(b, 8);

        let ctx = TxContext::new(&p, 1024).unwrap();
        let journal_off = ctx.journal_offset();
        let mut tx = ctx.begin().unwrap();
        tx.add_range(a, 8).unwrap();
        tx.add_range(b, 8).unwrap();
        p.write_u64(a, 100);
        p.persist(a, 8); // one protected range already persisted
        p.write_u64(b, 200); // the other not yet persisted
        std::mem::forget(tx); // crash: no commit, no abort

        p.simulate_crash();
        let ctx2 = TxContext::attach(&p, journal_off, 1024);
        assert!(ctx2.needs_recovery());
        let restored = ctx2.recover();
        assert_eq!(restored, 2);
        assert_eq!(p.read_u64(a), 1, "partially persisted range rolled back");
        assert_eq!(p.read_u64(b), 2);
        assert!(!ctx2.needs_recovery());
    }

    #[test]
    fn committed_transaction_needs_no_recovery() {
        let p = pool();
        let a = p.alloc(64, 8).unwrap();
        let ctx = TxContext::new(&p, 1024).unwrap();
        let mut tx = ctx.begin().unwrap();
        tx.write(a, &7u64.to_le_bytes()).unwrap();
        tx.commit();
        p.simulate_crash();
        let ctx2 = TxContext::attach(&p, ctx.journal_offset(), 1024);
        assert!(!ctx2.needs_recovery());
        assert_eq!(ctx2.recover(), 0);
        assert_eq!(p.read_u64(a), 7);
    }

    #[test]
    fn journal_overflow_is_reported() {
        let p = pool();
        let data = p.alloc(4096, 8).unwrap();
        let ctx = TxContext::new(&p, 64).unwrap();
        let mut tx = ctx.begin().unwrap();
        let err = tx.add_range(data, 128).unwrap_err();
        assert!(matches!(err, PmemError::JournalFull { .. }));
    }

    #[test]
    fn use_after_close_is_rejected() {
        let p = pool();
        let data = p.alloc(64, 8).unwrap();
        let ctx = TxContext::new(&p, 1024).unwrap();
        let tx = ctx.begin().unwrap();
        tx.commit();
        // A new transaction on the same context works fine.
        let mut tx2 = ctx.begin().unwrap();
        tx2.add_range(data, 8).unwrap();
        tx2.commit();
        assert_eq!(p.stats_snapshot().tx_committed, 2);
    }

    #[test]
    fn transactions_charge_overhead() {
        let cfg = PmemConfig::small_test().cost_model(crate::CostModel::default());
        let p = PmemPool::new(cfg);
        let data = p.alloc(64, 8).unwrap();
        let ctx = TxContext::new(&p, 1024).unwrap();
        let before = p.stats_snapshot();
        let mut tx = ctx.begin().unwrap();
        tx.write(data, &1u64.to_le_bytes()).unwrap();
        tx.commit();
        let d = p.stats_snapshot().delta_since(&before);
        assert!(d.simulated_ns >= p.config().cost.tx_overhead_ns);
        assert_eq!(d.tx_started, 1);
        assert_eq!(d.tx_committed, 1);
        assert!(d.tx_journal_bytes >= 8);
    }

    #[test]
    fn multiple_sequential_transactions_reuse_journal_space() {
        let p = pool();
        let data = p.alloc(1024, 8).unwrap();
        let ctx = TxContext::new(&p, 256).unwrap();
        for i in 0..20u64 {
            let mut tx = ctx.begin().unwrap();
            tx.write(data + (i % 4) * 64, &i.to_le_bytes()).unwrap();
            tx.commit();
        }
        assert_eq!(p.stats_snapshot().tx_committed, 20);
    }
}
