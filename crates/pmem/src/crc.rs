//! Hand-rolled CRC32C (Castagnoli) — the integrity checksum for every
//! durable region in the stack.
//!
//! CRC32C was chosen over CRC32 (IEEE) for the same reason iSCSI, ext4 and
//! Btrfs chose it: better error-detection properties for short records and
//! a hardware instruction on every modern CPU.  This implementation is the
//! portable table-driven form (no `sse4.2` intrinsics — the crate is
//! dependency-free and must build on any target); one 256-entry table,
//! one lookup per byte.
//!
//! Two interfaces:
//!
//! * [`crc32c`] — one-shot over a byte slice;
//! * [`Crc32c`] — a running hasher for the flush-barrier pattern: every
//!   durable record updates the running state as it is written, so sealing
//!   a region's checksum never re-scans the region.
//!
//! The running form composes exactly: feeding records `a` then `b` yields
//! the same digest as one shot over `a ‖ b` (pinned by unit tests).

/// The Castagnoli polynomial, reflected (bit-reversed) form.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table for the reflected algorithm, built at compile
/// time so the hot path is one XOR + one shift + one load per byte.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// One-shot CRC32C of `data`.
///
/// `crc32c(b"123456789") == 0xE306_9283` (the standard check value).
pub fn crc32c(data: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(data);
    h.finish()
}

/// A running CRC32C hasher.
///
/// ```
/// use pmem::crc::{crc32c, Crc32c};
/// let mut h = Crc32c::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finish(), crc32c(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32c {
    /// Internal (pre-inversion) state.
    state: u32,
}

impl Crc32c {
    /// A fresh hasher (digest of the empty input is `0`).
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Resume a hasher from a previously [`finish`](Crc32c::finish)ed
    /// digest, so a sealed running checksum can keep absorbing later
    /// records across restarts without rehashing the prefix.
    pub fn resume(digest: u32) -> Self {
        Crc32c { state: !digest }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The digest of everything absorbed so far.  Does not consume the
    /// hasher: further [`update`](Crc32c::update)s continue the stream.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The canonical CRC32C test vector (RFC 3720 appendix, every
        // published implementation pins this).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(b""), 0);
        // 32 bytes of zeros — iSCSI test pattern.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn running_update_equals_one_shot_over_concatenation() {
        let records: [&[u8]; 4] = [b"alpha", b"", b"beta-record", b"\x00\xff\x7f"];
        let mut h = Crc32c::new();
        let mut all = Vec::new();
        for r in records {
            h.update(r);
            all.extend_from_slice(r);
        }
        assert_eq!(h.finish(), crc32c(&all));
        // Byte-at-a-time must agree too.
        let mut h2 = Crc32c::new();
        for &b in &all {
            h2.update(&[b]);
        }
        assert_eq!(h2.finish(), crc32c(&all));
    }

    #[test]
    fn resume_continues_a_sealed_stream() {
        let sealed = crc32c(b"prefix");
        let mut h = Crc32c::resume(sealed);
        h.update(b"suffix");
        assert_eq!(h.finish(), crc32c(b"prefixsuffix"));
    }

    #[test]
    fn detects_single_bit_flips_at_every_position() {
        // A small record shaped like an edge-log entry: 12 payload bytes.
        let record: [u8; 12] = [
            0x01, 0x00, 0x00, 0x80, 0x2A, 0x00, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0x3F,
        ];
        let clean = crc32c(&record);
        for byte in 0..record.len() {
            for bit in 0..8 {
                let mut corrupt = record;
                corrupt[byte] ^= 1 << bit;
                assert_ne!(
                    crc32c(&corrupt),
                    clean,
                    "bit {bit} of byte {byte} flipped undetected"
                );
            }
        }
    }

    #[test]
    fn finish_is_observational() {
        let mut h = Crc32c::new();
        h.update(b"abc");
        let d1 = h.finish();
        assert_eq!(d1, h.finish());
        h.update(b"def");
        assert_eq!(h.finish(), crc32c(b"abcdef"));
    }
}
