//! Shutdown, restart and crash recovery (§3.1.5).
//!
//! DGAP distinguishes two restart paths via the persistent
//! `NORMAL_SHUTDOWN` flag:
//!
//! * **Graceful restart.**  [`Dgap::shutdown`] serialises every DRAM
//!   component (vertex array, PMA-tree occupancies, allocation tail) into a
//!   metadata-backup region on PM and sets the flag; [`Dgap::open`] then
//!   simply reloads the backup — fast, independent of graph size.
//! * **Crash recovery.**  When the flag is clear, [`Dgap::open`] first rolls
//!   back any rebalance that was interrupted mid-flight (per-thread undo
//!   logs), then reconstructs the vertex array by scanning the edge array
//!   for pivot elements, folds in the per-section edge logs (degrees and
//!   `elog_head` chains) and rebuilds the density tree.  Sequential PM scans
//!   are fast, so even this path is proportional to the raw data size only.

use crate::config::DgapConfig;
use crate::edges::EdgeArray;
use crate::elog::EdgeLogs;
use crate::graph::Dgap;
use crate::meta::Superblock;
use crate::slot::Slot;
use crate::traits::{GraphError, GraphResult};
use crate::ulog::UndoLog;
use crate::vertex::{VertexArray, VertexEntry, NO_ELOG};
use parking_lot::Mutex;
use pma::{DensityTree, SegmentGeometry};
use pmem::PmemPool;
use std::sync::Arc;

/// Bytes per vertex entry in the metadata backup.
const BACKUP_VERTEX_BYTES: usize = 24;
/// Fixed header of the metadata backup.
const BACKUP_HEADER_BYTES: usize = 32;

/// How a [`Dgap::open`] call brought the instance back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// The previous session shut down gracefully; metadata was reloaded from
    /// the backup region.
    NormalRestart,
    /// The previous session crashed; metadata was reconstructed by scanning
    /// the edge array, edge logs and undo logs.
    CrashRecovery {
        /// Number of interrupted rebalances rolled back from undo logs.
        rolled_back_rebalances: usize,
    },
}

impl Dgap {
    /// Gracefully shut down: persist every DRAM component to PM and set the
    /// `NORMAL_SHUTDOWN` flag so the next [`Dgap::open`] can skip recovery.
    pub fn shutdown(&self) -> GraphResult<()> {
        let _wg = self.resize_lock.write(); // quiesce writers and readers
        let pool = self.pool();
        let entries = self.vertices.snapshot_entries();
        let num_sections = self.edges.num_segments();
        let occupancies: Vec<u32> = {
            let t = self.tree.lock();
            (0..num_sections).map(|s| t.occupancy(s) as u32).collect()
        };
        let len = BACKUP_HEADER_BYTES + entries.len() * BACKUP_VERTEX_BYTES + occupancies.len() * 4;
        let off = pool
            .alloc(len, 64)
            .map_err(|e| GraphError::OutOfSpace(e.to_string()))?;
        let mut buf = Vec::with_capacity(len);
        buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.num_edges_internal()).to_le_bytes());
        buf.extend_from_slice(&self.tail_value().to_le_bytes());
        buf.extend_from_slice(&(num_sections as u64).to_le_bytes());
        for e in &entries {
            buf.extend_from_slice(&e.degree.to_le_bytes());
            buf.extend_from_slice(&e.in_array.to_le_bytes());
            buf.extend_from_slice(&e.start.to_le_bytes());
            buf.extend_from_slice(&e.elog_head.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
        }
        for o in &occupancies {
            buf.extend_from_slice(&o.to_le_bytes());
        }
        debug_assert_eq!(buf.len(), len);
        pool.write(off, &buf);
        pool.persist(off, len);
        self.superblock().set_backup(pool, off, len);
        self.superblock().set_num_vertices(pool, entries.len());
        self.superblock().set_normal_shutdown(pool, true);
        Ok(())
    }

    /// Re-open a DGAP instance from a pool that already contains one
    /// (either after a graceful shutdown or after a crash).  Returns the
    /// instance together with which restart path was taken.
    pub fn open(pool: Arc<PmemPool>, cfg: DgapConfig) -> GraphResult<(Self, RecoveryKind)> {
        let sb = Superblock::open(&pool).map_err(|e| GraphError::Other(e.to_string()))?;
        let (segment_size, elog_size) = sb.config(&pool);
        let mut cfg = cfg;
        cfg.segment_size = segment_size;
        cfg.elog_size = elog_size;
        cfg.validate();
        let layout = sb
            .layout(&pool)
            .ok_or_else(|| GraphError::Other("pool has no published layout".into()))?;
        let edges = EdgeArray::attach(
            Arc::clone(&pool),
            layout.edge_base,
            segment_size,
            layout.num_segments,
        );
        let elogs = EdgeLogs::attach(
            Arc::clone(&pool),
            layout.elog_base,
            layout.num_segments,
            elog_size,
        );
        let (ulog_offsets, ulog_capacity, ulog_chunk) = sb.ulogs(&pool);
        let ulogs: Vec<Mutex<UndoLog>> = ulog_offsets
            .iter()
            .map(|&off| {
                Mutex::new(UndoLog::attach(
                    Arc::clone(&pool),
                    off,
                    ulog_capacity,
                    ulog_chunk,
                ))
            })
            .collect();

        let normal = sb.normal_shutdown(&pool);
        let num_vertices = sb.num_vertices(&pool).max(cfg.init_vertices);
        let geom = SegmentGeometry::new(segment_size, layout.num_segments);

        let graph = Dgap::assemble(
            Arc::clone(&pool),
            cfg,
            sb,
            VertexArray::new(num_vertices),
            edges,
            elogs,
            ulogs,
            DensityTree::new(geom, pma::DensityBounds::default()),
        );

        let kind = if normal {
            graph.load_backup()?;
            RecoveryKind::NormalRestart
        } else {
            let rolled_back = graph.recover_from_crash();
            RecoveryKind::CrashRecovery {
                rolled_back_rebalances: rolled_back,
            }
        };
        // From this point on we are live again: any future crash must go
        // through crash recovery unless `shutdown` runs first.
        graph.superblock().set_normal_shutdown(graph.pool(), false);
        Ok((graph, kind))
    }

    /// Reload DRAM metadata from the graceful-shutdown backup.
    fn load_backup(&self) -> GraphResult<()> {
        let pool = self.pool();
        let (off, len) = self
            .superblock()
            .backup(pool)
            .ok_or_else(|| GraphError::Other("normal shutdown recorded but no backup".into()))?;
        let buf = pool.read_vec(off, len);
        let nv = u64::from_le_bytes(buf[0..8].try_into().unwrap()) as usize;
        let records = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let tail = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        let num_sections = u64::from_le_bytes(buf[24..32].try_into().unwrap()) as usize;
        let mut entries = Vec::with_capacity(nv);
        let mut cursor = BACKUP_HEADER_BYTES;
        for _ in 0..nv {
            let degree = u32::from_le_bytes(buf[cursor..cursor + 4].try_into().unwrap());
            let in_array = u32::from_le_bytes(buf[cursor + 4..cursor + 8].try_into().unwrap());
            let start = u64::from_le_bytes(buf[cursor + 8..cursor + 16].try_into().unwrap());
            let elog_head = u32::from_le_bytes(buf[cursor + 16..cursor + 20].try_into().unwrap());
            entries.push(VertexEntry {
                degree,
                in_array,
                start,
                elog_head,
            });
            cursor += BACKUP_VERTEX_BYTES;
        }
        let mut occupancies = Vec::with_capacity(num_sections);
        for _ in 0..num_sections {
            occupancies
                .push(u32::from_le_bytes(buf[cursor..cursor + 4].try_into().unwrap()) as usize);
            cursor += 4;
        }
        self.restore_state(entries, occupancies, tail, records);
        self.elogs.rebuild_used_counters();
        Ok(())
    }

    /// Rebuild all DRAM metadata by scanning persistent structures.
    /// Returns the number of interrupted rebalances rolled back.
    fn recover_from_crash(&self) -> usize {
        let mut rolled_back = 0usize;
        for ulog in self.ulogs_for_recovery() {
            if ulog.lock().recover().is_some() {
                rolled_back += 1;
            }
        }

        let num_sections = self.edges.num_segments();
        let segment_size = self.edges.segment_size();
        let mut entries: Vec<VertexEntry> =
            vec![VertexEntry::default(); self.superblock().num_vertices(self.pool()).max(1)];
        let mut occupancies = vec![0usize; num_sections];
        let mut tail = 0u64;
        let mut records = 0u64;

        // Pass 1: the edge array.  Pivots give starts; the records that
        // follow give in-array counts and (initial) degrees.
        let mut current: Option<usize> = None;
        self.edges.scan(|idx, slot| {
            occupancies[(idx as usize) / segment_size] += 1;
            tail = tail.max(idx + 1);
            match slot {
                Slot::Pivot(v) => {
                    let v = v as usize;
                    if v >= entries.len() {
                        entries.resize(v + 1, VertexEntry::default());
                    }
                    entries[v].start = idx;
                    entries[v].in_array = 0;
                    entries[v].degree = 0;
                    entries[v].elog_head = NO_ELOG;
                    current = Some(v);
                }
                s if s.is_edge_record() => {
                    if let Some(v) = current {
                        entries[v].in_array += 1;
                        entries[v].degree += 1;
                        records += 1;
                    }
                }
                _ => {}
            }
        });

        // Pass 2: the per-section edge logs.  Entries appear in append
        // order, so the last one seen for a source becomes its chain head.
        self.elogs.scan_all(|section, idx, e| {
            let v = e.src as usize;
            if v >= entries.len() {
                entries.resize(v + 1, VertexEntry::default());
            }
            entries[v].degree += 1;
            entries[v].elog_head = idx;
            occupancies[section] += 1;
            records += 1;
        });

        self.restore_state(entries, occupancies, tail, records);
        self.stats_recovered(rolled_back as u64);
        rolled_back
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{DynamicGraph, GraphView};
    use pmem::PmemConfig;

    fn pool() -> Arc<PmemPool> {
        Arc::new(PmemPool::new(PmemConfig::small_test()))
    }

    fn populate(g: &Dgap, edges: &[(u64, u64)]) {
        for &(s, d) in edges {
            g.insert_edge(s, d).unwrap();
        }
    }

    fn edge_list(n: usize) -> Vec<(u64, u64)> {
        let mut x = 0x9e37_79b9u64;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 64, (x >> 17) % 64)
            })
            .collect()
    }

    fn neighbours_of_all(g: &Dgap) -> Vec<Vec<u64>> {
        let view = g.consistent_view();
        (0..DynamicGraph::num_vertices(g) as u64)
            .map(|v| view.neighbors(v))
            .collect()
    }

    #[test]
    fn graceful_shutdown_and_reopen_preserves_graph() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        let edges = edge_list(1500);
        populate(&g, &edges);
        let before = neighbours_of_all(&g);
        let records = DynamicGraph::num_edges(&g);
        g.shutdown().unwrap();
        drop(g);

        p.simulate_crash(); // power-off after a graceful shutdown
        let (g2, kind) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert_eq!(kind, RecoveryKind::NormalRestart);
        assert_eq!(DynamicGraph::num_edges(&g2), records);
        assert_eq!(neighbours_of_all(&g2)[..64], before[..64]);
        g2.check_invariants();
    }

    #[test]
    fn crash_without_shutdown_recovers_all_persisted_edges() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        let edges = edge_list(2000);
        populate(&g, &edges);
        let before = neighbours_of_all(&g);
        let records = DynamicGraph::num_edges(&g);
        drop(g);

        p.simulate_crash();
        let (g2, kind) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert!(matches!(kind, RecoveryKind::CrashRecovery { .. }));
        assert_eq!(DynamicGraph::num_edges(&g2), records);
        let after = neighbours_of_all(&g2);
        assert_eq!(after[..64], before[..64]);
        g2.check_invariants();
    }

    #[test]
    fn recovered_graph_accepts_new_edges() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        populate(&g, &edge_list(800));
        drop(g);
        p.simulate_crash();
        let (g2, _) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        let before = DynamicGraph::num_edges(&g2);
        populate(&g2, &edge_list(500));
        assert_eq!(DynamicGraph::num_edges(&g2), before + 500);
        g2.check_invariants();
    }

    #[test]
    fn double_crash_recovery_is_stable() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        populate(&g, &edge_list(1000));
        drop(g);
        p.simulate_crash();
        let (g2, _) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        let snapshot = neighbours_of_all(&g2);
        drop(g2);
        p.simulate_crash();
        let (g3, _) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert_eq!(neighbours_of_all(&g3), snapshot);
        g3.check_invariants();
    }

    #[test]
    fn crash_after_shutdown_then_new_inserts_uses_crash_path() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        populate(&g, &edge_list(300));
        g.shutdown().unwrap();
        drop(g);
        let (g2, kind) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert_eq!(kind, RecoveryKind::NormalRestart);
        // New inserts after the restart, then a crash: the next open must
        // take the crash path (the flag was cleared on open).
        populate(&g2, &edge_list(300));
        let expected = DynamicGraph::num_edges(&g2);
        drop(g2);
        p.simulate_crash();
        let (g3, kind) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert!(matches!(kind, RecoveryKind::CrashRecovery { .. }));
        assert_eq!(DynamicGraph::num_edges(&g3), expected);
    }

    #[test]
    fn deletions_survive_recovery() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        g.insert_edge(1, 2).unwrap();
        g.insert_edge(1, 3).unwrap();
        g.delete_edge(1, 2).unwrap();
        drop(g);
        p.simulate_crash();
        let (g2, _) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        let view = g2.consistent_view();
        assert_eq!(view.neighbors(1), vec![3]);
    }

    #[test]
    fn open_fails_on_uninitialised_pool() {
        let p = pool();
        assert!(Dgap::open(p, DgapConfig::small_test()).is_err());
    }
}
