//! Shutdown, restart and crash recovery (§3.1.5, §4.4).
//!
//! DGAP distinguishes two restart paths via the persistent
//! `NORMAL_SHUTDOWN` flag:
//!
//! * **Graceful restart.**  [`Dgap::shutdown`] serialises every DRAM
//!   component (vertex array, PMA-tree occupancies, allocation tail) into a
//!   metadata-backup region on PM and sets the flag; [`Dgap::open`] then
//!   simply reloads the backup — fast, independent of graph size.
//! * **Crash recovery.**  When the flag is clear, [`Dgap::open`] first rolls
//!   back any rebalance that was interrupted mid-flight (per-thread undo
//!   logs), then reconstructs the vertex array by scanning the edge array
//!   for pivot elements, folds in the per-section edge logs (degrees and
//!   `elog_head` chains) and rebuilds the density tree.
//!
//! Both paths are **parallel** on graphs big enough to matter: the crash
//! scan splits the edge array into section-aligned chunks that rebuild
//! chunk-local vertex deltas, occupancies, tail and record counts on the
//! work-stealing pool, with a serial fixup stitching pivot runs that cross
//! chunk boundaries (records before a chunk's first pivot belong to the
//! previous chunk's last pivot).  Undo-log rollback fans out across the
//! per-thread logs, the per-section edge logs are scanned concurrently
//! (merged in section order so each vertex's `elog_head` matches the
//! sequential scan exactly), and the graceful-restart backup parse decodes
//! fixed-stride vertex records in parallel chunks.  The sequential
//! implementations are kept — [`Dgap::recover_from_crash_sequential`]
//! mirrors the `FrozenView::capture_sequential` precedent — both as the
//! small-graph fallback and as the measured baseline of the `recovery`
//! benchmark; [`RecoveredState`] lets tests assert the two scans
//! reconstruct identical state.

use crate::config::DgapConfig;
use crate::edges::EdgeArray;
use crate::elog::EdgeLogs;
use crate::graph::Dgap;
use crate::integrity::{self, VerifyReport};
use crate::meta::Superblock;
use crate::slot::{Slot, SLOT_BYTES};
use crate::traits::{GraphError, GraphResult, VertexId};
use crate::ulog::UndoLog;
use crate::vertex::{VertexArray, VertexEntry, NO_ELOG};
use parking_lot::Mutex;
use pma::{DensityTree, SegmentGeometry};
use pmem::{crc32c, PmemPool};
use std::sync::Arc;

/// Bytes per vertex entry in the metadata backup.
const BACKUP_VERTEX_BYTES: usize = 24;
/// Fixed header of the metadata backup.
const BACKUP_HEADER_BYTES: usize = 32;

/// Below this many edge-array slots the crash scan stays sequential: the
/// chunk bookkeeping and fork overhead outweigh the scan itself.
const PARALLEL_RECOVERY_MIN_SLOTS: usize = 1 << 14;
/// Below this many backed-up vertex entries the backup parse stays
/// sequential.
const PARALLEL_BACKUP_MIN_ENTRIES: usize = 1 << 14;

/// How a [`Dgap::open`] call brought the instance back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// The previous session shut down gracefully; metadata was reloaded from
    /// the backup region.
    NormalRestart,
    /// The previous session crashed; metadata was reconstructed by scanning
    /// the edge array, edge logs and undo logs.
    CrashRecovery {
        /// Number of interrupted rebalances rolled back from undo logs.
        rolled_back_rebalances: usize,
    },
}

/// The DRAM state a crash-recovery scan reconstructs, before it is
/// installed into the instance.
///
/// Exposed so tests and the `recovery` benchmark can run
/// [`Dgap::recover_from_crash_sequential`] and
/// [`Dgap::recover_from_crash_parallel`] side by side and assert they
/// rebuild identical state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredState {
    /// One entry per vertex: the superblock's recorded count extended to
    /// the highest id seen in the edge array or the edge logs.
    pub entries: Vec<VertexEntry>,
    /// Per-section occupancy (edge-array slots plus edge-log entries).
    pub occupancies: Vec<usize>,
    /// First slot index after the last occupied edge-array slot.
    pub tail: u64,
    /// Total edge records attributed to a vertex (tombstones included).
    pub records: u64,
}

/// Per-chunk partial of the parallel edge-array pass.
struct EdgeChunk {
    /// First section of the chunk's range.
    first_section: usize,
    /// Occupancy of each section in the range.
    occupancies: Vec<usize>,
    /// Highest occupied slot index + 1 seen in the range.
    tail: u64,
    /// Edge records following a pivot *inside* this chunk.
    records: u64,
    /// Edge records before the chunk's first pivot: they continue a pivot
    /// run that starts in an earlier chunk and are attributed during the
    /// serial fixup.
    prefix_records: u32,
    /// Pivots in slot order: `(vertex, start slot, in-chunk record count)`.
    pivots: Vec<(VertexId, u64, u32)>,
}

/// One section's edge-log partial: the section index and its live entries
/// as `(source vertex, global entry index)` in append order.
type SectionLog = (usize, Vec<(VertexId, u32)>);

impl Dgap {
    /// Gracefully shut down: persist every DRAM component to PM and set the
    /// `NORMAL_SHUTDOWN` flag so the next [`Dgap::open`] can skip recovery.
    pub fn shutdown(&self) -> GraphResult<()> {
        let _wg = self.resize_lock.write(); // quiesce writers and readers
        let pool = self.pool();
        let entries = self.vertices.snapshot_entries();
        let num_sections = self.edges.num_segments();
        let occupancies: Vec<u32> = {
            let t = self.tree.lock();
            (0..num_sections).map(|s| t.occupancy(s) as u32).collect()
        };
        let len = BACKUP_HEADER_BYTES + entries.len() * BACKUP_VERTEX_BYTES + occupancies.len() * 4;
        let off = pool
            .alloc(len, 64)
            .map_err(|e| GraphError::OutOfSpace(e.to_string()))?;
        let mut buf = Vec::with_capacity(len);
        buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.num_edges_internal()).to_le_bytes());
        buf.extend_from_slice(&self.tail_value().to_le_bytes());
        buf.extend_from_slice(&(num_sections as u64).to_le_bytes());
        for e in &entries {
            buf.extend_from_slice(&e.degree.to_le_bytes());
            buf.extend_from_slice(&e.in_array.to_le_bytes());
            buf.extend_from_slice(&e.start.to_le_bytes());
            buf.extend_from_slice(&e.elog_head.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
        }
        for o in &occupancies {
            buf.extend_from_slice(&o.to_le_bytes());
        }
        debug_assert_eq!(buf.len(), len);
        pool.write(off, &buf);
        pool.persist(off, len);
        self.superblock().set_backup(pool, off, len);
        // Seal the backup blob (the CRC is a running by-product of the buf
        // we just streamed out — no re-scan) and a per-section CRC table
        // over the now-quiescent edge array, so the next open can verify
        // both before trusting them.
        self.superblock().set_backup_crc(pool, crc32c(&buf));
        self.seal_section_crcs()?;
        self.superblock().set_num_vertices(pool, entries.len());
        self.superblock().set_normal_shutdown(pool, true);
        Ok(())
    }

    /// Checksum every edge-array section (in parallel on graphs big enough
    /// to matter) and persist the table of per-section CRCs, sealed with
    /// its own trailing CRC.  Called with the graph quiesced by `shutdown`.
    fn seal_section_crcs(&self) -> GraphResult<()> {
        use rayon::prelude::*;
        let pool = self.pool();
        let num_sections = self.edges.num_segments();
        let seg_bytes = self.edges.segment_size() * SLOT_BYTES;
        let base = self.edges.base_offset();
        let section_crc =
            |s: usize| crc32c(&pool.read_vec(base + (s * seg_bytes) as u64, seg_bytes));
        let parallel = self.config().parallel_recovery
            && rayon::current_num_threads() > 1
            && self.edges.capacity() >= PARALLEL_RECOVERY_MIN_SLOTS;
        let crcs: Vec<u32> = if parallel {
            (0..num_sections)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(section_crc)
                .collect()
        } else {
            (0..num_sections).map(section_crc).collect()
        };
        let len = 8 + num_sections * 4 + 4;
        let mut table = Vec::with_capacity(len);
        table.extend_from_slice(&(num_sections as u64).to_le_bytes());
        for c in &crcs {
            table.extend_from_slice(&c.to_le_bytes());
        }
        table.extend_from_slice(&crc32c(&table).to_le_bytes());
        debug_assert_eq!(table.len(), len);
        let off = pool
            .alloc(len, 64)
            .map_err(|e| GraphError::OutOfSpace(e.to_string()))?;
        pool.write(off, &table);
        pool.persist(off, len);
        self.superblock().set_section_crcs(pool, off, len);
        Ok(())
    }

    /// Re-open a DGAP instance from a pool that already contains one
    /// (either after a graceful shutdown or after a crash).  Returns the
    /// instance together with which restart path was taken.
    ///
    /// The structural parameters (`segment_size`, `elog_size`) always come
    /// from the pool's superblock: the persistent layout was built with
    /// them.  Passing the defaults in `cfg` is accepted as "no opinion";
    /// passing an explicit value that differs from the recorded one is an
    /// error rather than a silent override.
    pub fn open(pool: Arc<PmemPool>, cfg: DgapConfig) -> GraphResult<(Self, RecoveryKind)> {
        let (graph, kind, _report) = Self::open_verified(pool, cfg)?;
        Ok((graph, kind))
    }

    /// [`Dgap::open`] with the integrity pass's findings surfaced.
    ///
    /// Every open CRC-verifies the persistent image before trusting it
    /// (see [`crate::integrity`]): the pool header, superblock and layout
    /// block gate attachment; the undo-log headers, edge logs and — after
    /// a graceful shutdown — the metadata backup and per-section edge
    /// CRCs gate the restart path.  Repairable damage is repaired (and
    /// reported); fatal damage aborts with [`GraphError::Corrupted`]
    /// carrying the pool path and failing offset, so callers can
    /// quarantine the shard instead of serving corrupt edges.
    pub fn open_verified(
        pool: Arc<PmemPool>,
        cfg: DgapConfig,
    ) -> GraphResult<(Self, RecoveryKind, VerifyReport)> {
        let mut report = VerifyReport::default();
        report.push(integrity::pool_header_report(&pool));
        if let Some(e) = report.fatal_error(&pool) {
            return Err(e);
        }
        let sb = Superblock::open(&pool).map_err(|e| GraphError::Other(e.to_string()))?;
        report.push(integrity::superblock_report(&pool, &sb));
        report.push(integrity::layout_report(&pool, &sb));
        if let Some(e) = report.fatal_error(&pool) {
            return Err(e);
        }
        let (segment_size, elog_size) = sb.config(&pool);
        let defaults = DgapConfig::default();
        if cfg.segment_size != segment_size && cfg.segment_size != defaults.segment_size {
            return Err(GraphError::Other(format!(
                "segment_size {} does not match the pool's recorded {} \
                 (omit the override or pass the recorded value)",
                cfg.segment_size, segment_size
            )));
        }
        if cfg.elog_size != elog_size && cfg.elog_size != defaults.elog_size {
            return Err(GraphError::Other(format!(
                "elog_size {} does not match the pool's recorded {} \
                 (omit the override or pass the recorded value)",
                cfg.elog_size, elog_size
            )));
        }
        let mut cfg = cfg;
        cfg.segment_size = segment_size;
        cfg.elog_size = elog_size;
        cfg.validate();
        let layout = sb
            .layout(&pool)
            .ok_or_else(|| GraphError::Other("pool has no published layout".into()))?;
        let edges = EdgeArray::attach(
            Arc::clone(&pool),
            layout.edge_base,
            segment_size,
            layout.num_segments,
        );
        let elogs = EdgeLogs::attach(
            Arc::clone(&pool),
            layout.elog_base,
            layout.num_segments,
            elog_size,
        );
        let (ulog_offsets, ulog_capacity, ulog_chunk) = sb.ulogs(&pool);
        let ulogs: Vec<Mutex<UndoLog>> = ulog_offsets
            .iter()
            .map(|&off| {
                Mutex::new(UndoLog::attach(
                    Arc::clone(&pool),
                    off,
                    ulog_capacity,
                    ulog_chunk,
                ))
            })
            .collect();

        let normal = sb.normal_shutdown(&pool);
        let num_vertices = sb.num_vertices(&pool).max(cfg.init_vertices);
        let geom = SegmentGeometry::new(segment_size, layout.num_segments);

        let graph = Dgap::assemble(
            Arc::clone(&pool),
            cfg,
            sb,
            VertexArray::new(num_vertices),
            edges,
            elogs,
            ulogs,
            DensityTree::new(geom, pma::DensityBounds::default()),
        );

        // Verify the attached components before loading any state from
        // them.  A corrupt metadata backup downgrades `normal` to a crash
        // scan; fatal corruption aborts the open here.
        let normal = graph.verify_on_open(normal, &mut report)?;

        let kind = if normal {
            graph.load_backup()?;
            RecoveryKind::NormalRestart
        } else {
            let rolled_back = graph.recover_from_crash();
            RecoveryKind::CrashRecovery {
                rolled_back_rebalances: rolled_back,
            }
        };
        // From this point on we are live again: any future crash must go
        // through crash recovery unless `shutdown` runs first.
        graph.superblock().set_normal_shutdown(graph.pool(), false);
        Ok((graph, kind, report))
    }

    /// Reload DRAM metadata from the graceful-shutdown backup.
    fn load_backup(&self) -> GraphResult<()> {
        let _span = crate::telemetry::recovery_backup_load_nanos().span();
        let pool = self.pool();
        let (off, len) = self
            .superblock()
            .backup(pool)
            .ok_or_else(|| GraphError::Other("normal shutdown recorded but no backup".into()))?;
        let buf = pool.read_vec(off, len);
        let nv = u64::from_le_bytes(buf[0..8].try_into().unwrap()) as usize;
        let records = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let tail = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        let num_sections = u64::from_le_bytes(buf[24..32].try_into().unwrap()) as usize;
        let vertex_bytes =
            &buf[BACKUP_HEADER_BYTES..BACKUP_HEADER_BYTES + nv * BACKUP_VERTEX_BYTES];
        let parallel = self.config().parallel_recovery
            && nv >= PARALLEL_BACKUP_MIN_ENTRIES
            && rayon::current_num_threads() > 1;
        let entries = if parallel {
            parse_backup_entries_parallel(vertex_bytes, nv)
        } else {
            parse_backup_entries(vertex_bytes, 0..nv)
        };
        let mut occupancies = Vec::with_capacity(num_sections);
        let mut cursor = BACKUP_HEADER_BYTES + nv * BACKUP_VERTEX_BYTES;
        for _ in 0..num_sections {
            occupancies
                .push(u32::from_le_bytes(buf[cursor..cursor + 4].try_into().unwrap()) as usize);
            cursor += 4;
        }
        self.restore_state(entries, occupancies, tail, records);
        self.elogs.rebuild_used_counters();
        Ok(())
    }

    /// Rebuild all DRAM metadata by scanning persistent structures.
    /// Returns the number of interrupted rebalances rolled back.
    fn recover_from_crash(&self) -> usize {
        let parallel = self.config().parallel_recovery && rayon::current_num_threads() > 1;

        // Undo-log rollback: each writer thread's log is independent, so
        // the per-log recoveries fan out across the pool.
        let ulog_span = crate::telemetry::recovery_ulog_nanos().span();
        let rolled_back: usize = if parallel && self.ulogs_for_recovery().len() > 1 {
            use rayon::prelude::*;
            self.ulogs_for_recovery()
                .par_iter()
                .map(|ulog| usize::from(ulog.lock().recover().is_some()))
                .sum()
        } else {
            self.ulogs_for_recovery()
                .iter()
                .filter(|ulog| ulog.lock().recover().is_some())
                .count()
        };
        drop(ulog_span);

        let state = if parallel && self.edges.capacity() >= PARALLEL_RECOVERY_MIN_SLOTS {
            self.recover_from_crash_parallel()
        } else {
            self.recover_from_crash_sequential()
        };
        self.restore_state(state.entries, state.occupancies, state.tail, state.records);
        self.stats_recovered(rolled_back as u64);
        rolled_back
    }

    /// Whether a crash of this instance would rebuild with the parallel
    /// scan when `threads` workers are available — the same gate
    /// `recover_from_crash` applies (config knob, more than one thread,
    /// and an edge array big enough to split).  The `recovery` benchmark
    /// uses this to attribute the simulated device time across scanners
    /// only when the scan actually fans out.
    pub fn crash_scan_is_parallel(&self, threads: usize) -> bool {
        self.config().parallel_recovery
            && threads > 1
            && self.edges.capacity() >= PARALLEL_RECOVERY_MIN_SLOTS
    }

    /// Reconstruct the crash-recovery state with the original sequential
    /// scans (the small-graph fallback and the `recovery` benchmark's
    /// baseline; `FrozenView::capture_sequential` is the same precedent on
    /// the snapshot path).  Pure with respect to the instance's DRAM
    /// metadata: nothing is installed, only the edge-log used counters are
    /// refreshed (to the values a scan of PM always yields).
    pub fn recover_from_crash_sequential(&self) -> RecoveredState {
        let num_sections = self.edges.num_segments();
        let segment_size = self.edges.segment_size();
        let mut entries: Vec<VertexEntry> =
            vec![VertexEntry::default(); self.superblock().num_vertices(self.pool()).max(1)];
        let mut occupancies = vec![0usize; num_sections];
        let mut tail = 0u64;
        let mut records = 0u64;

        // Pass 1: the edge array.  Pivots give starts; the records that
        // follow give in-array counts and (initial) degrees.
        let scan_span = crate::telemetry::recovery_rebuild_scan_nanos().span();
        let mut current: Option<usize> = None;
        self.edges.scan(|idx, slot| {
            occupancies[(idx as usize) / segment_size] += 1;
            tail = tail.max(idx + 1);
            match slot {
                Slot::Pivot(v) => {
                    let v = v as usize;
                    if v >= entries.len() {
                        entries.resize(v + 1, VertexEntry::default());
                    }
                    entries[v].start = idx;
                    entries[v].in_array = 0;
                    entries[v].degree = 0;
                    entries[v].elog_head = NO_ELOG;
                    current = Some(v);
                }
                s if s.is_edge_record() => {
                    if let Some(v) = current {
                        entries[v].in_array += 1;
                        entries[v].degree += 1;
                        records += 1;
                    }
                }
                _ => {}
            }
        });

        drop(scan_span);

        // Pass 2: the per-section edge logs.  Entries appear in append
        // order, so the last one seen for a source becomes its chain head.
        let elog_span = crate::telemetry::recovery_elog_scan_nanos().span();
        self.elogs.scan_all(|section, idx, e| {
            let v = e.src as usize;
            if v >= entries.len() {
                entries.resize(v + 1, VertexEntry::default());
            }
            entries[v].degree += 1;
            entries[v].elog_head = idx;
            occupancies[section] += 1;
            records += 1;
        });
        drop(elog_span);

        RecoveredState {
            entries,
            occupancies,
            tail,
            records,
        }
    }

    /// Reconstruct the crash-recovery state with chunked parallel scans on
    /// the work-stealing pool.  Produces exactly the state
    /// [`Dgap::recover_from_crash_sequential`] produces (asserted by
    /// tests); see the [module docs](self) for the chunk/fixup design.
    pub fn recover_from_crash_parallel(&self) -> RecoveredState {
        use rayon::prelude::*;
        let num_sections = self.edges.num_segments();
        let segment_size = self.edges.segment_size();

        // Section-aligned chunk ranges: enough chunks for stealing to
        // balance skewed sections, each chunk a contiguous run.
        let per_chunk = num_sections
            .div_ceil((rayon::current_num_threads() * 4).max(1))
            .max(1);
        let ranges: Vec<(usize, usize)> = (0..num_sections)
            .step_by(per_chunk)
            .map(|lo| (lo, (lo + per_chunk).min(num_sections)))
            .collect();

        // Pass 1 (parallel): every chunk scans its slot range into local
        // accumulators; no shared state, no resizing inside the callback.
        let scan_span = crate::telemetry::recovery_rebuild_scan_nanos().span();
        let edge_chunks: Vec<EdgeChunk> = ranges
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut occupancies = vec![0usize; hi - lo];
                let mut tail = 0u64;
                let mut records = 0u64;
                let mut prefix_records = 0u32;
                let mut pivots: Vec<(VertexId, u64, u32)> = Vec::new();
                self.edges.scan_segments(lo..hi, |idx, slot| {
                    occupancies[(idx as usize) / segment_size - lo] += 1;
                    tail = tail.max(idx + 1);
                    match slot {
                        Slot::Pivot(v) => pivots.push((v, idx, 0)),
                        s if s.is_edge_record() => match pivots.last_mut() {
                            Some(p) => {
                                p.2 += 1;
                                records += 1;
                            }
                            None => prefix_records += 1,
                        },
                        _ => {}
                    }
                });
                EdgeChunk {
                    first_section: lo,
                    occupancies,
                    tail,
                    records,
                    prefix_records,
                    pivots,
                }
            })
            .collect();

        drop(scan_span);

        // Pass 2 (parallel): the per-section edge logs.  A vertex's chain
        // lives entirely in its pivot's section, so sections scan
        // independently; each partial keeps its section's append order.
        let elog_span = crate::telemetry::recovery_elog_scan_nanos().span();
        let elog_sections = self.elogs.num_sections();
        let elog_chunks: Vec<Vec<SectionLog>> = (0..elog_sections)
            .step_by(per_chunk)
            .map(|lo| (lo, (lo + per_chunk).min(elog_sections)))
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut sections = Vec::new();
                for section in lo..hi {
                    let mut seen = Vec::new();
                    self.elogs
                        .scan_section(section, |idx, e| seen.push((e.src, idx)));
                    if !seen.is_empty() {
                        sections.push((section, seen));
                    }
                }
                sections
            })
            .collect();
        drop(elog_span);

        // Size the vertex table once — superblock count extended to the
        // highest id any chunk saw — instead of resizing mid-scan.
        let mut nv = self.superblock().num_vertices(self.pool()).max(1);
        for chunk in &edge_chunks {
            for &(v, _, _) in &chunk.pivots {
                nv = nv.max(v as usize + 1);
            }
        }
        for sections in &elog_chunks {
            for (_, seen) in sections {
                for &(src, _) in seen {
                    nv = nv.max(src as usize + 1);
                }
            }
        }

        let mut entries = vec![VertexEntry::default(); nv];
        let mut occupancies = vec![0usize; num_sections];
        let mut tail = 0u64;
        let mut records = 0u64;

        // Serial fixup: install chunk partials in order, attributing each
        // chunk's leading records to the last pivot of the chunks before it
        // (a pivot run may span any number of pivot-free chunks).
        let mut carry: Option<VertexId> = None;
        for chunk in &edge_chunks {
            let lo = chunk.first_section;
            occupancies[lo..lo + chunk.occupancies.len()].copy_from_slice(&chunk.occupancies);
            tail = tail.max(chunk.tail);
            records += chunk.records;
            if chunk.prefix_records > 0 {
                if let Some(v) = carry {
                    let e = &mut entries[v as usize];
                    e.in_array += chunk.prefix_records;
                    e.degree += chunk.prefix_records;
                    records += u64::from(chunk.prefix_records);
                }
            }
            for &(v, start, count) in &chunk.pivots {
                entries[v as usize] = VertexEntry {
                    degree: count,
                    in_array: count,
                    start,
                    elog_head: NO_ELOG,
                };
            }
            if let Some(&(v, _, _)) = chunk.pivots.last() {
                carry = Some(v);
            }
        }

        // Edge-log merge in section order, so a vertex's `elog_head` ends
        // on the same (newest) entry the sequential forward scan ends on.
        for sections in &elog_chunks {
            for (section, seen) in sections {
                for &(src, idx) in seen {
                    let e = &mut entries[src as usize];
                    e.degree += 1;
                    e.elog_head = idx;
                    occupancies[*section] += 1;
                    records += 1;
                }
            }
        }

        RecoveredState {
            entries,
            occupancies,
            tail,
            records,
        }
    }
}

/// Decode backed-up vertex entries `range` from their fixed-stride records.
fn parse_backup_entries(vertex_bytes: &[u8], range: std::ops::Range<usize>) -> Vec<VertexEntry> {
    let mut out = Vec::with_capacity(range.len());
    for i in range {
        let cursor = i * BACKUP_VERTEX_BYTES;
        let rec = &vertex_bytes[cursor..cursor + BACKUP_VERTEX_BYTES];
        out.push(VertexEntry {
            degree: u32::from_le_bytes(rec[0..4].try_into().unwrap()),
            in_array: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
            start: u64::from_le_bytes(rec[8..16].try_into().unwrap()),
            elog_head: u32::from_le_bytes(rec[16..20].try_into().unwrap()),
        });
    }
    out
}

/// Decode the backup's vertex records in parallel chunks (fixed stride, so
/// chunk boundaries are exact); results concatenate in input order.
fn parse_backup_entries_parallel(vertex_bytes: &[u8], nv: usize) -> Vec<VertexEntry> {
    use rayon::prelude::*;
    let per_chunk = nv
        .div_ceil((rayon::current_num_threads() * 4).max(1))
        .max(1);
    (0..nv)
        .step_by(per_chunk)
        .map(|lo| lo..(lo + per_chunk).min(nv))
        .collect::<Vec<_>>()
        .into_par_iter()
        .flat_map_iter(|range| parse_backup_entries(vertex_bytes, range))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{DynamicGraph, GraphView};
    use pmem::PmemConfig;

    fn pool() -> Arc<PmemPool> {
        Arc::new(PmemPool::new(PmemConfig::small_test()))
    }

    fn populate(g: &Dgap, edges: &[(u64, u64)]) {
        for &(s, d) in edges {
            g.insert_edge(s, d).unwrap();
        }
    }

    fn edge_list(n: usize) -> Vec<(u64, u64)> {
        let mut x = 0x9e37_79b9u64;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 64, (x >> 17) % 64)
            })
            .collect()
    }

    fn neighbours_of_all(g: &Dgap) -> Vec<Vec<u64>> {
        let view = g.consistent_view();
        (0..DynamicGraph::num_vertices(g) as u64)
            .map(|v| view.neighbors(v))
            .collect()
    }

    #[test]
    fn graceful_shutdown_and_reopen_preserves_graph() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        let edges = edge_list(1500);
        populate(&g, &edges);
        let before = neighbours_of_all(&g);
        let records = DynamicGraph::num_edges(&g);
        g.shutdown().unwrap();
        drop(g);

        p.simulate_crash(); // power-off after a graceful shutdown
        let (g2, kind) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert_eq!(kind, RecoveryKind::NormalRestart);
        assert_eq!(DynamicGraph::num_edges(&g2), records);
        assert_eq!(neighbours_of_all(&g2)[..64], before[..64]);
        g2.check_invariants();
    }

    #[test]
    fn crash_without_shutdown_recovers_all_persisted_edges() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        let edges = edge_list(2000);
        populate(&g, &edges);
        let before = neighbours_of_all(&g);
        let records = DynamicGraph::num_edges(&g);
        drop(g);

        p.simulate_crash();
        let (g2, kind) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert!(matches!(kind, RecoveryKind::CrashRecovery { .. }));
        assert_eq!(DynamicGraph::num_edges(&g2), records);
        let after = neighbours_of_all(&g2);
        assert_eq!(after[..64], before[..64]);
        g2.check_invariants();
    }

    #[test]
    fn recovered_graph_accepts_new_edges() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        populate(&g, &edge_list(800));
        drop(g);
        p.simulate_crash();
        let (g2, _) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        let before = DynamicGraph::num_edges(&g2);
        populate(&g2, &edge_list(500));
        assert_eq!(DynamicGraph::num_edges(&g2), before + 500);
        g2.check_invariants();
    }

    #[test]
    fn double_crash_recovery_is_stable() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        populate(&g, &edge_list(1000));
        drop(g);
        p.simulate_crash();
        let (g2, _) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        let snapshot = neighbours_of_all(&g2);
        drop(g2);
        p.simulate_crash();
        let (g3, _) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert_eq!(neighbours_of_all(&g3), snapshot);
        g3.check_invariants();
    }

    #[test]
    fn crash_after_shutdown_then_new_inserts_uses_crash_path() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        populate(&g, &edge_list(300));
        g.shutdown().unwrap();
        drop(g);
        let (g2, kind) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert_eq!(kind, RecoveryKind::NormalRestart);
        // New inserts after the restart, then a crash: the next open must
        // take the crash path (the flag was cleared on open).
        populate(&g2, &edge_list(300));
        let expected = DynamicGraph::num_edges(&g2);
        drop(g2);
        p.simulate_crash();
        let (g3, kind) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert!(matches!(kind, RecoveryKind::CrashRecovery { .. }));
        assert_eq!(DynamicGraph::num_edges(&g3), expected);
    }

    #[test]
    fn deletions_survive_recovery() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        g.insert_edge(1, 2).unwrap();
        g.insert_edge(1, 3).unwrap();
        g.delete_edge(1, 2).unwrap();
        drop(g);
        p.simulate_crash();
        let (g2, _) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        let view = g2.consistent_view();
        assert_eq!(view.neighbors(1), vec![3]);
    }

    #[test]
    fn open_fails_on_uninitialised_pool() {
        let p = pool();
        assert!(Dgap::open(p, DgapConfig::small_test()).is_err());
    }

    #[test]
    fn open_rejects_explicit_config_mismatch_but_accepts_defaults() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        populate(&g, &edge_list(100));
        drop(g);
        p.simulate_crash();

        // small_test records segment_size 64 / elog_size 256.  An explicit
        // non-default, non-matching override must be rejected...
        let wrong_segment = DgapConfig::small_test().segment_size(128);
        assert!(Dgap::open(Arc::clone(&p), wrong_segment).is_err());
        let wrong_elog = DgapConfig::small_test().elog_size(1024);
        assert!(Dgap::open(Arc::clone(&p), wrong_elog).is_err());

        // ...while the defaults mean "no opinion" and open fine, with the
        // recorded values taking effect.
        let (g2, _) = Dgap::open(Arc::clone(&p), DgapConfig::default()).unwrap();
        assert_eq!(g2.config().segment_size, 64);
        assert_eq!(g2.config().elog_size, 256);
        assert_eq!(DynamicGraph::num_edges(&g2), 100);
    }

    #[test]
    fn sequential_and_parallel_crash_scans_rebuild_identical_state() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        populate(&g, &edge_list(2500));
        // Deletions and a high-id straggler (forces the vertex table past
        // the superblock's recorded count) make the state non-trivial.
        for v in 0..32u64 {
            g.delete_edge(v, (v + 1) % 64).unwrap();
        }
        g.insert_edge(200, 3).unwrap();
        drop(g);
        p.simulate_crash();
        let (g2, kind) = Dgap::open(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert!(matches!(kind, RecoveryKind::CrashRecovery { .. }));
        let seq = g2.recover_from_crash_sequential();
        let par = g2.recover_from_crash_parallel();
        assert_eq!(seq, par);
        assert!(seq.records > 0);
        assert_eq!(seq.entries.len(), 201);
    }

    #[test]
    fn sequential_recovery_config_still_recovers() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        populate(&g, &edge_list(1200));
        let before = neighbours_of_all(&g);
        drop(g);
        p.simulate_crash();
        let (g2, kind) = Dgap::open(
            Arc::clone(&p),
            DgapConfig::small_test().sequential_recovery(),
        )
        .unwrap();
        assert!(matches!(kind, RecoveryKind::CrashRecovery { .. }));
        assert_eq!(neighbours_of_all(&g2)[..64], before[..64]);
        g2.check_invariants();
    }
}
