//! Per-thread undo logs for crash-consistent rebalancing.
//!
//! PMA rebalancing moves whole windows of the edge array.  Protecting those
//! moves with PMDK-style transactions is expensive (journal allocation +
//! per-range ordering, §2.4.2), so DGAP gives every writer thread its own
//! pre-allocated undo-log region on PM and uses it as a lightweight
//! write-ahead backup:
//!
//! 1. a small descriptor (window offset + length) is written and persisted,
//! 2. the window's current contents are copied into the region in
//!    `chunk`-sized pieces, each persisted as it is written,
//! 3. a single `valid` flag is set and persisted — from this point the old
//!    contents are recoverable,
//! 4. the new window contents are written over the edge array (again in
//!    persisted chunks),
//! 5. the `valid` flag is cleared.
//!
//! If a crash happens before step 3 the edge array was never touched; if it
//! happens between steps 3 and 5 recovery copies the backup over the window,
//! returning the array to its pre-rebalance state, after which the rebalance
//! is simply re-issued.  Compared to the paper's prototype — which keeps only
//! the in-flight ≤2 KiB chunk and relies on the move order to make partially
//! rebalanced windows recoverable — this full-window backup is slightly more
//! conservative; DESIGN.md discusses the substitution.  The cost profile the
//! ablation measures is preserved: no per-transaction journal allocation and
//! one ordering point per chunk rather than PMDK's per-range fences.

use pmem::{crc32c, Crc32c, PmemOffset, PmemPool, Result as PmemResult};
use std::sync::Arc;

/// Header layout (all little-endian `u64`):
/// `[0]` valid flag, `[8]` window offset, `[16]` window length,
/// `[24]` spill offset (0 = backup inline), `[32]` CRC32C of the backup
/// data, `[40]` CRC32C of header bytes `0..40`.  The header occupies one
/// 64-byte-aligned cache line, so every update (fields + re-sealed CRC)
/// persists with a single flush and fence — a crash keeps or loses them
/// together.
const HDR_VALID: u64 = 0;
const HDR_WINDOW_OFF: u64 = 8;
const HDR_WINDOW_LEN: u64 = 16;
const HDR_USED: u64 = 24;
const HDR_DATA_CRC: u64 = 32;
const HDR_CRC: u64 = 40;
const HDR_SIZE: u64 = 64;

/// A single writer thread's undo log.
pub struct UndoLog {
    pool: Arc<PmemPool>,
    /// Offset of the header; the data area follows immediately.
    region: PmemOffset,
    /// Capacity of the data area in bytes.
    capacity: usize,
    /// Chunk size used when persisting backups and new contents (the
    /// paper's `ULOG_SZ`).
    chunk: usize,
}

impl UndoLog {
    /// Allocate an undo log whose data area holds at least `capacity` bytes
    /// and which persists in `chunk`-byte steps.
    pub fn new(pool: Arc<PmemPool>, capacity: usize, chunk: usize) -> PmemResult<Self> {
        let capacity = capacity.max(chunk).max(64);
        let region = pool.alloc_zeroed(HDR_SIZE as usize + capacity, 64)?;
        let log = UndoLog {
            pool,
            region,
            capacity,
            chunk: chunk.max(64),
        };
        log.update_header(&[]); // seal the CRC of the zeroed header
        Ok(log)
    }

    /// Re-attach to an undo log written by a previous session.
    pub fn attach(pool: Arc<PmemPool>, region: PmemOffset, capacity: usize, chunk: usize) -> Self {
        UndoLog {
            pool,
            region,
            capacity: capacity.max(64),
            chunk: chunk.max(64),
        }
    }

    /// Offset of the log region (recorded in the superblock so recovery can
    /// find it).
    pub fn region_offset(&self) -> PmemOffset {
        self.region
    }

    /// The CRC-sealed header region as `(offset, len)` — what the integrity
    /// pass covers and the fault injector may target.
    pub fn header_region(&self) -> (PmemOffset, u64) {
        (self.region, HDR_SIZE)
    }

    /// Capacity of the data area in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` if the log currently protects an interrupted rebalance.
    pub fn needs_recovery(&self) -> bool {
        self.pool.read_u64(self.region + HDR_VALID) == 1
    }

    /// Write header `fields`, re-seal the header CRC and persist the whole
    /// header line in one flush + fence.
    fn update_header(&self, fields: &[(u64, u64)]) {
        for &(f, v) in fields {
            self.pool.write_u64(self.region + f, v);
        }
        let crc = crc32c(&self.pool.read_vec(self.region, HDR_CRC as usize));
        self.pool.write_u64(self.region + HDR_CRC, u64::from(crc));
        self.pool.persist(self.region, (HDR_CRC + 8) as usize);
    }

    /// Check the header against its stored CRC.
    pub fn verify_header(&self) -> Result<(), String> {
        let stored = self.pool.read_u64(self.region + HDR_CRC) as u32;
        let actual = crc32c(&self.pool.read_vec(self.region, HDR_CRC as usize));
        if stored != actual {
            return Err(format!(
                "undo-log header crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
            ));
        }
        Ok(())
    }

    /// For an armed log, check the backed-up window data against the CRC
    /// sealed when the log was armed.  Disarmed logs trivially pass (their
    /// data area is never read).
    pub fn verify_armed_data(&self) -> Result<(), String> {
        if !self.needs_recovery() {
            return Ok(());
        }
        let len = self.pool.read_u64(self.region + HDR_WINDOW_LEN) as usize;
        let spill = self.pool.read_u64(self.region + HDR_USED);
        let backup_off = if spill != 0 {
            spill
        } else {
            self.region + HDR_SIZE
        };
        let mut h = Crc32c::new();
        let mut done = 0usize;
        while done < len {
            let n = self.chunk.min(len - done);
            h.update(&self.pool.read_vec(backup_off + done as u64, n));
            done += n;
        }
        let stored = self.pool.read_u64(self.region + HDR_DATA_CRC) as u32;
        let actual = h.finish();
        if stored != actual {
            return Err(format!(
                "undo-log backup data crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
            ));
        }
        Ok(())
    }

    /// Rewrite a clean, disarmed header — the repair for a corrupt header
    /// found after a *graceful* shutdown, where the log is known to have
    /// been disarmed (shutdown cannot complete mid-rebalance).
    pub fn reinit_header(&self) {
        for f in [
            HDR_VALID,
            HDR_WINDOW_OFF,
            HDR_WINDOW_LEN,
            HDR_USED,
            HDR_DATA_CRC,
        ] {
            self.pool.write_u64(self.region + f, 0);
        }
        self.update_header(&[]);
    }

    /// Overwrite `[window_off, window_off + new_contents.len())` of the pool
    /// with `new_contents`, crash-consistently.
    ///
    /// If the window is larger than the data area the backup falls back to a
    /// freshly allocated scratch region (rare: only root-level windows), so
    /// the call never silently loses protection.
    pub fn protected_overwrite(
        &self,
        window_off: PmemOffset,
        new_contents: &[u8],
    ) -> PmemResult<()> {
        let len = new_contents.len();
        if len == 0 {
            return Ok(());
        }
        let (backup_off, spilled) = if len <= self.capacity {
            (self.region + HDR_SIZE, false)
        } else {
            // Window larger than the pre-allocated area: take a one-off
            // scratch allocation.  The descriptor still lives in this log so
            // recovery knows where the backup went (we store the backup
            // offset in HDR_USED's upper bits... simpler: copy through the
            // regular area in capacity-sized rounds would break atomicity,
            // so a spill allocation is the honest choice).
            (self.pool.alloc(len, 64)?, true)
        };

        // 1. Descriptor first (not yet valid).
        self.update_header(&[
            (HDR_WINDOW_OFF, window_off),
            (HDR_WINDOW_LEN, len as u64),
            (HDR_USED, if spilled { backup_off } else { 0 }),
        ]);

        // 2. Backup the old contents chunk by chunk, accumulating the
        // running CRC as each chunk is written (no re-scan at arm time).
        let mut data_crc = Crc32c::new();
        let mut done = 0usize;
        while done < len {
            let n = self.chunk.min(len - done);
            let old = self.pool.read_vec(window_off + done as u64, n);
            data_crc.update(&old);
            self.pool.write(backup_off + done as u64, &old);
            self.pool.flush(backup_off + done as u64, n);
            done += n;
        }
        self.pool.fence();

        // 3. Arm the log: valid flag, backup-data CRC and re-sealed header
        // CRC land in one header-line flush + fence.
        self.update_header(&[(HDR_DATA_CRC, u64::from(data_crc.finish())), (HDR_VALID, 1)]);

        // 4. Write the new contents chunk by chunk.
        let mut done = 0usize;
        while done < len {
            let n = self.chunk.min(len - done);
            self.pool
                .write(window_off + done as u64, &new_contents[done..done + n]);
            self.pool.flush(window_off + done as u64, n);
            done += n;
        }
        self.pool.fence();

        // 5. Disarm.
        self.update_header(&[(HDR_VALID, 0)]);
        Ok(())
    }

    /// Roll back an interrupted rebalance, restoring the protected window to
    /// its pre-rebalance contents.  Returns the `(window_offset, length)`
    /// that was restored, or `None` if the log was not armed.
    pub fn recover(&self) -> Option<(PmemOffset, usize)> {
        if !self.needs_recovery() {
            return None;
        }
        let window_off = self.pool.read_u64(self.region + HDR_WINDOW_OFF);
        let len = self.pool.read_u64(self.region + HDR_WINDOW_LEN) as usize;
        let spill = self.pool.read_u64(self.region + HDR_USED);
        let backup_off = if spill != 0 {
            spill
        } else {
            self.region + HDR_SIZE
        };
        let mut done = 0usize;
        while done < len {
            let n = self.chunk.min(len - done);
            let old = self.pool.read_vec(backup_off + done as u64, n);
            self.pool.write(window_off + done as u64, &old);
            self.pool.flush(window_off + done as u64, n);
            done += n;
        }
        self.pool.fence();
        self.update_header(&[(HDR_VALID, 0)]);
        Some((window_off, len))
    }
}

impl std::fmt::Debug for UndoLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UndoLog")
            .field("region", &self.region)
            .field("capacity", &self.capacity)
            .field("chunk", &self.chunk)
            .field("armed", &self.needs_recovery())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    fn setup(capacity: usize, chunk: usize) -> (Arc<PmemPool>, UndoLog, PmemOffset) {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let ulog = UndoLog::new(Arc::clone(&pool), capacity, chunk).unwrap();
        let data = pool.alloc(4096, 64).unwrap();
        (pool, ulog, data)
    }

    #[test]
    fn overwrite_applies_new_contents() {
        let (pool, ulog, data) = setup(1024, 128);
        pool.write(data, &[1u8; 512]);
        pool.persist(data, 512);
        ulog.protected_overwrite(data, &[7u8; 512]).unwrap();
        assert_eq!(pool.read_vec(data, 512), vec![7u8; 512]);
        assert!(!ulog.needs_recovery());
        // The new contents are durable.
        pool.simulate_crash();
        assert_eq!(pool.read_vec(data, 512), vec![7u8; 512]);
    }

    #[test]
    fn crash_after_arming_rolls_back_cleanly() {
        let (pool, ulog, data) = setup(1024, 64);
        pool.write(data, &[1u8; 256]);
        pool.persist(data, 256);

        // Reproduce the protocol by hand up to a crash in the middle of
        // step 4 (new contents partially written).
        let region = ulog.region_offset();
        pool.write_u64(region + 8, data);
        pool.write_u64(region + 16, 256);
        pool.write_u64(region + 24, 0);
        pool.persist(region + 8, 24);
        let old = pool.read_vec(data, 256);
        pool.write(region + 64, &old); // data area follows the 64 B header
        pool.persist(region + 64, 256);
        pool.write_u64(region, 1);
        pool.persist(region, 8);
        // Partial overwrite: only the first half of the new data, persisted.
        pool.write(data, &[9u8; 128]);
        pool.persist(data, 128);

        pool.simulate_crash();
        let ulog2 = UndoLog::attach(Arc::clone(&pool), region, 1024, 64);
        assert!(ulog2.needs_recovery());
        let (off, len) = ulog2.recover().unwrap();
        assert_eq!(off, data);
        assert_eq!(len, 256);
        assert_eq!(pool.read_vec(data, 256), vec![1u8; 256]);
        assert!(!ulog2.needs_recovery());
    }

    #[test]
    fn crash_before_arming_leaves_window_untouched() {
        let (pool, ulog, data) = setup(1024, 64);
        pool.write(data, &[3u8; 128]);
        pool.persist(data, 128);
        // Descriptor written but valid flag never set: nothing to do.
        let region = ulog.region_offset();
        pool.write_u64(region + 8, data);
        pool.write_u64(region + 16, 128);
        pool.persist(region + 8, 16);
        pool.simulate_crash();
        let ulog2 = UndoLog::attach(Arc::clone(&pool), region, 1024, 64);
        assert!(!ulog2.needs_recovery());
        assert!(ulog2.recover().is_none());
        assert_eq!(pool.read_vec(data, 128), vec![3u8; 128]);
    }

    #[test]
    fn windows_larger_than_capacity_spill_but_stay_protected() {
        let (pool, ulog, data) = setup(256, 64);
        pool.write(data, &[5u8; 2048]);
        pool.persist(data, 2048);
        ulog.protected_overwrite(data, &[6u8; 2048]).unwrap();
        assert_eq!(pool.read_vec(data, 2048), vec![6u8; 2048]);
        assert!(!ulog.needs_recovery());
    }

    #[test]
    fn recover_is_idempotent() {
        let (pool, ulog, _data) = setup(512, 64);
        assert!(ulog.recover().is_none());
        assert!(ulog.recover().is_none());
        assert!(!ulog.needs_recovery());
        let _ = pool;
    }

    #[test]
    fn header_crc_sealed_through_the_whole_protocol() {
        let (pool, ulog, data) = setup(1024, 128);
        ulog.verify_header().unwrap();
        pool.write(data, &[1u8; 512]);
        pool.persist(data, 512);
        ulog.protected_overwrite(data, &[7u8; 512]).unwrap();
        ulog.verify_header().unwrap();
        ulog.verify_armed_data().unwrap(); // disarmed: trivially clean
        pool.simulate_crash();
        ulog.verify_header().unwrap();
    }

    #[test]
    fn header_bit_flip_detected_and_reinit_repairs() {
        let (pool, ulog, _data) = setup(512, 64);
        pool.inject_bit_flip(ulog.region_offset() + 16, 4);
        assert!(ulog.verify_header().unwrap_err().contains("crc mismatch"));
        ulog.reinit_header();
        ulog.verify_header().unwrap();
        assert!(!ulog.needs_recovery());
    }

    #[test]
    fn armed_backup_data_flip_is_detected() {
        let (pool, ulog, data) = setup(1024, 64);
        pool.write(data, &[4u8; 256]);
        pool.persist(data, 256);
        // Arm through the real protocol, then crash mid-step-4 by hand:
        // re-arm the header exactly as protected_overwrite leaves it.
        ulog.protected_overwrite(data, &[8u8; 256]).unwrap();
        let region = ulog.region_offset();
        pool.write_u64(region, 1); // re-arm; stale but valid data CRC remains
        let crc = pmem::crc32c(&pool.read_vec(region, 40));
        pool.write_u64(region + 40, u64::from(crc));
        pool.persist(region, 48);
        ulog.verify_header().unwrap();
        ulog.verify_armed_data().unwrap();
        // Now corrupt one byte of the backed-up window data.
        pool.inject_bit_flip(region + 64 + 100, 2);
        assert!(ulog
            .verify_armed_data()
            .unwrap_err()
            .contains("data crc mismatch"));
    }

    #[test]
    fn chunked_writes_charge_multiple_fences() {
        let pool = Arc::new(PmemPool::new(
            PmemConfig::small_test().cost_model(pmem::CostModel::default()),
        ));
        let ulog = UndoLog::new(Arc::clone(&pool), 4096, 256).unwrap();
        let data = pool.alloc(2048, 64).unwrap();
        let before = pool.stats_snapshot();
        ulog.protected_overwrite(data, &[1u8; 2048]).unwrap();
        let d = pool.stats_snapshot().delta_since(&before);
        // Old bytes + new bytes both written: at least 2x the window.
        assert!(d.logical_bytes_written >= 2 * 2048);
        // Far fewer fences than a PMDK transaction protecting the same
        // window range-by-range (one per chunk pair + bookkeeping).
        assert!(d.fences < 24, "fences: {}", d.fences);
        assert_eq!(d.tx_started, 0, "no PMDK transaction involved");
    }
}
