//! The DGAP vertex array.
//!
//! Per the paper's *data placement schema*, the vertex array lives in DRAM:
//! its fields (degree, edge-log pointer, array position) change on every
//! edge insertion and would otherwise cause the expensive persistent
//! in-place-update pattern of Fig. 1(c).  After a crash it is reconstructed
//! from the pivot elements in the persistent edge array (§3.1.5).
//!
//! For the "No EL&UL&DP" ablation (Table 5) the array can additionally be
//! *write-through mirrored* onto persistent memory: every metadata update is
//! then also written and persisted at the vertex's fixed PM location, which
//! charges exactly the in-place flush penalty the paper measures while
//! keeping the DRAM copy as the source of truth for reads.

use crate::traits::VertexId;
use parking_lot::RwLock;
use pmem::{PmemOffset, PmemPool};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "this vertex has no edges in the edge log".
pub const NO_ELOG: u32 = u32::MAX;

/// Sentinel for "this vertex has not been placed in the edge array yet".
pub const NO_START: u64 = u64::MAX;

/// Bytes one vertex occupies in the PM mirror (degree, in-array count,
/// start index, edge-log head — packed as 4+4+8+4 rounded to 24).
pub const MIRROR_ENTRY_BYTES: usize = 24;

/// A plain-old-data copy of one vertex's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexEntry {
    /// Total number of edge records inserted for this vertex (edge array +
    /// edge log, tombstones included).
    pub degree: u32,
    /// Number of edge records currently stored in the edge array.
    pub in_array: u32,
    /// Slot index of this vertex's pivot element in the edge array, or
    /// [`NO_START`] if the vertex has not been placed yet.
    pub start: u64,
    /// Global edge-log entry index of this vertex's most recent logged edge,
    /// or [`NO_ELOG`].
    pub elog_head: u32,
}

impl Default for VertexEntry {
    fn default() -> Self {
        VertexEntry {
            degree: 0,
            in_array: 0,
            start: NO_START,
            elog_head: NO_ELOG,
        }
    }
}

#[derive(Debug)]
struct Cell {
    degree: AtomicU32,
    in_array: AtomicU32,
    start: AtomicU64,
    elog_head: AtomicU32,
}

impl Cell {
    fn new(e: VertexEntry) -> Self {
        Cell {
            degree: AtomicU32::new(e.degree),
            in_array: AtomicU32::new(e.in_array),
            start: AtomicU64::new(e.start),
            elog_head: AtomicU32::new(e.elog_head),
        }
    }

    fn load(&self) -> VertexEntry {
        VertexEntry {
            degree: self.degree.load(Ordering::Acquire),
            in_array: self.in_array.load(Ordering::Acquire),
            start: self.start.load(Ordering::Acquire),
            elog_head: self.elog_head.load(Ordering::Acquire),
        }
    }

    fn store(&self, e: VertexEntry) {
        self.degree.store(e.degree, Ordering::Release);
        self.in_array.store(e.in_array, Ordering::Release);
        self.start.store(e.start, Ordering::Release);
        self.elog_head.store(e.elog_head, Ordering::Release);
    }
}

/// Optional PM write-through mirror used by the data-placement ablation.
struct Mirror {
    pool: Arc<PmemPool>,
    /// Offset of entry 0; entries are laid out contiguously.
    base: PmemOffset,
    /// Number of entries the mirror region can hold.
    capacity: usize,
}

impl Mirror {
    fn write_entry(&self, v: usize, e: VertexEntry) {
        if v >= self.capacity {
            // The mirror is a cost model for the ablation; vertices beyond
            // the pre-allocated range simply stop being mirrored rather than
            // forcing a reallocation in the middle of an insert.
            return;
        }
        let off = self.base + (v * MIRROR_ENTRY_BYTES) as u64;
        let mut buf = [0u8; MIRROR_ENTRY_BYTES];
        buf[0..4].copy_from_slice(&e.degree.to_le_bytes());
        buf[4..8].copy_from_slice(&e.in_array.to_le_bytes());
        buf[8..16].copy_from_slice(&e.start.to_le_bytes());
        buf[16..20].copy_from_slice(&e.elog_head.to_le_bytes());
        self.pool.write(off, &buf);
        self.pool.persist(off, MIRROR_ENTRY_BYTES);
    }
}

/// The DRAM vertex array (with optional PM write-through mirror).
pub struct VertexArray {
    cells: RwLock<Vec<Cell>>,
    mirror: Option<Mirror>,
}

impl VertexArray {
    /// Create an array pre-sized for `capacity` vertices, all unplaced.
    pub fn new(capacity: usize) -> Self {
        VertexArray {
            cells: RwLock::new(
                (0..capacity)
                    .map(|_| Cell::new(VertexEntry::default()))
                    .collect(),
            ),
            mirror: None,
        }
    }

    /// Create an array whose updates are additionally written through to a
    /// PM region of `capacity` entries starting at `base` (the
    /// data-placement ablation).
    pub fn new_mirrored(capacity: usize, pool: Arc<PmemPool>, base: PmemOffset) -> Self {
        let mut a = VertexArray::new(capacity);
        a.mirror = Some(Mirror {
            pool,
            base,
            capacity,
        });
        a
    }

    /// Number of vertices the array currently covers.
    pub fn len(&self) -> usize {
        self.cells.read().len()
    }

    /// `true` when no vertices are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grow the array (if needed) so that vertex `v` is addressable.
    pub fn ensure(&self, v: VertexId) {
        let needed = v as usize + 1;
        if self.cells.read().len() >= needed {
            return;
        }
        let mut cells = self.cells.write();
        while cells.len() < needed {
            cells.push(Cell::new(VertexEntry::default()));
        }
    }

    /// Read one vertex's metadata.  Returns the default entry for vertices
    /// beyond the current length.
    pub fn entry(&self, v: VertexId) -> VertexEntry {
        self.cells
            .read()
            .get(v as usize)
            .map_or_else(VertexEntry::default, Cell::load)
    }

    /// Overwrite one vertex's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `v` has not been covered by [`VertexArray::ensure`].
    pub fn set(&self, v: VertexId, e: VertexEntry) {
        let cells = self.cells.read();
        cells[v as usize].store(e);
        drop(cells);
        if let Some(m) = &self.mirror {
            m.write_entry(v as usize, e);
        }
    }

    /// Apply `f` to a copy of the entry and store the result back
    /// (read-modify-write under the caller's external locking).
    pub fn update(&self, v: VertexId, f: impl FnOnce(&mut VertexEntry)) -> VertexEntry {
        let cells = self.cells.read();
        let cell = &cells[v as usize];
        let mut e = cell.load();
        f(&mut e);
        cell.store(e);
        drop(cells);
        if let Some(m) = &self.mirror {
            m.write_entry(v as usize, e);
        }
        e
    }

    /// Degree of `v` (0 for unknown vertices).
    pub fn degree(&self, v: VertexId) -> u32 {
        self.cells
            .read()
            .get(v as usize)
            .map_or(0, |c| c.degree.load(Ordering::Acquire))
    }

    /// Copy every vertex's degree — the per-task *Degree Cache* snapshot the
    /// paper allocates in `g.consistent_view()`.
    pub fn snapshot_degrees(&self) -> Vec<u32> {
        let cells = self.cells.read();
        cells
            .iter()
            .map(|c| c.degree.load(Ordering::Acquire))
            .collect()
    }

    /// Copy out every entry (used by graceful shutdown and by rebalancing).
    pub fn snapshot_entries(&self) -> Vec<VertexEntry> {
        let cells = self.cells.read();
        cells.iter().map(Cell::load).collect()
    }

    /// Replace the whole array contents (used by crash recovery and by
    /// loading a graceful-shutdown backup).
    pub fn load_entries(&self, entries: &[VertexEntry]) {
        let mut cells = self.cells.write();
        cells.clear();
        cells.extend(entries.iter().copied().map(Cell::new));
        drop(cells);
        if let Some(m) = &self.mirror {
            for (i, e) in entries.iter().enumerate() {
                m.write_entry(i, *e);
            }
        }
    }
}

impl std::fmt::Debug for VertexArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VertexArray")
            .field("len", &self.len())
            .field("mirrored", &self.mirror.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    #[test]
    fn default_entries_are_unplaced() {
        let a = VertexArray::new(4);
        assert_eq!(a.len(), 4);
        let e = a.entry(2);
        assert_eq!(e.degree, 0);
        assert_eq!(e.start, NO_START);
        assert_eq!(e.elog_head, NO_ELOG);
    }

    #[test]
    fn ensure_grows_on_demand() {
        let a = VertexArray::new(2);
        a.ensure(10);
        assert_eq!(a.len(), 11);
        a.ensure(3); // shrinking request is a no-op
        assert_eq!(a.len(), 11);
        assert_eq!(a.entry(10), VertexEntry::default());
    }

    #[test]
    fn set_and_update_roundtrip() {
        let a = VertexArray::new(4);
        a.set(
            1,
            VertexEntry {
                degree: 3,
                in_array: 2,
                start: 100,
                elog_head: 7,
            },
        );
        assert_eq!(a.degree(1), 3);
        let e = a.update(1, |e| {
            e.degree += 1;
            e.elog_head = NO_ELOG;
        });
        assert_eq!(e.degree, 4);
        assert_eq!(a.entry(1).degree, 4);
        assert_eq!(a.entry(1).elog_head, NO_ELOG);
        assert_eq!(a.entry(1).start, 100);
    }

    #[test]
    fn out_of_range_reads_are_default() {
        let a = VertexArray::new(1);
        assert_eq!(a.degree(50), 0);
        assert_eq!(a.entry(50), VertexEntry::default());
    }

    #[test]
    fn degree_snapshot_is_a_copy() {
        let a = VertexArray::new(3);
        a.set(
            0,
            VertexEntry {
                degree: 5,
                ..VertexEntry::default()
            },
        );
        let snap = a.snapshot_degrees();
        a.update(0, |e| e.degree = 99);
        assert_eq!(snap, vec![5, 0, 0]);
        assert_eq!(a.degree(0), 99);
    }

    #[test]
    fn entries_roundtrip_through_backup() {
        let a = VertexArray::new(2);
        a.set(
            0,
            VertexEntry {
                degree: 1,
                in_array: 1,
                start: 8,
                elog_head: NO_ELOG,
            },
        );
        a.set(
            1,
            VertexEntry {
                degree: 2,
                in_array: 0,
                start: 16,
                elog_head: 3,
            },
        );
        let snap = a.snapshot_entries();
        let b = VertexArray::new(0);
        b.load_entries(&snap);
        assert_eq!(b.len(), 2);
        assert_eq!(b.entry(0), snap[0]);
        assert_eq!(b.entry(1), snap[1]);
    }

    #[test]
    fn mirrored_array_writes_to_pm() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let base = pool.alloc(4 * MIRROR_ENTRY_BYTES, 64).unwrap();
        let a = VertexArray::new_mirrored(4, Arc::clone(&pool), base);
        let before = pool.stats_snapshot();
        a.set(
            2,
            VertexEntry {
                degree: 9,
                in_array: 4,
                start: 77,
                elog_head: 1,
            },
        );
        let d = pool.stats_snapshot().delta_since(&before);
        assert!(d.logical_bytes_written >= MIRROR_ENTRY_BYTES as u64);
        assert!(d.flushes > 0, "mirror updates must be persisted");
        // The mirrored bytes land at the vertex's fixed location.
        let off = base + 2 * MIRROR_ENTRY_BYTES as u64;
        assert_eq!(pool.read_u32(off), 9);
        assert_eq!(pool.read_u64(off + 8), 77);
    }

    #[test]
    fn mirror_ignores_vertices_beyond_capacity() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let base = pool.alloc(2 * MIRROR_ENTRY_BYTES, 64).unwrap();
        let a = VertexArray::new_mirrored(2, Arc::clone(&pool), base);
        a.ensure(10);
        // Must not panic or write out of bounds.
        a.set(
            9,
            VertexEntry {
                degree: 1,
                ..VertexEntry::default()
            },
        );
        assert_eq!(a.degree(9), 1);
    }

    #[test]
    fn concurrent_updates_to_distinct_vertices() {
        let a = Arc::new(VertexArray::new(64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    a.update(t * 8, |e| e.degree += 1);
                    let _ = a.entry((i % 64) as u64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u64 {
            assert_eq!(a.degree(t * 8), 100);
        }
    }
}
