//! Process-global telemetry handles for DGAP's hot structural paths.
//!
//! Capture and recovery have no natural owner instance (any `Dgap` in the
//! process exercises them, and recovery runs before any service exists), so
//! their timings go to [`obs::global()`].  Handles are resolved once per
//! metric through a `OnceLock` — the recording paths never touch the
//! registry lock.

use obs::Histogram;
use std::sync::{Arc, OnceLock};

macro_rules! global_histogram {
    ($(#[$doc:meta])* $fn_name:ident, $metric:literal) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<Histogram> {
            static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
            HANDLE.get_or_init(|| obs::global().histogram($metric))
        }
    };
}

global_histogram!(
    /// Wall time of each `FrozenView::capture` (snapshot materialisation).
    capture_nanos,
    "dgap_capture_nanos"
);
global_histogram!(
    /// Wall time of the graceful-shutdown backup load on restart.
    recovery_backup_load_nanos,
    "dgap_recovery_backup_load_nanos"
);
global_histogram!(
    /// Wall time of the undo-log rollback phase of crash recovery.
    recovery_ulog_nanos,
    "dgap_recovery_ulog_nanos"
);
global_histogram!(
    /// Wall time of the edge-array rebuild scan (crash recovery pass 1).
    recovery_rebuild_scan_nanos,
    "dgap_recovery_rebuild_scan_nanos"
);
global_histogram!(
    /// Wall time of the edge-log scan (crash recovery pass 2).
    recovery_elog_scan_nanos,
    "dgap_recovery_elog_scan_nanos"
);
