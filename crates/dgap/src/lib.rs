//! # dgap — Dynamic Graph Analysis on Persistent memory
//!
//! A Rust reproduction of **DGAP** (Islam & Dai, SC 2023): a dynamic-graph
//! framework that serves both graph updates and graph analysis from a single
//! mutable CSR structure kept on (emulated) persistent memory.
//!
//! The crate provides:
//!
//! * [`Dgap`] — the framework itself, with concurrent writers, consistent
//!   analysis snapshots ([`DgapSnapshot`]), graceful shutdown and crash
//!   recovery;
//! * the three PM-specific designs the paper introduces: per-section edge
//!   logs ([`elog`]), per-thread undo logs ([`ulog`]) and the DRAM data
//!   placement of hot metadata ([`vertex`]);
//! * the ablation variants of Table 5 ([`DgapVariant`]);
//! * the system-agnostic traits every comparison baseline also implements
//!   ([`DynamicGraph`], [`GraphView`], [`SnapshotSource`]).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use pmem::{PmemPool, PmemConfig};
//! use dgap::{Dgap, DgapConfig, DynamicGraph, GraphView};
//!
//! let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
//! let graph = Dgap::create(pool, DgapConfig::small_test()).unwrap();
//!
//! graph.insert_edge(0, 1).unwrap();
//! graph.insert_edge(0, 2).unwrap();
//! graph.insert_edge(1, 2).unwrap();
//!
//! let view = graph.consistent_view();       // degree-cache snapshot
//! assert_eq!(view.neighbors(0), vec![1, 2]);
//! assert_eq!(view.degree(1), 1);
//! ```

#![warn(missing_docs)]

pub mod chunks;
pub mod config;
pub mod edges;
pub mod elog;
pub mod graph;
pub mod integrity;
pub mod meta;
pub mod recovery;
pub mod slot;
pub mod telemetry;
pub mod traits;
pub mod ulog;
pub mod variants;
pub mod vertex;

pub use config::{DgapConfig, Placement};
pub use graph::{Dgap, DgapSnapshot, DgapStats, DgapStatsSnapshot};
pub use integrity::{CoveredRegion, RegionReport, RegionState, VerifyReport};
pub use recovery::{RecoveredState, RecoveryKind};
pub use slot::Slot;
pub use traits::{
    CsrView, DynamicGraph, FrozenView, GraphError, GraphResult, GraphView, OwnedSnapshotSource,
    ReferenceGraph, SnapshotSource, Update, VertexId,
};
pub use variants::DgapVariant;
