//! The DGAP superblock and layout block on persistent memory.
//!
//! The superblock is DGAP's equivalent of a PMDK root object: a small,
//! fixed-layout record found through [`pmem::RootId::Superblock`] that lets
//! a restarted (or crash-recovered) instance locate every other persistent
//! region.  It also holds the paper's `NORMAL_SHUTDOWN` flag.
//!
//! The *layout block* describes the current generation of the edge array
//! (base offset, number of sections) and the edge-log region.  Resizes build
//! a complete new generation, persist a fresh layout block and then publish
//! it with a single 8-byte (atomic) store of its offset into the superblock,
//! so a crash during a resize always leaves a fully consistent generation
//! reachable.

use pmem::{crc32c, PmemOffset, PmemPool, Result as PmemResult, RootId};
use std::sync::Arc;

/// Superblock field offsets (bytes, all fields `u64`).
mod sb {
    pub const NORMAL_SHUTDOWN: u64 = 0;
    pub const NUM_VERTICES: u64 = 8;
    pub const LAYOUT_BLOCK: u64 = 16;
    pub const BACKUP_OFF: u64 = 24;
    pub const BACKUP_LEN: u64 = 32;
    pub const ULOG_TABLE: u64 = 40;
    pub const NUM_ULOGS: u64 = 48;
    pub const ULOG_CAPACITY: u64 = 56;
    pub const ULOG_CHUNK: u64 = 64;
    pub const SEGMENT_SIZE: u64 = 72;
    pub const ELOG_SIZE: u64 = 80;
    /// CRC32C of the graceful-shutdown backup blob (sealed by `shutdown`).
    pub const BACKUP_CRC: u64 = 88;
    /// Offset of the per-section CRC table (sealed by `shutdown`).
    pub const SECT_CRC_OFF: u64 = 96;
    /// Length of the per-section CRC table in bytes.
    pub const SECT_CRC_LEN: u64 = 104;
    /// CRC32C of superblock bytes `0..CRC`, re-sealed on every field write.
    pub const CRC: u64 = 112;
    pub const SIZE: u64 = 128;
}

/// Layout-block field offsets.
mod lb {
    pub const EDGE_BASE: u64 = 0;
    pub const NUM_SEGMENTS: u64 = 8;
    pub const ELOG_BASE: u64 = 16;
    /// CRC32C of bytes `0..CRC`; layout blocks are write-once, so this is
    /// sealed at publish time and never touched again.
    pub const CRC: u64 = 24;
    pub const SIZE: u64 = 32;
}

/// A decoded layout block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Base offset of the edge array.
    pub edge_base: PmemOffset,
    /// Number of sections in the edge array.
    pub num_segments: usize,
    /// Base offset of the per-section edge-log region.
    pub elog_base: PmemOffset,
}

/// Handle to the superblock of one DGAP instance.
#[derive(Debug, Clone)]
pub struct Superblock {
    off: PmemOffset,
    /// Serialises field writes so the CRC re-seal always covers a
    /// consistent snapshot (writer threads update `NUM_VERTICES`
    /// concurrently with shutdown/backup bookkeeping).  Shared by clones
    /// of the same handle.
    lock: Arc<parking_lot::Mutex<()>>,
}

impl Superblock {
    /// Allocate and initialise a fresh superblock, registering it under
    /// [`RootId::Superblock`].
    pub fn create(pool: &PmemPool) -> PmemResult<Self> {
        let off = pool.alloc_zeroed(sb::SIZE as usize, 64)?;
        let this = Superblock {
            off,
            lock: Arc::new(parking_lot::Mutex::new(())),
        };
        pool.write_u64(off + sb::CRC, u64::from(this.compute_crc(pool)));
        pool.persist(off, sb::SIZE as usize);
        pool.set_root(RootId::Superblock, off)?;
        Ok(this)
    }

    /// Locate the superblock of a previously initialised pool.
    pub fn open(pool: &PmemPool) -> PmemResult<Self> {
        let off = pool.root(RootId::Superblock)?;
        Ok(Superblock {
            off,
            lock: Arc::new(parking_lot::Mutex::new(())),
        })
    }

    /// Byte offset of the superblock inside its pool (carried by
    /// integrity errors).
    pub fn offset(&self) -> PmemOffset {
        self.off
    }

    /// The superblock's region as `(offset, len)` — the CRC-covered area
    /// the integrity pass and the fault injector both target.
    pub fn region(&self) -> (PmemOffset, u64) {
        (self.off, sb::SIZE)
    }

    /// The currently published layout block's region, if any.
    pub fn layout_block(&self, pool: &PmemPool) -> Option<(PmemOffset, u64)> {
        let block = self.get(pool, sb::LAYOUT_BLOCK);
        (block != 0).then_some((block, lb::SIZE))
    }

    /// CRC32C over every field except the CRC slot itself.
    fn compute_crc(&self, pool: &PmemPool) -> u32 {
        crc32c(&pool.read_vec(self.off, sb::CRC as usize))
    }

    /// Check the superblock against its stored CRC.  Returns the failing
    /// detail on mismatch.
    pub fn verify(&self, pool: &PmemPool) -> Result<(), String> {
        let _g = self.lock.lock();
        let stored = self.get(pool, sb::CRC) as u32;
        let actual = self.compute_crc(pool);
        if stored != actual {
            return Err(format!(
                "superblock crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
            ));
        }
        Ok(())
    }

    fn get(&self, pool: &PmemPool, field: u64) -> u64 {
        pool.read_u64(self.off + field)
    }

    /// Write one field and re-seal the superblock CRC, flushing both before
    /// a single fence: a crash persists the field and its checksum together
    /// or not at all.
    fn set(&self, pool: &PmemPool, field: u64, value: u64) {
        let _g = self.lock.lock();
        pool.write_u64(self.off + field, value);
        pool.write_u64(self.off + sb::CRC, u64::from(self.compute_crc(pool)));
        pool.flush(self.off + field, 8);
        pool.flush(self.off + sb::CRC, 8);
        pool.fence();
    }

    /// Whether the previous session shut down gracefully.
    pub fn normal_shutdown(&self, pool: &PmemPool) -> bool {
        self.get(pool, sb::NORMAL_SHUTDOWN) == 1
    }

    /// Record whether the current state reflects a graceful shutdown.
    pub fn set_normal_shutdown(&self, pool: &PmemPool, value: bool) {
        self.set(pool, sb::NORMAL_SHUTDOWN, u64::from(value));
    }

    /// Number of vertices the instance had grown to.
    pub fn num_vertices(&self, pool: &PmemPool) -> usize {
        self.get(pool, sb::NUM_VERTICES) as usize
    }

    /// Persist the vertex count (updated on growth and shutdown).
    pub fn set_num_vertices(&self, pool: &PmemPool, n: usize) {
        self.set(pool, sb::NUM_VERTICES, n as u64);
    }

    /// The static configuration recorded at creation time.
    pub fn config(&self, pool: &PmemPool) -> (usize, usize) {
        (
            self.get(pool, sb::SEGMENT_SIZE) as usize,
            self.get(pool, sb::ELOG_SIZE) as usize,
        )
    }

    /// Record the static configuration (segment size, elog size).
    pub fn set_config(&self, pool: &PmemPool, segment_size: usize, elog_size: usize) {
        self.set(pool, sb::SEGMENT_SIZE, segment_size as u64);
        self.set(pool, sb::ELOG_SIZE, elog_size as u64);
    }

    /// Publish a new layout block (atomic 8-byte store of its offset).
    pub fn publish_layout(&self, pool: &PmemPool, layout: Layout) -> PmemResult<()> {
        let block = pool.alloc_zeroed(lb::SIZE as usize, 64)?;
        pool.write_u64(block + lb::EDGE_BASE, layout.edge_base);
        pool.write_u64(block + lb::NUM_SEGMENTS, layout.num_segments as u64);
        pool.write_u64(block + lb::ELOG_BASE, layout.elog_base);
        let crc = crc32c(&pool.read_vec(block, lb::CRC as usize));
        pool.write_u64(block + lb::CRC, u64::from(crc));
        pool.persist(block, lb::SIZE as usize);
        // Single atomic pointer switch: the new generation becomes visible
        // only after its contents are durable.
        self.set(pool, sb::LAYOUT_BLOCK, block);
        Ok(())
    }

    /// Check the currently published layout block against its sealed CRC.
    /// Returns the block offset and failing detail on mismatch; `Ok` when
    /// no layout has been published yet.
    pub fn verify_layout(&self, pool: &PmemPool) -> Result<(), (PmemOffset, String)> {
        let block = self.get(pool, sb::LAYOUT_BLOCK);
        if block == 0 {
            return Ok(());
        }
        // A corrupt superblock can hold a garbage pointer; never chase it
        // past the pool (the superblock's own CRC reports the damage, this
        // keeps the verify pass from faulting before it gets there).
        if block
            .checked_add(lb::SIZE)
            .is_none_or(|end| end > pool.capacity() as u64)
        {
            return Err((
                block,
                format!(
                    "layout block pointer {block:#x} out of bounds (pool capacity {})",
                    pool.capacity()
                ),
            ));
        }
        let stored = pool.read_u64(block + lb::CRC) as u32;
        let actual = crc32c(&pool.read_vec(block, lb::CRC as usize));
        if stored != actual {
            return Err((
                block,
                format!(
                    "layout block crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
                ),
            ));
        }
        Ok(())
    }

    /// Read the currently published layout, if any.
    pub fn layout(&self, pool: &PmemPool) -> Option<Layout> {
        let block = self.get(pool, sb::LAYOUT_BLOCK);
        if block == 0 {
            return None;
        }
        Some(Layout {
            edge_base: pool.read_u64(block + lb::EDGE_BASE),
            num_segments: pool.read_u64(block + lb::NUM_SEGMENTS) as usize,
            elog_base: pool.read_u64(block + lb::ELOG_BASE),
        })
    }

    /// Record the per-thread undo-log table: `offsets[i]` is writer thread
    /// `i`'s region.
    pub fn set_ulogs(
        &self,
        pool: &PmemPool,
        offsets: &[PmemOffset],
        capacity: usize,
        chunk: usize,
    ) -> PmemResult<()> {
        let table = pool.alloc_zeroed(offsets.len().max(1) * 8, 64)?;
        pool.write_u64_slice(table, offsets);
        pool.persist(table, offsets.len() * 8);
        self.set(pool, sb::ULOG_TABLE, table);
        self.set(pool, sb::NUM_ULOGS, offsets.len() as u64);
        self.set(pool, sb::ULOG_CAPACITY, capacity as u64);
        self.set(pool, sb::ULOG_CHUNK, chunk as u64);
        Ok(())
    }

    /// Read back the undo-log table: `(offsets, capacity, chunk)`.
    pub fn ulogs(&self, pool: &PmemPool) -> (Vec<PmemOffset>, usize, usize) {
        let n = self.get(pool, sb::NUM_ULOGS) as usize;
        let table = self.get(pool, sb::ULOG_TABLE);
        let mut offsets = vec![0u64; n];
        if n > 0 && table != 0 {
            pool.read_u64_slice(table, &mut offsets);
        }
        (
            offsets,
            self.get(pool, sb::ULOG_CAPACITY) as usize,
            self.get(pool, sb::ULOG_CHUNK) as usize,
        )
    }

    /// Record the graceful-shutdown metadata backup region.
    pub fn set_backup(&self, pool: &PmemPool, off: PmemOffset, len: usize) {
        self.set(pool, sb::BACKUP_OFF, off);
        self.set(pool, sb::BACKUP_LEN, len as u64);
    }

    /// Read the graceful-shutdown metadata backup region, if one was written.
    pub fn backup(&self, pool: &PmemPool) -> Option<(PmemOffset, usize)> {
        let off = self.get(pool, sb::BACKUP_OFF);
        let len = self.get(pool, sb::BACKUP_LEN) as usize;
        if off == 0 || len == 0 {
            None
        } else {
            Some((off, len))
        }
    }

    /// Record the CRC32C of the metadata backup blob.
    pub fn set_backup_crc(&self, pool: &PmemPool, crc: u32) {
        self.set(pool, sb::BACKUP_CRC, u64::from(crc));
    }

    /// The recorded CRC32C of the metadata backup blob.
    pub fn backup_crc(&self, pool: &PmemPool) -> u32 {
        self.get(pool, sb::BACKUP_CRC) as u32
    }

    /// Record the per-section CRC table sealed at graceful shutdown.
    pub fn set_section_crcs(&self, pool: &PmemPool, off: PmemOffset, len: usize) {
        self.set(pool, sb::SECT_CRC_OFF, off);
        self.set(pool, sb::SECT_CRC_LEN, len as u64);
    }

    /// The per-section CRC table region, if one was sealed.
    pub fn section_crcs(&self, pool: &PmemPool) -> Option<(PmemOffset, usize)> {
        let off = self.get(pool, sb::SECT_CRC_OFF);
        let len = self.get(pool, sb::SECT_CRC_LEN) as usize;
        if off == 0 || len == 0 {
            None
        } else {
            Some((off, len))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    #[test]
    fn create_and_reopen() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        s.set_num_vertices(&pool, 42);
        s.set_config(&pool, 512, 2048);
        s.set_normal_shutdown(&pool, true);
        let s2 = Superblock::open(&pool).unwrap();
        assert_eq!(s2.num_vertices(&pool), 42);
        assert_eq!(s2.config(&pool), (512, 2048));
        assert!(s2.normal_shutdown(&pool));
    }

    #[test]
    fn layout_publish_is_atomic_across_crash() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        assert!(s.layout(&pool).is_none());
        let l1 = Layout {
            edge_base: 4096,
            num_segments: 8,
            elog_base: 8192,
        };
        s.publish_layout(&pool, l1).unwrap();
        assert_eq!(s.layout(&pool), Some(l1));

        // A second generation that never gets published must not be visible
        // after a crash.
        let block = pool.alloc_zeroed(32, 64).unwrap();
        pool.write_u64(block, 999);
        // (not persisted, not published)
        pool.simulate_crash();
        assert_eq!(s.layout(&pool), Some(l1));
    }

    #[test]
    fn ulog_table_roundtrip() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        s.set_ulogs(&pool, &[100, 200, 300], 4096, 2048).unwrap();
        pool.simulate_crash();
        let (offs, cap, chunk) = s.ulogs(&pool);
        assert_eq!(offs, vec![100, 200, 300]);
        assert_eq!(cap, 4096);
        assert_eq!(chunk, 2048);
    }

    #[test]
    fn empty_ulog_table() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        let (offs, _, _) = s.ulogs(&pool);
        assert!(offs.is_empty());
    }

    #[test]
    fn backup_roundtrip() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        assert!(s.backup(&pool).is_none());
        s.set_backup(&pool, 12345, 678);
        assert_eq!(s.backup(&pool), Some((12345, 678)));
    }

    #[test]
    fn superblock_crc_stays_sealed_across_updates_and_crash() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        s.verify(&pool).unwrap();
        s.set_num_vertices(&pool, 17);
        s.set_config(&pool, 512, 2048);
        s.set_backup(&pool, 4096, 100);
        s.set_backup_crc(&pool, 0xdead_beef);
        s.set_section_crcs(&pool, 8192, 40);
        s.verify(&pool).unwrap();
        pool.simulate_crash();
        let s2 = Superblock::open(&pool).unwrap();
        s2.verify(&pool).unwrap();
        assert_eq!(s2.backup_crc(&pool), 0xdead_beef);
        assert_eq!(s2.section_crcs(&pool), Some((8192, 40)));
    }

    #[test]
    fn superblock_bit_flip_is_detected() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        s.set_num_vertices(&pool, 99);
        pool.inject_bit_flip(s.offset() + 8, 2);
        let err = s.verify(&pool).unwrap_err();
        assert!(err.contains("crc mismatch"), "{err}");
    }

    #[test]
    fn layout_crc_sealed_at_publish_and_flip_detected() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        s.verify_layout(&pool).unwrap(); // nothing published yet
        s.publish_layout(
            &pool,
            Layout {
                edge_base: 4096,
                num_segments: 4,
                elog_base: 8192,
            },
        )
        .unwrap();
        s.verify_layout(&pool).unwrap();
        let block = pool.read_u64(s.offset() + 16);
        pool.inject_bit_flip(block + 8, 0);
        let (bad_block, detail) = s.verify_layout(&pool).unwrap_err();
        assert_eq!(bad_block, block);
        assert!(detail.contains("crc mismatch"), "{detail}");
    }

    #[test]
    fn shutdown_flag_survives_crash_only_if_persisted() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        s.set_normal_shutdown(&pool, true);
        pool.simulate_crash();
        assert!(s.normal_shutdown(&pool));
        s.set_normal_shutdown(&pool, false);
        pool.simulate_crash();
        assert!(!s.normal_shutdown(&pool));
    }
}
