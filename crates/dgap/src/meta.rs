//! The DGAP superblock and layout block on persistent memory.
//!
//! The superblock is DGAP's equivalent of a PMDK root object: a small,
//! fixed-layout record found through [`pmem::RootId::Superblock`] that lets
//! a restarted (or crash-recovered) instance locate every other persistent
//! region.  It also holds the paper's `NORMAL_SHUTDOWN` flag.
//!
//! The *layout block* describes the current generation of the edge array
//! (base offset, number of sections) and the edge-log region.  Resizes build
//! a complete new generation, persist a fresh layout block and then publish
//! it with a single 8-byte (atomic) store of its offset into the superblock,
//! so a crash during a resize always leaves a fully consistent generation
//! reachable.

use pmem::{PmemOffset, PmemPool, Result as PmemResult, RootId};

/// Superblock field offsets (bytes, all fields `u64`).
mod sb {
    pub const NORMAL_SHUTDOWN: u64 = 0;
    pub const NUM_VERTICES: u64 = 8;
    pub const LAYOUT_BLOCK: u64 = 16;
    pub const BACKUP_OFF: u64 = 24;
    pub const BACKUP_LEN: u64 = 32;
    pub const ULOG_TABLE: u64 = 40;
    pub const NUM_ULOGS: u64 = 48;
    pub const ULOG_CAPACITY: u64 = 56;
    pub const ULOG_CHUNK: u64 = 64;
    pub const SEGMENT_SIZE: u64 = 72;
    pub const ELOG_SIZE: u64 = 80;
    pub const SIZE: u64 = 96;
}

/// Layout-block field offsets.
mod lb {
    pub const EDGE_BASE: u64 = 0;
    pub const NUM_SEGMENTS: u64 = 8;
    pub const ELOG_BASE: u64 = 16;
    pub const SIZE: u64 = 32;
}

/// A decoded layout block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Base offset of the edge array.
    pub edge_base: PmemOffset,
    /// Number of sections in the edge array.
    pub num_segments: usize,
    /// Base offset of the per-section edge-log region.
    pub elog_base: PmemOffset,
}

/// Handle to the superblock of one DGAP instance.
#[derive(Debug, Clone)]
pub struct Superblock {
    off: PmemOffset,
}

impl Superblock {
    /// Allocate and initialise a fresh superblock, registering it under
    /// [`RootId::Superblock`].
    pub fn create(pool: &PmemPool) -> PmemResult<Self> {
        let off = pool.alloc_zeroed(sb::SIZE as usize, 64)?;
        pool.persist(off, sb::SIZE as usize);
        pool.set_root(RootId::Superblock, off)?;
        Ok(Superblock { off })
    }

    /// Locate the superblock of a previously initialised pool.
    pub fn open(pool: &PmemPool) -> PmemResult<Self> {
        let off = pool.root(RootId::Superblock)?;
        Ok(Superblock { off })
    }

    fn get(&self, pool: &PmemPool, field: u64) -> u64 {
        pool.read_u64(self.off + field)
    }

    fn set(&self, pool: &PmemPool, field: u64, value: u64) {
        pool.write_u64(self.off + field, value);
        pool.persist(self.off + field, 8);
    }

    /// Whether the previous session shut down gracefully.
    pub fn normal_shutdown(&self, pool: &PmemPool) -> bool {
        self.get(pool, sb::NORMAL_SHUTDOWN) == 1
    }

    /// Record whether the current state reflects a graceful shutdown.
    pub fn set_normal_shutdown(&self, pool: &PmemPool, value: bool) {
        self.set(pool, sb::NORMAL_SHUTDOWN, u64::from(value));
    }

    /// Number of vertices the instance had grown to.
    pub fn num_vertices(&self, pool: &PmemPool) -> usize {
        self.get(pool, sb::NUM_VERTICES) as usize
    }

    /// Persist the vertex count (updated on growth and shutdown).
    pub fn set_num_vertices(&self, pool: &PmemPool, n: usize) {
        self.set(pool, sb::NUM_VERTICES, n as u64);
    }

    /// The static configuration recorded at creation time.
    pub fn config(&self, pool: &PmemPool) -> (usize, usize) {
        (
            self.get(pool, sb::SEGMENT_SIZE) as usize,
            self.get(pool, sb::ELOG_SIZE) as usize,
        )
    }

    /// Record the static configuration (segment size, elog size).
    pub fn set_config(&self, pool: &PmemPool, segment_size: usize, elog_size: usize) {
        self.set(pool, sb::SEGMENT_SIZE, segment_size as u64);
        self.set(pool, sb::ELOG_SIZE, elog_size as u64);
    }

    /// Publish a new layout block (atomic 8-byte store of its offset).
    pub fn publish_layout(&self, pool: &PmemPool, layout: Layout) -> PmemResult<()> {
        let block = pool.alloc_zeroed(lb::SIZE as usize, 64)?;
        pool.write_u64(block + lb::EDGE_BASE, layout.edge_base);
        pool.write_u64(block + lb::NUM_SEGMENTS, layout.num_segments as u64);
        pool.write_u64(block + lb::ELOG_BASE, layout.elog_base);
        pool.persist(block, lb::SIZE as usize);
        // Single atomic pointer switch: the new generation becomes visible
        // only after its contents are durable.
        self.set(pool, sb::LAYOUT_BLOCK, block);
        Ok(())
    }

    /// Read the currently published layout, if any.
    pub fn layout(&self, pool: &PmemPool) -> Option<Layout> {
        let block = self.get(pool, sb::LAYOUT_BLOCK);
        if block == 0 {
            return None;
        }
        Some(Layout {
            edge_base: pool.read_u64(block + lb::EDGE_BASE),
            num_segments: pool.read_u64(block + lb::NUM_SEGMENTS) as usize,
            elog_base: pool.read_u64(block + lb::ELOG_BASE),
        })
    }

    /// Record the per-thread undo-log table: `offsets[i]` is writer thread
    /// `i`'s region.
    pub fn set_ulogs(
        &self,
        pool: &PmemPool,
        offsets: &[PmemOffset],
        capacity: usize,
        chunk: usize,
    ) -> PmemResult<()> {
        let table = pool.alloc_zeroed(offsets.len().max(1) * 8, 64)?;
        pool.write_u64_slice(table, offsets);
        pool.persist(table, offsets.len() * 8);
        self.set(pool, sb::ULOG_TABLE, table);
        self.set(pool, sb::NUM_ULOGS, offsets.len() as u64);
        self.set(pool, sb::ULOG_CAPACITY, capacity as u64);
        self.set(pool, sb::ULOG_CHUNK, chunk as u64);
        Ok(())
    }

    /// Read back the undo-log table: `(offsets, capacity, chunk)`.
    pub fn ulogs(&self, pool: &PmemPool) -> (Vec<PmemOffset>, usize, usize) {
        let n = self.get(pool, sb::NUM_ULOGS) as usize;
        let table = self.get(pool, sb::ULOG_TABLE);
        let mut offsets = vec![0u64; n];
        if n > 0 && table != 0 {
            pool.read_u64_slice(table, &mut offsets);
        }
        (
            offsets,
            self.get(pool, sb::ULOG_CAPACITY) as usize,
            self.get(pool, sb::ULOG_CHUNK) as usize,
        )
    }

    /// Record the graceful-shutdown metadata backup region.
    pub fn set_backup(&self, pool: &PmemPool, off: PmemOffset, len: usize) {
        self.set(pool, sb::BACKUP_OFF, off);
        self.set(pool, sb::BACKUP_LEN, len as u64);
    }

    /// Read the graceful-shutdown metadata backup region, if one was written.
    pub fn backup(&self, pool: &PmemPool) -> Option<(PmemOffset, usize)> {
        let off = self.get(pool, sb::BACKUP_OFF);
        let len = self.get(pool, sb::BACKUP_LEN) as usize;
        if off == 0 || len == 0 {
            None
        } else {
            Some((off, len))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    #[test]
    fn create_and_reopen() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        s.set_num_vertices(&pool, 42);
        s.set_config(&pool, 512, 2048);
        s.set_normal_shutdown(&pool, true);
        let s2 = Superblock::open(&pool).unwrap();
        assert_eq!(s2.num_vertices(&pool), 42);
        assert_eq!(s2.config(&pool), (512, 2048));
        assert!(s2.normal_shutdown(&pool));
    }

    #[test]
    fn layout_publish_is_atomic_across_crash() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        assert!(s.layout(&pool).is_none());
        let l1 = Layout {
            edge_base: 4096,
            num_segments: 8,
            elog_base: 8192,
        };
        s.publish_layout(&pool, l1).unwrap();
        assert_eq!(s.layout(&pool), Some(l1));

        // A second generation that never gets published must not be visible
        // after a crash.
        let block = pool.alloc_zeroed(32, 64).unwrap();
        pool.write_u64(block, 999);
        // (not persisted, not published)
        pool.simulate_crash();
        assert_eq!(s.layout(&pool), Some(l1));
    }

    #[test]
    fn ulog_table_roundtrip() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        s.set_ulogs(&pool, &[100, 200, 300], 4096, 2048).unwrap();
        pool.simulate_crash();
        let (offs, cap, chunk) = s.ulogs(&pool);
        assert_eq!(offs, vec![100, 200, 300]);
        assert_eq!(cap, 4096);
        assert_eq!(chunk, 2048);
    }

    #[test]
    fn empty_ulog_table() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        let (offs, _, _) = s.ulogs(&pool);
        assert!(offs.is_empty());
    }

    #[test]
    fn backup_roundtrip() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        assert!(s.backup(&pool).is_none());
        s.set_backup(&pool, 12345, 678);
        assert_eq!(s.backup(&pool), Some((12345, 678)));
    }

    #[test]
    fn shutdown_flag_survives_crash_only_if_persisted() {
        let pool = PmemPool::new(PmemConfig::small_test());
        let s = Superblock::create(&pool).unwrap();
        s.set_normal_shutdown(&pool, true);
        pool.simulate_crash();
        assert!(s.normal_shutdown(&pool));
        s.set_normal_shutdown(&pool, false);
        pool.simulate_crash();
        assert!(!s.normal_shutdown(&pool));
    }
}
