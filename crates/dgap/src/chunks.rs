//! Shared plumbing for chunked parallel loops over index ranges.
//!
//! The parallel snapshot capture in this crate, the zero-dispatch `*_csr`
//! kernels in `analytics`, and the `sharded` crate's unified-CSR merge all
//! follow the same shape: split an index range into pool-sized chunks, run
//! plain loops inside each chunk, and write results into disjoint slices of
//! a shared output buffer.  This module holds the two pieces they share —
//! kept here, in the common dependency, so chunk sizing and the
//! disjoint-write pointer have exactly one definition.  Deliberately
//! independent of the `rayon` shim's internals (only its public
//! `current_num_threads` is consulted), so everything keeps working
//! unchanged if the shim is ever swapped for real rayon.

/// Split `[0, len)` into ranges sized for the current pool width: a few
/// chunks per worker so work stealing can balance skew, each chunk big
/// enough to amortise the fork.  Callers iterate the ranges on the pool —
/// one task per *chunk*, plain loops inside, no per-element dispatch.
pub fn ranges(len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = len.div_ceil(rayon::current_num_threads() * 4).max(256);
    (0..len)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(len)))
        .collect()
}

/// A `*mut` that crosses threads so parallel chunks can write into
/// disjoint slices of one output buffer.
///
/// The `Send`/`Sync` impls only move the *pointer value* between threads;
/// every dereference still requires `unsafe`, where the caller promises
/// the usual aliasing rules — in the chunked-loop pattern, that each index
/// is touched by exactly one task (chunks are disjoint and cover the
/// range).
pub struct SendPtr<T>(pub *mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer.
    #[inline]
    pub fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_the_input_exactly_once() {
        for len in [0usize, 1, 255, 256, 257, 10_000] {
            let rs = ranges(len);
            let mut next = 0usize;
            for (lo, hi) in rs {
                assert_eq!(lo, next, "len {len}");
                assert!(hi > lo);
                next = hi;
            }
            assert_eq!(next, len, "len {len}");
        }
    }

    #[test]
    fn disjoint_parallel_writes_through_send_ptr() {
        use rayon::prelude::*;
        let n = 10_000usize;
        let mut out = vec![0usize; n];
        let dst = SendPtr(out.as_mut_ptr());
        ranges(n).into_par_iter().for_each(|(lo, hi)| {
            for i in lo..hi {
                unsafe { *dst.get().add(i) = i * 2 };
            }
        });
        assert!(out.iter().enumerate().all(|(i, &x)| x == i * 2));
    }
}
