//! The persistent edge array: a section-structured slot region on PM.
//!
//! The edge array stores one 8-byte [`Slot`] per element: pivots, edges,
//! tombstones and gaps.  It is divided into fixed-size *sections* (the PMA
//! segments); each section has an associated per-section edge log
//! ([`crate::elog`]) and a DRAM lock.  The array itself is dumb on purpose:
//! all placement intelligence (density tracking, rebalance planning) lives
//! in the `pma` crate, and the [`crate::graph::Dgap`] orchestrator decides
//! when to move data.

use crate::slot::{Slot, SLOT_BYTES};
use pmem::{PmemOffset, PmemPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The section-structured slot region.
pub struct EdgeArray {
    pool: Arc<PmemPool>,
    base: AtomicU64,
    num_segments: AtomicU64,
    segment_size: usize,
}

impl EdgeArray {
    /// Allocate a fresh, zeroed (all-gaps) edge array.
    pub fn new(
        pool: Arc<PmemPool>,
        segment_size: usize,
        num_segments: usize,
    ) -> pmem::Result<Self> {
        let bytes = segment_size * num_segments * SLOT_BYTES;
        let base = pool.alloc(bytes, 64)?;
        pool.memset(base, 0, bytes);
        pool.persist(base, bytes);
        Ok(EdgeArray {
            pool,
            base: AtomicU64::new(base),
            num_segments: AtomicU64::new(num_segments as u64),
            segment_size,
        })
    }

    /// Re-attach to an existing region (pool re-open).
    pub fn attach(
        pool: Arc<PmemPool>,
        base: PmemOffset,
        segment_size: usize,
        num_segments: usize,
    ) -> Self {
        EdgeArray {
            pool,
            base: AtomicU64::new(base),
            num_segments: AtomicU64::new(num_segments as u64),
            segment_size,
        }
    }

    /// Pool this array lives in.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Offset of slot 0 (stored in the layout block).
    pub fn base_offset(&self) -> PmemOffset {
        self.base.load(Ordering::Acquire)
    }

    /// Number of slots per section.
    pub fn segment_size(&self) -> usize {
        self.segment_size
    }

    /// Number of sections.
    pub fn num_segments(&self) -> usize {
        self.num_segments.load(Ordering::Acquire) as usize
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.num_segments() * self.segment_size
    }

    /// Section containing slot `idx`.
    pub fn section_of(&self, idx: u64) -> usize {
        (idx as usize) / self.segment_size
    }

    /// Slot range `[start, end)` of `section`.
    pub fn section_slots(&self, section: usize) -> std::ops::Range<u64> {
        let start = (section * self.segment_size) as u64;
        start..start + self.segment_size as u64
    }

    /// PM offset of slot `idx`.
    pub fn slot_offset(&self, idx: u64) -> PmemOffset {
        self.base_offset() + idx * SLOT_BYTES as u64
    }

    /// Read and decode one slot.
    pub fn read_slot(&self, idx: u64) -> Slot {
        Slot::decode(self.pool.read_u64(self.slot_offset(idx)))
    }

    /// Write one slot (not persisted — callers persist explicitly so they
    /// can batch).
    pub fn write_slot(&self, idx: u64, slot: Slot) {
        self.pool.write_u64(self.slot_offset(idx), slot.encode());
    }

    /// Write one slot and persist it (flush + fence).  This is the
    /// single-edge insert path: one 8-byte store, one flush, one fence.
    pub fn write_slot_persist(&self, idx: u64, slot: Slot) {
        let off = self.slot_offset(idx);
        self.pool.write_u64(off, slot.encode());
        self.pool.persist(off, SLOT_BYTES);
    }

    /// Read `n` raw slot words starting at `start`.
    pub fn read_raw(&self, start: u64, n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        self.pool.read_u64_slice(self.slot_offset(start), &mut out);
        out
    }

    /// Encode `slots` into bytes suitable for a bulk region overwrite.
    pub fn encode_raw(slots: &[u64]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(slots.len() * SLOT_BYTES);
        for s in slots {
            bytes.extend_from_slice(&s.to_le_bytes());
        }
        bytes
    }

    /// Bulk-write `slots` starting at slot index `start` and persist the
    /// range (used by initial layout and resize, where no undo protection is
    /// needed because the destination region is not yet live).
    pub fn write_raw_persist(&self, start: u64, slots: &[u64]) {
        if slots.is_empty() {
            return;
        }
        let off = self.slot_offset(start);
        let bytes = Self::encode_raw(slots);
        self.pool.write(off, &bytes);
        self.pool.persist(off, bytes.len());
    }

    /// Allocate a new, zeroed region of `new_num_segments` sections and
    /// return its base offset.  The caller fills it, publishes it via the
    /// layout block and then calls [`EdgeArray::switch_to`].
    pub fn allocate_grown(&self, new_num_segments: usize) -> pmem::Result<PmemOffset> {
        let bytes = self.segment_size * new_num_segments * SLOT_BYTES;
        let base = self.pool.alloc(bytes, 64)?;
        self.pool.memset(base, 0, bytes);
        self.pool.persist(base, bytes);
        Ok(base)
    }

    /// Point this array at a new region (after a resize has been published).
    pub fn switch_to(&self, base: PmemOffset, num_segments: usize) {
        self.base.store(base, Ordering::Release);
        self.num_segments
            .store(num_segments as u64, Ordering::Release);
    }

    /// Scan the whole array, invoking `f(slot_index, slot)` for every
    /// occupied slot.  Used by crash recovery and by resize gathering.
    pub fn scan(&self, f: impl FnMut(u64, Slot)) {
        let cap = self.capacity();
        self.scan_segments(0..self.num_segments(), f);
        debug_assert_eq!(cap, self.capacity());
    }

    /// Scan a contiguous run of sections, invoking `f(slot_index, slot)`
    /// for every occupied slot in slot order.  Parallel crash recovery
    /// hands disjoint section ranges to different pool workers;
    /// [`EdgeArray::scan`] is the whole-array convenience built on top.
    pub fn scan_segments(&self, sections: std::ops::Range<usize>, mut f: impl FnMut(u64, Slot)) {
        // Read section by section to keep buffers modest.
        for section in sections {
            let range = self.section_slots(section);
            let raw = self.read_raw(range.start, self.segment_size);
            for (i, &word) in raw.iter().enumerate() {
                let slot = Slot::decode(word);
                if !slot.is_empty() {
                    f(range.start + i as u64, slot);
                }
            }
        }
    }
}

impl std::fmt::Debug for EdgeArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeArray")
            .field("base", &self.base_offset())
            .field("segments", &self.num_segments())
            .field("segment_size", &self.segment_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    fn array(segment_size: usize, segments: usize) -> (Arc<PmemPool>, EdgeArray) {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let a = EdgeArray::new(Arc::clone(&pool), segment_size, segments).unwrap();
        (pool, a)
    }

    #[test]
    fn fresh_array_is_all_gaps() {
        let (_p, a) = array(16, 4);
        assert_eq!(a.capacity(), 64);
        for i in 0..a.capacity() as u64 {
            assert_eq!(a.read_slot(i), Slot::Empty);
        }
    }

    #[test]
    fn slot_roundtrip_and_sections() {
        let (_p, a) = array(16, 4);
        a.write_slot_persist(0, Slot::Pivot(3));
        a.write_slot_persist(1, Slot::Edge(9));
        a.write_slot_persist(17, Slot::Tombstone(4));
        assert_eq!(a.read_slot(0), Slot::Pivot(3));
        assert_eq!(a.read_slot(1), Slot::Edge(9));
        assert_eq!(a.read_slot(17), Slot::Tombstone(4));
        assert_eq!(a.section_of(17), 1);
        assert_eq!(a.section_slots(1), 16..32);
    }

    #[test]
    fn persisted_slots_survive_crash() {
        let (p, a) = array(16, 4);
        a.write_slot_persist(5, Slot::Edge(42));
        a.write_slot(6, Slot::Edge(43)); // not persisted
        p.simulate_crash();
        assert_eq!(a.read_slot(5), Slot::Edge(42));
        assert_eq!(a.read_slot(6), Slot::Empty);
    }

    #[test]
    fn bulk_write_and_scan() {
        let (_p, a) = array(8, 2);
        let slots: Vec<u64> = vec![
            Slot::Pivot(0).encode(),
            Slot::Edge(1).encode(),
            Slot::Empty.encode(),
            Slot::Pivot(1).encode(),
        ];
        a.write_raw_persist(4, &slots);
        let mut seen = Vec::new();
        a.scan(|idx, s| seen.push((idx, s)));
        assert_eq!(
            seen,
            vec![(4, Slot::Pivot(0)), (5, Slot::Edge(1)), (7, Slot::Pivot(1))]
        );
    }

    #[test]
    fn read_raw_matches_writes() {
        let (_p, a) = array(8, 2);
        a.write_slot_persist(3, Slot::Edge(7));
        let raw = a.read_raw(2, 3);
        assert_eq!(Slot::decode(raw[0]), Slot::Empty);
        assert_eq!(Slot::decode(raw[1]), Slot::Edge(7));
    }

    #[test]
    fn grow_and_switch() {
        let (p, a) = array(8, 2);
        a.write_slot_persist(0, Slot::Pivot(0));
        let new_base = a.allocate_grown(4).unwrap();
        assert_ne!(new_base, a.base_offset());
        // Fill the new region before switching.
        let old_raw = a.read_raw(0, a.capacity());
        let bytes = EdgeArray::encode_raw(&old_raw);
        p.write(new_base, &bytes);
        p.persist(new_base, bytes.len());
        a.switch_to(new_base, 4);
        assert_eq!(a.num_segments(), 4);
        assert_eq!(a.capacity(), 32);
        assert_eq!(a.read_slot(0), Slot::Pivot(0));
        assert_eq!(a.read_slot(20), Slot::Empty);
    }

    #[test]
    fn attach_sees_existing_data() {
        let (p, a) = array(8, 2);
        a.write_slot_persist(9, Slot::Edge(5));
        let base = a.base_offset();
        let b = EdgeArray::attach(Arc::clone(&p), base, 8, 2);
        assert_eq!(b.read_slot(9), Slot::Edge(5));
    }
}
