//! The DGAP ablation variants of Table 5.
//!
//! The paper quantifies each design's contribution by incrementally removing
//! it:
//!
//! | Variant          | Per-section edge log | Per-thread undo log | DRAM data placement |
//! |------------------|----------------------|---------------------|---------------------|
//! | `Full`           | ✓                    | ✓                   | ✓                   |
//! | `NoElog`         | ✗ (nearby shifts)    | ✓                   | ✓                   |
//! | `NoElogUlog`     | ✗                    | ✗ (PMDK-style tx)   | ✓                   |
//! | `NoElogUlogDp`   | ✗                    | ✗                   | ✗ (metadata on PM)  |
//!
//! All variants share the same [`crate::graph::Dgap`] implementation; the
//! flags in [`crate::config::DgapConfig`] select the code paths, so the
//! measured differences come from the designs themselves rather than from
//! incidental implementation differences.

use crate::config::DgapConfig;
use crate::graph::Dgap;
use crate::traits::GraphResult;
use pmem::PmemPool;
use std::sync::Arc;

/// Which combination of DGAP designs is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DgapVariant {
    /// All three designs enabled (the system the paper proposes).
    Full,
    /// Per-section edge logs disabled: occupied insertion points fall back
    /// to nearby shifts ("No EL").
    NoElog,
    /// Additionally replace the per-thread undo log with PMDK-style
    /// transactions ("No EL&UL").
    NoElogUlog,
    /// Additionally place the vertex array and PMA-tree mirror on PM
    /// ("No EL&UL&DP").
    NoElogUlogDp,
}

impl DgapVariant {
    /// All variants in the order Table 5 reports them.
    pub fn all() -> [DgapVariant; 4] {
        [
            DgapVariant::Full,
            DgapVariant::NoElog,
            DgapVariant::NoElogUlog,
            DgapVariant::NoElogUlogDp,
        ]
    }

    /// The label the paper uses for this column.
    pub fn label(self) -> &'static str {
        match self {
            DgapVariant::Full => "DGAP",
            DgapVariant::NoElog => "No EL",
            DgapVariant::NoElogUlog => "No EL&UL",
            DgapVariant::NoElogUlogDp => "No EL&UL&DP",
        }
    }

    /// Apply this variant's flags to a configuration.
    pub fn apply(self, cfg: DgapConfig) -> DgapConfig {
        match self {
            DgapVariant::Full => cfg,
            DgapVariant::NoElog => cfg.without_edge_log(),
            DgapVariant::NoElogUlog => cfg.without_edge_log().without_undo_log(),
            DgapVariant::NoElogUlogDp => {
                cfg.without_edge_log().without_undo_log().metadata_on_pmem()
            }
        }
    }

    /// Build a DGAP instance of this variant inside `pool`.
    pub fn build(self, pool: Arc<PmemPool>, cfg: DgapConfig) -> GraphResult<Dgap> {
        Dgap::create(pool, self.apply(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Placement;
    use crate::traits::{DynamicGraph, GraphView};
    use pmem::PmemConfig;

    fn insert_workload(g: &Dgap, n: u64) {
        let mut x = 0xabcdu64;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            g.insert_edge((x >> 33) % 64, (x >> 17) % 64).unwrap();
        }
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(DgapVariant::Full.label(), "DGAP");
        assert_eq!(DgapVariant::NoElog.label(), "No EL");
        assert_eq!(DgapVariant::NoElogUlog.label(), "No EL&UL");
        assert_eq!(DgapVariant::NoElogUlogDp.label(), "No EL&UL&DP");
        assert_eq!(DgapVariant::all().len(), 4);
    }

    #[test]
    fn apply_sets_the_expected_flags() {
        let base = DgapConfig::small_test();
        let full = DgapVariant::Full.apply(base.clone());
        assert!(full.use_edge_log && full.use_undo_log);
        let no_el = DgapVariant::NoElog.apply(base.clone());
        assert!(!no_el.use_edge_log && no_el.use_undo_log);
        let no_el_ul = DgapVariant::NoElogUlog.apply(base.clone());
        assert!(!no_el_ul.use_edge_log && !no_el_ul.use_undo_log);
        let no_dp = DgapVariant::NoElogUlogDp.apply(base);
        assert_eq!(no_dp.metadata_placement, Placement::Pmem);
    }

    #[test]
    fn every_variant_produces_the_same_graph() {
        let mut reference: Option<Vec<Vec<u64>>> = None;
        for variant in DgapVariant::all() {
            let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
            let g = variant.build(pool, DgapConfig::small_test()).unwrap();
            insert_workload(&g, 1200);
            g.check_invariants();
            let view = g.consistent_view();
            let lists: Vec<Vec<u64>> = (0..64u64).map(|v| view.neighbors(v)).collect();
            match &reference {
                None => reference = Some(lists),
                Some(r) => assert_eq!(&lists, r, "variant {variant:?} diverged"),
            }
        }
    }

    #[test]
    fn full_variant_writes_less_to_pm_than_no_elog() {
        let run = |variant: DgapVariant| {
            let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
            let g = variant
                .build(Arc::clone(&pool), DgapConfig::small_test())
                .unwrap();
            let before = pool.stats_snapshot();
            insert_workload(&g, 1500);
            pool.stats_snapshot().delta_since(&before)
        };
        let full = run(DgapVariant::Full);
        let no_el = run(DgapVariant::NoElog);
        assert!(
            no_el.media_bytes_written > full.media_bytes_written,
            "removing the edge log must increase PM media traffic: full={} no_el={}",
            full.media_bytes_written,
            no_el.media_bytes_written
        );
    }

    #[test]
    fn no_elog_variant_uses_shift_path() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let g = DgapVariant::NoElog
            .build(pool, DgapConfig::small_test())
            .unwrap();
        insert_workload(&g, 1000);
        let s = g.stats();
        assert_eq!(s.elog_inserts, 0);
        assert!(s.shift_inserts > 0, "occupied slots must cause shifts");
    }

    #[test]
    fn no_ulog_variant_uses_pmdk_transactions() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let g = DgapVariant::NoElogUlog
            .build(Arc::clone(&pool), DgapConfig::small_test())
            .unwrap();
        insert_workload(&g, 1500);
        assert!(
            pool.stats_snapshot().tx_committed > 0,
            "rebalances must go through PMDK-style transactions"
        );
    }
}
