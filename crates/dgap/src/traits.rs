//! System-agnostic graph interfaces.
//!
//! Every system in this workspace — DGAP itself, its ablation variants and
//! all five comparison baselines — implements the same two traits so that
//! the analytics kernels (`analytics` crate) and the benchmark harness
//! (`bench` crate) can treat them interchangeably:
//!
//! * [`DynamicGraph`] is the *update* interface: vertex and edge insertion,
//!   tombstone deletion, and flushing for durability.
//! * [`GraphView`] is the *analysis* interface: a consistent, read-only
//!   snapshot of the graph as of the moment it was created, exactly what the
//!   paper's `g.consistent_view()` hands to a long-running analysis task.
//!
//! Keeping the two separate mirrors the paper's execution model: writer
//! threads keep calling [`DynamicGraph::insert_edge`] while analysis tasks
//! work on the last [`GraphView`] they grabbed.

use crate::chunks::SendPtr;
use std::fmt;

/// Vertex identifier.  Sequential ids starting at zero, as produced by the
/// upstream pre-processing the paper assumes.
pub type VertexId = u64;

/// Errors surfaced by graph update operations.
///
/// The enum is `#[non_exhaustive]`: it is the error half of the stable
/// request/response contract, and new failure modes (service shutdown,
/// worker death, ...) must be addable without breaking downstream matches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The underlying persistent-memory pool ran out of space.
    OutOfSpace(String),
    /// A vertex id was outside the graph's configured range and the system
    /// could not grow to accommodate it.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Current capacity in vertices.
        capacity: usize,
    },
    /// The operation is not supported by this system (e.g. edge insertion
    /// into the static CSR baseline).
    Unsupported(&'static str),
    /// The component (an ingest pipeline, a service front-end) has shut
    /// down and accepts no further operations.
    Closed,
    /// A background ingest worker died (its backend panicked); the shard's
    /// lane can no longer accept or apply operations.
    WorkerDied {
        /// Index of the shard whose drain worker died.
        shard: usize,
    },
    /// The network transport failed underneath the request (connection
    /// reset, write error, unreadable socket).  The request may or may not
    /// have reached the service; idempotent retry is the caller's call.
    Io(String),
    /// A peer violated the wire protocol: bad magic or version, an unknown
    /// message tag, a truncated body, or a hostile length prefix.  The
    /// connection that produced it is not recoverable — the byte stream has
    /// lost frame alignment.
    Protocol(String),
    /// Admission control shed this request instead of queueing it: the
    /// client is over one of its quotas (or the service is past its
    /// backpressure threshold).  The request was **not** executed; backing
    /// off and retrying is safe.
    Overloaded {
        /// Which quota tripped (`"inflight"`, `"rate"`, `"backpressure"`).
        reason: String,
    },
    /// A persistent region failed its integrity check and the damage is not
    /// repairable from a log or backup.  The shard owning the region is
    /// quarantined; the data it held cannot be trusted.
    Corrupted {
        /// The failing region (`"superblock"`, `"edge section 3"`, ...).
        region: String,
        /// What exactly failed, including pool label and byte offset.
        detail: String,
    },
    /// The service is serving in degraded mode: the listed shards are
    /// quarantined.  For a read this means the result would be partial;
    /// for a mutation it means the target shard is offline.  Retryable —
    /// the shards may be restored or re-ingested.
    Degraded {
        /// Indices of the quarantined shards.
        shards: Vec<usize>,
    },
    /// A wait gave up after its deadline expired.  The operation may still
    /// complete; only the wait timed out.
    Timeout {
        /// How long the caller actually waited, in milliseconds.
        waited_ms: u64,
    },
    /// Any other system-specific failure.
    Other(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::OutOfSpace(msg) => write!(f, "persistent pool out of space: {msg}"),
            GraphError::VertexOutOfRange { vertex, capacity } => {
                write!(f, "vertex {vertex} outside capacity {capacity}")
            }
            GraphError::Unsupported(op) => write!(f, "operation not supported: {op}"),
            GraphError::Closed => write!(f, "the component has shut down"),
            GraphError::WorkerDied { shard } => {
                write!(f, "ingest worker for shard {shard} died: backend panicked")
            }
            GraphError::Io(msg) => write!(f, "transport i/o error: {msg}"),
            GraphError::Protocol(msg) => write!(f, "wire protocol violation: {msg}"),
            GraphError::Overloaded { reason } => {
                write!(f, "request shed by admission control: over {reason} quota")
            }
            GraphError::Corrupted { region, detail } => {
                write!(f, "integrity check failed in {region}: {detail}")
            }
            GraphError::Degraded { shards } => {
                write!(f, "serving degraded: shards {shards:?} quarantined")
            }
            GraphError::Timeout { waited_ms } => {
                write!(f, "wait deadline expired after {waited_ms} ms")
            }
            GraphError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Result alias for graph update operations.
pub type GraphResult<T> = Result<T, GraphError>;

/// A single graph mutation — the unit the batched update path moves.
///
/// Everything that changes a graph is one of these three operations, so a
/// `&[Update]` batch is the lingua franca between clients, the service
/// layer, the sharded ingest pipeline and the backends: deletes flow down
/// the very same shard-partitioned path as inserts instead of needing a
/// side channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Update {
    /// Declare a vertex (the paper's `insertV`; a hint/no-op on systems
    /// that pre-allocate their vertex range).
    InsertVertex(VertexId),
    /// Insert the directed edge `src -> dst`.
    InsertEdge(VertexId, VertexId),
    /// Delete the directed edge `src -> dst` (tombstone semantics).
    DeleteEdge(VertexId, VertexId),
}

impl Update {
    /// The vertex that decides *where* the operation executes: the declared
    /// vertex for vertex operations, the **source** for edge operations (an
    /// edge lives entirely in its source's adjacency list, so inserts and
    /// deletes of the same edge always land on the same shard).
    #[inline]
    pub fn key_vertex(&self) -> VertexId {
        match *self {
            Update::InsertVertex(v) => v,
            Update::InsertEdge(src, _) | Update::DeleteEdge(src, _) => src,
        }
    }

    /// Whether this operation is a delete.
    #[inline]
    pub fn is_delete(&self) -> bool {
        matches!(self, Update::DeleteEdge(..))
    }
}

/// Plain `(src, dst)` tuples — the shape every edge generator produces —
/// convert into edge insertions, so `&[(u64, u64)]` streams feed the
/// batched update path without rewriting.
impl From<(VertexId, VertexId)> for Update {
    fn from((src, dst): (VertexId, VertexId)) -> Self {
        Update::InsertEdge(src, dst)
    }
}

/// The update-side interface implemented by every dynamic graph system.
///
/// All methods take `&self`: implementations provide their own internal
/// synchronisation (DGAP uses per-section locks, the baselines their own
/// schemes) so that multiple writer threads can share one instance.
pub trait DynamicGraph: Send + Sync {
    /// Declare a vertex.  Most systems pre-allocate their vertex range and
    /// treat this as a hint/no-op; it exists because the paper's interface
    /// (`g.insertV()`) has it.
    fn insert_vertex(&self, v: VertexId) -> GraphResult<()>;

    /// Insert the directed edge `src -> dst`.
    fn insert_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<()>;

    /// Delete the directed edge `src -> dst`.
    ///
    /// Following the paper, deletion re-inserts the edge with a tombstone
    /// flag; the default implementation therefore reports `Unsupported` only
    /// for systems that cannot express deletions at all.
    fn delete_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<bool> {
        let _ = (src, dst);
        Err(GraphError::Unsupported("delete_edge"))
    }

    /// Apply a batch of typed updates in order.
    ///
    /// Returns the number of operations that *took effect*: every
    /// successful insert counts, a delete counts only when the edge
    /// existed.  Application stops at the first error; operations before it
    /// remain applied (batches are not transactions).
    ///
    /// The default implementation dispatches per-op onto the three update
    /// methods; systems with a cheaper bulk path may override it.
    fn apply(&self, ops: &[Update]) -> GraphResult<usize> {
        let mut effective = 0;
        for &op in ops {
            match op {
                Update::InsertVertex(v) => {
                    self.insert_vertex(v)?;
                    effective += 1;
                }
                Update::InsertEdge(src, dst) => {
                    self.insert_edge(src, dst)?;
                    effective += 1;
                }
                Update::DeleteEdge(src, dst) => {
                    if self.delete_edge(src, dst)? {
                        effective += 1;
                    }
                }
            }
        }
        Ok(effective)
    }

    /// Number of vertices currently known to the system.
    fn num_vertices(&self) -> usize;

    /// Number of edge records inserted (tombstones included, matching how
    /// the paper counts insertion throughput).
    fn num_edges(&self) -> usize;

    /// Make every previously returned insertion durable (drain any volatile
    /// buffering the system keeps).  DGAP persists on every insert, so its
    /// implementation is a fence; GraphOne-FD flushes its DRAM edge list.
    fn flush(&self);

    /// Short human-readable system name used in benchmark output tables.
    fn system_name(&self) -> &'static str;
}

/// A read-only, consistent view of a graph for analysis tasks.
///
/// The view must not observe edges inserted after it was created (the
/// paper's degree-cache snapshot semantics); implementations are free to
/// expose *older* data only if their design cannot do better (LLAMA exposes
/// the last closed snapshot, as in the paper's evaluation).
pub trait GraphView: Send + Sync {
    /// Number of vertices in the snapshot.
    fn num_vertices(&self) -> usize;

    /// Number of directed edges visible in the snapshot (tombstones
    /// excluded where the system can tell them apart cheaply).
    fn num_edges(&self) -> usize;

    /// Out-degree of `v` in the snapshot.
    fn degree(&self, v: VertexId) -> usize;

    /// Invoke `f` for every out-neighbour of `v` visible in the snapshot.
    ///
    /// Neighbours are reported in insertion order.  This is the hot path of
    /// every analytics kernel; implementations should avoid allocating.
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId));

    /// Collect the out-neighbours of `v` into a vector (convenience built on
    /// [`GraphView::for_each_neighbor`]).
    fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, &mut |n| out.push(n));
        out
    }
}

/// Views whose adjacency lives in flat CSR arrays expose it here, so the
/// analytics kernels can iterate **borrowed neighbour slices** instead of
/// paying a virtual `&mut dyn FnMut` call per edge through
/// [`GraphView::for_each_neighbor`].
///
/// This is a *capability* trait layered on top of [`GraphView`]: kernels
/// keep their generic `GraphView` implementations as the fallback for
/// systems that resolve adjacency lazily (LLAMA-style deltas, borrowed
/// degree-cache snapshots), and add `*_csr` specialisations for views that
/// can promise slice access — [`FrozenView`] and the `sharded` crate's
/// unified cross-shard snapshot.  On PageRank the difference is 20
/// iterations × |E| dynamic dispatches that simply stop existing.
pub trait CsrView: GraphView {
    /// The neighbours of `v` as a borrowed slice.  Out-of-range ids (which
    /// untrusted callers are free to send) have no neighbours.
    fn neighbor_slice(&self, v: VertexId) -> &[VertexId];

    /// The CSR offset array: `offsets()[v] .. offsets()[v + 1]` spans
    /// vertex `v`'s neighbours in [`CsrView::targets`] —
    /// `num_vertices() + 1` entries (empty for a default-constructed,
    /// vertex-less view).
    fn offsets(&self) -> &[usize];

    /// The flat target array every neighbour slice borrows from.
    fn targets(&self) -> &[VertexId];
}

impl<T: CsrView + ?Sized> CsrView for &T {
    fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        (**self).neighbor_slice(v)
    }
    fn offsets(&self) -> &[usize] {
        (**self).offsets()
    }
    fn targets(&self) -> &[VertexId] {
        (**self).targets()
    }
}

impl<T: CsrView + ?Sized> CsrView for std::sync::Arc<T> {
    fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        (**self).neighbor_slice(v)
    }
    fn offsets(&self) -> &[usize] {
        (**self).offsets()
    }
    fn targets(&self) -> &[VertexId] {
        (**self).targets()
    }
}

impl<T: GraphView + ?Sized> GraphView for &T {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }
    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        (**self).for_each_neighbor(v, f);
    }
    fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        (**self).neighbors(v)
    }
}

impl<T: GraphView + ?Sized> GraphView for std::sync::Arc<T> {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }
    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        (**self).for_each_neighbor(v, f);
    }
    fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        (**self).neighbors(v)
    }
}

/// Sharing a system between writer threads (`Arc<G>`, the shape the
/// `sharded` crate's ingest workers hold) keeps the full update interface.
impl<T: DynamicGraph + ?Sized> DynamicGraph for std::sync::Arc<T> {
    fn insert_vertex(&self, v: VertexId) -> GraphResult<()> {
        (**self).insert_vertex(v)
    }
    fn insert_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<()> {
        (**self).insert_edge(src, dst)
    }
    fn delete_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<bool> {
        (**self).delete_edge(src, dst)
    }
    fn apply(&self, ops: &[Update]) -> GraphResult<usize> {
        (**self).apply(ops)
    }
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }
    fn flush(&self) {
        (**self).flush()
    }
    fn system_name(&self) -> &'static str {
        (**self).system_name()
    }
}

/// Systems that can produce consistent snapshots implement this.
pub trait SnapshotSource {
    /// The snapshot type handed to analysis tasks.  It may borrow from the
    /// graph (all our snapshots do: they cache degrees in DRAM and read edge
    /// data through the graph).
    type View<'a>: GraphView
    where
        Self: 'a;

    /// Capture a consistent view of the latest graph (the paper's
    /// `g.consistent_view()`).
    fn consistent_view(&self) -> Self::View<'_>;
}

/// Systems whose snapshots can **own** their data implement this in
/// addition to [`SnapshotSource`].
///
/// [`SnapshotSource::View`] borrows from the graph, which is the right
/// shape for an analysis task running inside one call frame — and the wrong
/// shape for a service: a request loop wants to capture a snapshot once,
/// stash it in an `Arc`, and keep answering queries from it long after the
/// capturing call returned.  An owned view has no borrow, so it can cross
/// request boundaries, live in caches, and be shared between worker
/// threads freely.
pub trait OwnedSnapshotSource {
    /// The owned snapshot type (no lifetime — safe to cache and share).
    type OwnedView: GraphView + Send + Sync + 'static;

    /// Capture a consistent snapshot that does not borrow from `self`.
    fn owned_view(&self) -> Self::OwnedView;
}

/// An owned, immutable CSR snapshot materialised from any [`GraphView`].
///
/// `capture` walks the source view and copies the **resolved** adjacency —
/// tombstones applied, exactly what `for_each_neighbor` reports — into a
/// compact offsets-plus-targets layout.  The result is `'static`, cheap to
/// query (two array reads per `degree`, one contiguous slice per neighbour
/// scan) and safely shareable, which is what the service layer's
/// epoch-cached snapshots are built from.
///
/// On graphs big enough to matter, `capture` is **parallel**: a parallel
/// per-vertex degree count, a (cheap, serial) prefix sum turning the counts
/// into CSR offsets, and a parallel adjacency fill where every vertex
/// writes its neighbours into its own disjoint slice of the target array.
/// [`FrozenView::capture_sequential`] keeps the original single-threaded
/// two-pass walk as the comparison baseline (`dgap-bench snapshot` measures
/// one against the other); both produce identical snapshots.
///
/// Note one deliberate semantic difference from the borrowed snapshots:
/// [`FrozenView::degree`] counts *visible* neighbours, not raw records, so
/// after deletions analytics over a `FrozenView` match the in-memory
/// reference oracle rather than the paper's record-count convention.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrozenView {
    /// `offsets[v] .. offsets[v + 1]` spans `v`'s neighbours in `targets`.
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
}

/// Below this many vertices **and** this many edges, `capture` stays
/// sequential: the split/steal overhead of the pool outweighs the scan.
/// Both gates matter — a scaled benchmark graph can have few vertices but
/// a dense adjacency worth splitting.
const PARALLEL_CAPTURE_MIN_VERTICES: usize = 1 << 12;
const PARALLEL_CAPTURE_MIN_EDGES: usize = 1 << 14;

impl FrozenView {
    /// Materialise `view` into an owned snapshot, in parallel when the
    /// graph is large enough and more than one thread is available.
    ///
    /// The parallel path scans the source adjacency **once** (resolving a
    /// vertex's neighbours is the expensive step — pool reads plus
    /// tombstone resolution): vertex chunks capture into chunk-local
    /// buffers concurrently, a serial prefix sum turns the per-vertex
    /// counts into exact CSR offsets, and the chunk buffers are then moved
    /// into their final positions concurrently (disjoint slices, plain
    /// memcpy).
    pub fn capture(view: &(impl GraphView + ?Sized)) -> FrozenView {
        let _span = crate::telemetry::capture_nanos().span();
        let n = view.num_vertices();
        let small =
            n < PARALLEL_CAPTURE_MIN_VERTICES && view.num_edges() < PARALLEL_CAPTURE_MIN_EDGES;
        if small || rayon::current_num_threads() <= 1 {
            return Self::capture_sequential(view);
        }
        use rayon::prelude::*;

        // Pool-sized vertex ranges (shared sizing with the `*_csr`
        // kernels and the unified-CSR merge — see [`crate::chunks`]).
        let ranges = crate::chunks::ranges(n);

        // One parallel pass: each chunk resolves its vertices once,
        // recording per-vertex visible degrees and the concatenated
        // adjacency.
        let parts: Vec<(Vec<usize>, Vec<VertexId>)> = ranges
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut counts = Vec::with_capacity(hi - lo);
                let mut local = Vec::new();
                for v in lo as u64..hi as u64 {
                    let before = local.len();
                    view.for_each_neighbor(v, &mut |d| local.push(d));
                    counts.push(local.len() - before);
                }
                (counts, local)
            })
            .collect();

        // Serial prefix sums (O(V), trivial next to the resolve scans):
        // global CSR offsets from the per-vertex counts, and each chunk's
        // start position in the final target array.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut running = 0usize;
        let mut placed: Vec<(usize, Vec<VertexId>)> = Vec::with_capacity(parts.len());
        for (counts, local) in parts {
            placed.push((running, local));
            for c in counts {
                running += c;
                offsets.push(running);
            }
        }
        let total = running;

        // Parallel gather: every chunk's buffer moves into its disjoint
        // slice of the target array.
        let mut targets: Vec<VertexId> = Vec::with_capacity(total);
        let dst = SendPtr(targets.as_mut_ptr());
        placed.into_par_iter().for_each(|(at, local)| {
            debug_assert!(at + local.len() <= total);
            unsafe {
                std::ptr::copy_nonoverlapping(local.as_ptr(), dst.get().add(at), local.len());
            }
        });
        unsafe { targets.set_len(total) };
        FrozenView { offsets, targets }
    }

    /// The original single-threaded two-pass capture, kept as the measured
    /// baseline for the parallel path (and for callers that must not touch
    /// the thread pool).
    pub fn capture_sequential(view: &(impl GraphView + ?Sized)) -> FrozenView {
        let n = view.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(view.num_edges());
        offsets.push(0);
        for v in 0..n as u64 {
            view.for_each_neighbor(v, &mut |d| targets.push(d));
            offsets.push(targets.len());
        }
        FrozenView { offsets, targets }
    }

    /// The neighbours of `v` as a borrowed slice (zero-copy access the
    /// trait interface cannot offer).  Out-of-range ids — all the way up to
    /// `u64::MAX`, which untrusted service clients are free to send — have
    /// no neighbours.
    pub fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        let Some(next) = (v as usize).checked_add(1) else {
            return &[];
        };
        match (self.offsets.get(v as usize), self.offsets.get(next)) {
            (Some(&lo), Some(&hi)) => &self.targets[lo..hi],
            _ => &[],
        }
    }
}

impl GraphView for FrozenView {
    fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    fn num_edges(&self) -> usize {
        self.targets.len()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.neighbor_slice(v).len()
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &d in self.neighbor_slice(v) {
            f(d);
        }
    }

    fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        // One bulk copy of the already-contiguous span beats the default
        // impl's push-per-neighbour through the dyn closure.
        self.neighbor_slice(v).to_vec()
    }
}

impl CsrView for FrozenView {
    fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        FrozenView::neighbor_slice(self, v)
    }

    fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    fn targets(&self) -> &[VertexId] {
        &self.targets
    }
}

/// A trivial in-memory adjacency-list graph used as the reference oracle in
/// tests across the workspace (it is *not* one of the evaluated systems).
#[derive(Debug, Default, Clone)]
pub struct ReferenceGraph {
    adj: Vec<Vec<VertexId>>,
    num_edges: usize,
}

impl ReferenceGraph {
    /// Create an empty reference graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        ReferenceGraph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Add the directed edge `src -> dst`, growing the vertex set if needed.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        let needed = (src.max(dst) + 1) as usize;
        if needed > self.adj.len() {
            self.adj.resize(needed, Vec::new());
        }
        self.adj[src as usize].push(dst);
        self.num_edges += 1;
    }

    /// Remove one occurrence of `src -> dst`.  Returns whether it existed.
    pub fn remove_edge(&mut self, src: VertexId, dst: VertexId) -> bool {
        if let Some(list) = self.adj.get_mut(src as usize) {
            if let Some(i) = list.iter().position(|&x| x == dst) {
                list.remove(i);
                self.num_edges -= 1;
                return true;
            }
        }
        false
    }
}

impl GraphView for ReferenceGraph {
    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.adj.get(v as usize).map_or(0, Vec::len)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        if let Some(list) = self.adj.get(v as usize) {
            for &n in list {
                f(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_graph_tracks_edges() {
        let mut g = ReferenceGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(2, 0);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), vec![1, 2]);
        assert_eq!(g.neighbors(1), Vec::<VertexId>::new());
    }

    #[test]
    fn reference_graph_grows_on_demand() {
        let mut g = ReferenceGraph::new(1);
        g.add_edge(5, 7);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.degree(5), 1);
        assert_eq!(g.degree(7), 0);
    }

    #[test]
    fn reference_graph_removes_one_occurrence() {
        let mut g = ReferenceGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert!(g.remove_edge(0, 1));
        assert_eq!(g.degree(0), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn neighbors_default_matches_for_each() {
        let mut g = ReferenceGraph::new(4);
        for d in [3u64, 1, 2] {
            g.add_edge(0, d);
        }
        let mut via_fn = Vec::new();
        g.for_each_neighbor(0, &mut |n| via_fn.push(n));
        assert_eq!(via_fn, g.neighbors(0));
    }

    #[test]
    fn update_routes_by_source_vertex() {
        assert_eq!(Update::InsertVertex(7).key_vertex(), 7);
        assert_eq!(Update::InsertEdge(3, 9).key_vertex(), 3);
        assert_eq!(Update::DeleteEdge(5, 1).key_vertex(), 5);
        assert!(Update::DeleteEdge(5, 1).is_delete());
        assert!(!Update::InsertEdge(5, 1).is_delete());
        assert_eq!(Update::from((2u64, 4u64)), Update::InsertEdge(2, 4));
    }

    #[test]
    fn apply_counts_effective_operations() {
        #[derive(Default)]
        struct Adj(std::sync::Mutex<ReferenceGraph>);
        impl DynamicGraph for Adj {
            fn insert_vertex(&self, _v: VertexId) -> GraphResult<()> {
                Ok(())
            }
            fn insert_edge(&self, s: VertexId, d: VertexId) -> GraphResult<()> {
                self.0.lock().unwrap().add_edge(s, d);
                Ok(())
            }
            fn delete_edge(&self, s: VertexId, d: VertexId) -> GraphResult<bool> {
                Ok(self.0.lock().unwrap().remove_edge(s, d))
            }
            fn num_vertices(&self) -> usize {
                self.0.lock().unwrap().num_vertices()
            }
            fn num_edges(&self) -> usize {
                GraphView::num_edges(&*self.0.lock().unwrap())
            }
            fn flush(&self) {}
            fn system_name(&self) -> &'static str {
                "adj"
            }
        }
        let g = Adj::default();
        let applied = g
            .apply(&[
                Update::InsertVertex(0),
                Update::InsertEdge(0, 1),
                Update::InsertEdge(0, 2),
                Update::DeleteEdge(0, 1),
                Update::DeleteEdge(0, 9), // not present: no effect
            ])
            .unwrap();
        assert_eq!(applied, 4);
        assert_eq!(g.0.lock().unwrap().neighbors(0), vec![2]);
    }

    #[test]
    fn apply_stops_at_the_first_error() {
        struct NoDeletes;
        impl DynamicGraph for NoDeletes {
            fn insert_vertex(&self, _v: VertexId) -> GraphResult<()> {
                Ok(())
            }
            fn insert_edge(&self, _s: VertexId, _d: VertexId) -> GraphResult<()> {
                Ok(())
            }
            fn num_vertices(&self) -> usize {
                0
            }
            fn num_edges(&self) -> usize {
                0
            }
            fn flush(&self) {}
            fn system_name(&self) -> &'static str {
                "no-deletes"
            }
        }
        let err = NoDeletes
            .apply(&[Update::InsertEdge(0, 1), Update::DeleteEdge(0, 1)])
            .unwrap_err();
        assert_eq!(err, GraphError::Unsupported("delete_edge"));
    }

    #[test]
    fn frozen_view_matches_its_source_and_owns_its_data() {
        let mut g = ReferenceGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(3, 0);
        let frozen = FrozenView::capture(&g);
        drop(g); // the snapshot must not borrow from the source
        assert_eq!(frozen.num_vertices(), 4);
        assert_eq!(frozen.num_edges(), 3);
        assert_eq!(frozen.degree(0), 2);
        assert_eq!(frozen.neighbors(0), vec![1, 2]);
        assert_eq!(frozen.neighbor_slice(3), &[0]);
        assert_eq!(frozen.degree(100), 0);
        assert!(frozen.neighbor_slice(100).is_empty());
    }

    #[test]
    fn csr_view_exposes_the_flat_arrays() {
        let mut g = ReferenceGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(3, 0);
        let frozen = FrozenView::capture(&g);
        fn takes_csr(v: &impl CsrView) -> (usize, Vec<VertexId>) {
            assert_eq!(v.offsets().len(), v.num_vertices() + 1);
            assert_eq!(*v.offsets().last().unwrap(), v.targets().len());
            (v.targets().len(), v.neighbor_slice(0).to_vec())
        }
        assert_eq!(takes_csr(&frozen), (3, vec![1, 2]));
        // The blanket impls keep the capability through & and Arc.
        assert_eq!(takes_csr(&&frozen), (3, vec![1, 2]));
        let shared = std::sync::Arc::new(frozen);
        assert_eq!(takes_csr(&shared), (3, vec![1, 2]));
        assert!(CsrView::neighbor_slice(&shared, u64::MAX).is_empty());
    }

    #[test]
    fn frozen_view_of_the_empty_graph() {
        let frozen = FrozenView::capture(&ReferenceGraph::new(0));
        assert_eq!(frozen.num_vertices(), 0);
        assert_eq!(frozen.num_edges(), 0);
    }

    #[test]
    fn parallel_capture_matches_sequential_above_the_threshold() {
        // Big enough to take the parallel path, with removals so the
        // resolved adjacency differs from the raw insert stream.
        let n = 3 * super::PARALLEL_CAPTURE_MIN_VERTICES as u64;
        let mut g = ReferenceGraph::new(n as usize);
        for v in 0..n {
            for k in 1..=(v % 7) {
                g.add_edge(v, (v + k * 31) % n);
            }
        }
        for v in (0..n).step_by(3) {
            g.remove_edge(v, (v + 31) % n);
        }
        let par = FrozenView::capture(&g);
        let seq = FrozenView::capture_sequential(&g);
        assert_eq!(par, seq);
        assert_eq!(par.num_edges(), g.num_edges());
        for v in (0..n).step_by(997) {
            assert_eq!(par.neighbors(v), g.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn graph_error_messages() {
        assert!(GraphError::OutOfSpace("pool".into())
            .to_string()
            .contains("pool"));
        assert!(GraphError::VertexOutOfRange {
            vertex: 9,
            capacity: 4
        }
        .to_string()
        .contains('9'));
        assert!(GraphError::Unsupported("x").to_string().contains('x'));
        assert!(GraphError::Closed.to_string().contains("shut down"));
        assert!(GraphError::WorkerDied { shard: 3 }
            .to_string()
            .contains("shard 3"));
        let corrupted = GraphError::Corrupted {
            region: "edge section 4".into(),
            detail: "crc mismatch".into(),
        }
        .to_string();
        assert!(corrupted.contains("edge section 4") && corrupted.contains("crc mismatch"));
        let degraded = GraphError::Degraded { shards: vec![1, 3] }.to_string();
        assert!(degraded.contains("[1, 3]"));
        assert!(GraphError::Timeout { waited_ms: 250 }
            .to_string()
            .contains("250 ms"));
    }

    #[test]
    fn degree_of_unknown_vertex_is_zero() {
        let g = ReferenceGraph::new(2);
        assert_eq!(g.degree(100), 0);
        assert!(g.neighbors(100).is_empty());
    }

    #[test]
    fn arc_wrapper_preserves_the_view_interface() {
        let mut g = ReferenceGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let shared = std::sync::Arc::new(g);
        fn takes_view(v: &impl GraphView) -> (usize, Vec<VertexId>) {
            (v.num_edges(), v.neighbors(0))
        }
        assert_eq!(takes_view(&shared), (2, vec![1, 2]));
        assert_eq!(shared.degree(0), 2);
        assert_eq!(shared.num_vertices(), 3);
    }

    #[test]
    fn arc_wrapper_preserves_the_update_interface() {
        #[derive(Default)]
        struct CountingGraph {
            edges: std::sync::atomic::AtomicUsize,
        }
        impl DynamicGraph for CountingGraph {
            fn insert_vertex(&self, _v: VertexId) -> GraphResult<()> {
                Ok(())
            }
            fn insert_edge(&self, _s: VertexId, _d: VertexId) -> GraphResult<()> {
                self.edges
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(())
            }
            fn num_vertices(&self) -> usize {
                0
            }
            fn num_edges(&self) -> usize {
                self.edges.load(std::sync::atomic::Ordering::Relaxed)
            }
            fn flush(&self) {}
            fn system_name(&self) -> &'static str {
                "counting"
            }
        }
        let shared = std::sync::Arc::new(CountingGraph::default());
        fn takes_graph(g: &impl DynamicGraph) {
            g.insert_edge(0, 1).unwrap();
            g.flush();
        }
        takes_graph(&shared);
        takes_graph(&shared);
        assert_eq!(shared.num_edges(), 2);
        assert_eq!(shared.system_name(), "counting");
        assert!(matches!(
            shared.delete_edge(0, 1),
            Err(GraphError::Unsupported("delete_edge"))
        ));
    }
}
