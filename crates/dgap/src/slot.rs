//! Encoding of one edge-array slot on persistent memory.
//!
//! Each slot is 8 bytes.  Three kinds of values share the space:
//!
//! * **Empty** — the PMA gap.  Encoded as all-zeroes so that freshly
//!   allocated (zeroed) persistent memory reads as "all gaps".
//! * **Pivot** — the paper's recovery anchor: a special element carrying
//!   `-vertex_id` placed at the start of every vertex's edge list.  We set
//!   the top bit instead of using two's complement so that vertex id 0 can
//!   be represented.
//! * **Edge** — the destination vertex id, optionally carrying the
//!   tombstone flag the paper uses to encode deletions ("re-insert the edge
//!   with the first bit of the destination set").
//!
//! Destination ids are stored biased by one (`dst + 1`) so that a legal edge
//! never encodes to zero and can always be told apart from a gap.

use crate::traits::VertexId;

/// Bit marking a slot as a pivot element.
const PIVOT_BIT: u64 = 1 << 63;
/// Bit marking an edge as tombstoned (deleted).
const TOMB_BIT: u64 = 1 << 62;
/// Mask extracting the vertex id payload.
const ID_MASK: u64 = (1 << 62) - 1;

/// Size of one slot in bytes.
pub const SLOT_BYTES: usize = 8;

/// Decoded contents of one edge-array slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// An unoccupied gap.
    Empty,
    /// The pivot element opening vertex `v`'s edge list.
    Pivot(VertexId),
    /// A live edge to `dst`.
    Edge(VertexId),
    /// A tombstoned (deleted) edge to `dst`.
    Tombstone(VertexId),
}

impl Slot {
    /// Encode to the on-PM representation.
    pub fn encode(self) -> u64 {
        match self {
            Slot::Empty => 0,
            Slot::Pivot(v) => {
                debug_assert!(v < ID_MASK, "vertex id too large to encode");
                PIVOT_BIT | (v + 1)
            }
            Slot::Edge(dst) => {
                debug_assert!(dst < ID_MASK, "vertex id too large to encode");
                dst + 1
            }
            Slot::Tombstone(dst) => {
                debug_assert!(dst < ID_MASK, "vertex id too large to encode");
                TOMB_BIT | (dst + 1)
            }
        }
    }

    /// Decode from the on-PM representation.
    pub fn decode(raw: u64) -> Slot {
        if raw == 0 {
            Slot::Empty
        } else if raw & PIVOT_BIT != 0 {
            Slot::Pivot((raw & ID_MASK) - 1)
        } else if raw & TOMB_BIT != 0 {
            Slot::Tombstone((raw & ID_MASK) - 1)
        } else {
            Slot::Edge(raw - 1)
        }
    }

    /// `true` for [`Slot::Empty`].
    pub fn is_empty(self) -> bool {
        matches!(self, Slot::Empty)
    }

    /// `true` for [`Slot::Pivot`].
    pub fn is_pivot(self) -> bool {
        matches!(self, Slot::Pivot(_))
    }

    /// `true` for [`Slot::Edge`] or [`Slot::Tombstone`] — anything that
    /// occupies space and counts towards PMA density.
    pub fn is_edge_record(self) -> bool {
        matches!(self, Slot::Edge(_) | Slot::Tombstone(_))
    }

    /// `true` for any non-empty slot.
    pub fn is_occupied(self) -> bool {
        !self.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for slot in [
            Slot::Empty,
            Slot::Pivot(0),
            Slot::Pivot(7),
            Slot::Pivot(1_000_000_000),
            Slot::Edge(0),
            Slot::Edge(42),
            Slot::Edge(u32::MAX as u64),
            Slot::Tombstone(0),
            Slot::Tombstone(99),
        ] {
            assert_eq!(Slot::decode(slot.encode()), slot, "{slot:?}");
        }
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(Slot::Empty.encode(), 0);
        assert_eq!(Slot::decode(0), Slot::Empty);
    }

    #[test]
    fn vertex_zero_is_distinguishable_everywhere() {
        assert_ne!(Slot::Pivot(0).encode(), Slot::Empty.encode());
        assert_ne!(Slot::Edge(0).encode(), Slot::Empty.encode());
        assert_ne!(Slot::Tombstone(0).encode(), Slot::Empty.encode());
        assert_ne!(Slot::Pivot(0).encode(), Slot::Edge(0).encode());
        assert_ne!(Slot::Tombstone(0).encode(), Slot::Edge(0).encode());
    }

    #[test]
    fn classification_helpers() {
        assert!(Slot::Empty.is_empty());
        assert!(!Slot::Empty.is_occupied());
        assert!(Slot::Pivot(1).is_pivot());
        assert!(Slot::Pivot(1).is_occupied());
        assert!(!Slot::Pivot(1).is_edge_record());
        assert!(Slot::Edge(1).is_edge_record());
        assert!(Slot::Tombstone(1).is_edge_record());
        assert!(!Slot::Edge(1).is_pivot());
    }

    #[test]
    fn distinct_ids_encode_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..1000u64 {
            assert!(seen.insert(Slot::Edge(v).encode()));
            assert!(seen.insert(Slot::Pivot(v).encode()));
            assert!(seen.insert(Slot::Tombstone(v).encode()));
        }
    }
}
