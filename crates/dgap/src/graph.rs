//! The DGAP framework: a single mutable CSR on persistent memory.
//!
//! [`Dgap`] ties together the four components of Fig. 2:
//!
//! 1. the DRAM **vertex array** ([`crate::vertex`]),
//! 2. the PM **edge array** ([`crate::edges`]), a vertex-centric PMA,
//! 3. the PM **per-section edge logs** ([`crate::elog`]), and
//! 4. the PM **per-thread undo logs** ([`crate::ulog`]).
//!
//! Multiple writer threads may call [`Dgap::insert_edge`] concurrently;
//! analysis tasks call [`Dgap::consistent_view`] to obtain a
//! [`DgapSnapshot`] (the paper's degree-cache snapshot) and iterate it while
//! updates continue.
//!
//! # Concurrency model
//!
//! * A global `resize` read-write lock: every insert and every per-vertex
//!   read holds it for reading; an edge-array resize takes it for writing.
//! * One read-write lock per PMA section.  Inserts lock the source vertex's
//!   pivot section and the section containing its insertion point;
//!   rebalances lock every section of their window; readers lock the
//!   sections spanned by the extent they scan.  Locks are always acquired in
//!   ascending section order, and every operation re-validates the vertex
//!   metadata after locking (retrying if a concurrent rebalance moved it).

use crate::config::{DgapConfig, Placement};
use crate::edges::EdgeArray;
use crate::elog::EdgeLogs;
use crate::meta::{Layout, Superblock};
use crate::slot::Slot;
use crate::traits::{DynamicGraph, GraphError, GraphResult, GraphView, SnapshotSource, VertexId};
use crate::ulog::UndoLog;
use crate::vertex::{VertexArray, VertexEntry, NO_ELOG, NO_START};
use parking_lot::{Mutex, RwLock};
use pma::{plan_weighted, DensityTree, Extent, SegmentGeometry};
use pmem::tx::TxContext;
use pmem::{PmemOffset, PmemPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Operation counters maintained by a [`Dgap`] instance.
#[derive(Debug, Default)]
pub struct DgapStats {
    /// Edges written directly into an empty edge-array slot.
    pub array_inserts: AtomicU64,
    /// Edges appended to a per-section edge log.
    pub elog_inserts: AtomicU64,
    /// Edges inserted via a nearby shift (only in the "No EL" ablation).
    pub shift_inserts: AtomicU64,
    /// Slots moved by nearby shifts.
    pub shifted_slots: AtomicU64,
    /// Window rebalances performed (includes single-section merges).
    pub rebalances: AtomicU64,
    /// Edge-log merges folded into rebalances.
    pub merges: AtomicU64,
    /// Edge-array resizes.
    pub resizes: AtomicU64,
    /// Tombstone records inserted.
    pub deletes: AtomicU64,
    /// Interrupted rebalances rolled back during crash recovery.
    pub recovered_rebalances: AtomicU64,
}

/// A plain snapshot of [`DgapStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DgapStatsSnapshot {
    /// See [`DgapStats::array_inserts`].
    pub array_inserts: u64,
    /// See [`DgapStats::elog_inserts`].
    pub elog_inserts: u64,
    /// See [`DgapStats::shift_inserts`].
    pub shift_inserts: u64,
    /// See [`DgapStats::shifted_slots`].
    pub shifted_slots: u64,
    /// See [`DgapStats::rebalances`].
    pub rebalances: u64,
    /// See [`DgapStats::merges`].
    pub merges: u64,
    /// See [`DgapStats::resizes`].
    pub resizes: u64,
    /// See [`DgapStats::deletes`].
    pub deletes: u64,
    /// See [`DgapStats::recovered_rebalances`].
    pub recovered_rebalances: u64,
}

impl DgapStats {
    /// Copy all counters.
    pub fn snapshot(&self) -> DgapStatsSnapshot {
        DgapStatsSnapshot {
            array_inserts: self.array_inserts.load(Ordering::Relaxed),
            elog_inserts: self.elog_inserts.load(Ordering::Relaxed),
            shift_inserts: self.shift_inserts.load(Ordering::Relaxed),
            shifted_slots: self.shifted_slots.load(Ordering::Relaxed),
            rebalances: self.rebalances.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            resizes: self.resizes.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            recovered_rebalances: self.recovered_rebalances.load(Ordering::Relaxed),
        }
    }
}

/// What an attempt at inserting one record concluded.
#[derive(Debug)]
enum InsertAction {
    /// Record durably inserted; no maintenance needed.
    Done,
    /// Record durably inserted; section should be rebalanced / merged.
    Maintain(usize),
    /// Nothing inserted; maintenance required before retrying.
    MaintainAndRetry(usize),
    /// Nothing inserted; metadata changed under us, retry from scratch.
    Retry,
    /// Nothing inserted; the vertex has no pivot yet.
    NeedPlacement,
}

/// The DGAP dynamic-graph framework (see the [module docs](self)).
pub struct Dgap {
    pool: Arc<PmemPool>,
    cfg: DgapConfig,
    sb: Superblock,
    pub(crate) vertices: VertexArray,
    pub(crate) edges: EdgeArray,
    pub(crate) elogs: EdgeLogs,
    ulogs: Vec<Mutex<UndoLog>>,
    pub(crate) tree: Mutex<DensityTree>,
    /// PM mirror of the per-section occupancy counters, used only by the
    /// data-placement ablation (Table 5, "No EL&UL&DP").
    tree_mirror: Option<PmemOffset>,
    pub(crate) section_locks: RwLock<Vec<RwLock<()>>>,
    pub(crate) resize_lock: RwLock<()>,
    /// First slot index after the last occupied slot (used to place pivots
    /// of vertices that appear after initialisation).
    tail: AtomicU64,
    /// Total edge records inserted (tombstones included).
    records: AtomicU64,
    /// Highest vertex id seen plus one.
    num_vertices: AtomicU64,
    stats: DgapStats,
}

impl Dgap {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Create a fresh DGAP instance inside `pool`.
    ///
    /// Pre-allocates the vertex array (DRAM), the edge array, the
    /// per-section edge logs and the per-thread undo logs (PM), places one
    /// pivot per expected vertex and persists the superblock.
    pub fn create(pool: Arc<PmemPool>, cfg: DgapConfig) -> GraphResult<Self> {
        cfg.validate();
        let sb = Superblock::create(&pool).map_err(pm_err)?;
        sb.set_config(&pool, cfg.segment_size, cfg.elog_size);

        let geom = SegmentGeometry::for_capacity(cfg.segment_size, cfg.initial_slots());
        let edges = EdgeArray::new(Arc::clone(&pool), cfg.segment_size, geom.num_segments)
            .map_err(pm_err)?;
        let elogs =
            EdgeLogs::new(Arc::clone(&pool), geom.num_segments, cfg.elog_size).map_err(pm_err)?;
        sb.publish_layout(
            &pool,
            Layout {
                edge_base: edges.base_offset(),
                num_segments: geom.num_segments,
                elog_base: elogs.base_offset(),
            },
        )
        .map_err(pm_err)?;

        let mut ulogs = Vec::new();
        let mut ulog_offsets = Vec::new();
        let ulog_capacity = cfg.ulog_size.max(cfg.segment_size * 8 * 4);
        for _ in 0..cfg.writer_threads {
            let u =
                UndoLog::new(Arc::clone(&pool), ulog_capacity, cfg.ulog_size).map_err(pm_err)?;
            ulog_offsets.push(u.region_offset());
            ulogs.push(Mutex::new(u));
        }
        sb.set_ulogs(&pool, &ulog_offsets, ulog_capacity, cfg.ulog_size)
            .map_err(pm_err)?;

        let (vertices, tree_mirror) = match cfg.metadata_placement {
            Placement::Dram => (VertexArray::new(cfg.init_vertices), None),
            Placement::Pmem => {
                let vbase = pool
                    .alloc_zeroed(cfg.init_vertices * crate::vertex::MIRROR_ENTRY_BYTES, 64)
                    .map_err(pm_err)?;
                let tbase = pool
                    .alloc_zeroed(geom.num_segments * 8, 64)
                    .map_err(pm_err)?;
                (
                    VertexArray::new_mirrored(cfg.init_vertices, Arc::clone(&pool), vbase),
                    Some(tbase),
                )
            }
        };

        let tree = DensityTree::new(geom, cfg.density);
        let section_locks = (0..geom.num_segments).map(|_| RwLock::new(())).collect();

        let g = Dgap {
            pool,
            sb,
            vertices,
            edges,
            elogs,
            ulogs,
            tree: Mutex::new(tree),
            tree_mirror,
            section_locks: RwLock::new(section_locks),
            resize_lock: RwLock::new(()),
            tail: AtomicU64::new(0),
            records: AtomicU64::new(0),
            num_vertices: AtomicU64::new(cfg.init_vertices as u64),
            stats: DgapStats::default(),
            cfg,
        };
        g.sb.set_num_vertices(&g.pool, g.cfg.init_vertices);
        g.write_initial_layout()?;
        // The freshly created instance is in a consistent, durable state.
        g.sb.set_normal_shutdown(&g.pool, false);
        Ok(g)
    }

    /// Lay out one pivot per expected vertex, spread across the initial
    /// array with VCSR-style even gaps, and persist the result.
    fn write_initial_layout(&self) -> GraphResult<()> {
        let nv = self.cfg.init_vertices;
        let capacity = self.edges.capacity();
        let extents: Vec<Extent> = (0..nv as u64).map(|v| Extent { id: v, count: 1 }).collect();
        let plan = pma::plan_even(&extents, capacity);
        let mut words = vec![0u64; capacity];
        for p in &plan {
            words[p.start] = Slot::Pivot(p.id).encode();
        }
        // Bulk sequential write, one section at a time.
        let seg = self.cfg.segment_size;
        for (section, chunk) in words.chunks(seg).enumerate() {
            self.edges.write_raw_persist((section * seg) as u64, chunk);
            self.tree_set_occupancy(section, chunk.iter().filter(|&&w| w != 0).count());
        }
        for p in &plan {
            self.vertices.set(
                p.id,
                VertexEntry {
                    degree: 0,
                    in_array: 0,
                    start: p.start as u64,
                    elog_head: NO_ELOG,
                },
            );
        }
        let tail = plan.last().map_or(0, |p| (p.start + 1) as u64);
        self.tail.store(tail, Ordering::Release);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The configuration this instance was created with.
    pub fn config(&self) -> &DgapConfig {
        &self.cfg
    }

    /// The persistent-memory pool backing this instance.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Operation counters.
    pub fn stats(&self) -> DgapStatsSnapshot {
        self.stats.snapshot()
    }

    /// Statistics of the per-section edge logs (Fig. 9).
    pub fn elog_stats(&self) -> crate::elog::ElogStats {
        self.elogs.stats()
    }

    /// Total bytes of PM dedicated to the per-section edge logs (Fig. 9).
    pub fn elog_total_bytes(&self) -> usize {
        self.elogs.total_bytes()
    }

    /// Live (un-snapshotted) degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.vertices.degree(v) as usize
    }

    /// Number of sections currently in the edge array.
    pub fn num_sections(&self) -> usize {
        self.edges.num_segments()
    }

    /// The superblock handle (used by recovery and tests).
    pub(crate) fn superblock(&self) -> &Superblock {
        &self.sb
    }

    // ------------------------------------------------------------------
    // Density-tree helpers (with optional PM write-through for the ablation)
    // ------------------------------------------------------------------

    fn tree_mirror_write(&self, section: usize, occupancy: usize) {
        if let Some(base) = self.tree_mirror {
            let off = base + (section as u64) * 8;
            if (off + 8) as usize <= self.pool.capacity() {
                self.pool.write_u64(off, occupancy as u64);
                self.pool.persist(off, 8);
            }
        }
    }

    fn tree_add(&self, section: usize, n: usize) {
        let mut t = self.tree.lock();
        t.add(section, n);
        let occ = t.occupancy(section);
        drop(t);
        self.tree_mirror_write(section, occ);
    }

    fn tree_set_occupancy(&self, section: usize, occ: usize) {
        self.tree.lock().set_occupancy(section, occ);
        self.tree_mirror_write(section, occ);
    }

    fn section_needs_maintenance(&self, section: usize) -> bool {
        let dense = self.tree.lock().segment_overflowing(section);
        let log_full = self.cfg.use_edge_log
            && self.elogs.used(section) > 0
            && self.elogs.utilization(section) >= self.cfg.elog_merge_threshold;
        dense || log_full
    }

    // ------------------------------------------------------------------
    // Locking helpers
    // ------------------------------------------------------------------

    /// Run `f` while holding the write locks of `sections` (ascending,
    /// deduplicated by the caller).
    pub(crate) fn with_sections_write<R>(&self, sections: &[usize], f: impl FnOnce() -> R) -> R {
        let outer = self.section_locks.read();
        let mut guards = Vec::with_capacity(sections.len());
        for &s in sections {
            if s < outer.len() {
                guards.push(outer[s].write());
            }
        }
        f()
    }

    /// Run `f` while holding the read locks of `sections`.
    pub(crate) fn with_sections_read<R>(&self, sections: &[usize], f: impl FnOnce() -> R) -> R {
        let outer = self.section_locks.read();
        let mut guards = Vec::with_capacity(sections.len());
        for &s in sections {
            if s < outer.len() {
                guards.push(outer[s].read());
            }
        }
        f()
    }

    fn ulog_for_current_thread(&self) -> &Mutex<UndoLog> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let idx = (h.finish() as usize) % self.ulogs.len();
        &self.ulogs[idx]
    }

    // ------------------------------------------------------------------
    // Vertex management
    // ------------------------------------------------------------------

    fn ensure_vertex_range(&self, v: VertexId) {
        self.vertices.ensure(v);
        let prev = self.num_vertices.fetch_max(v + 1, Ordering::AcqRel);
        if v + 1 > prev {
            self.sb.set_num_vertices(&self.pool, (v + 1) as usize);
        }
    }

    /// Place the pivot of a vertex that appeared after initialisation.
    fn place_vertex(&self, v: VertexId) -> GraphResult<()> {
        loop {
            let needs_resize = {
                let _rg = self.resize_lock.read();
                if self.vertices.entry(v).start != NO_START {
                    return Ok(());
                }
                let cap = self.edges.capacity() as u64;
                let t = self.tail.load(Ordering::Acquire);
                if t >= cap {
                    Some(self.edges.num_segments())
                } else {
                    let section = self.edges.section_of(t);
                    let placed = self.with_sections_write(&[section], || {
                        if self.vertices.entry(v).start != NO_START {
                            return true;
                        }
                        let t = self.tail.load(Ordering::Acquire);
                        if t >= cap || self.edges.section_of(t) != section {
                            return false; // moved on; retry
                        }
                        if self.edges.read_slot(t).is_empty() {
                            self.edges.write_slot_persist(t, Slot::Pivot(v));
                            self.vertices.set(
                                v,
                                VertexEntry {
                                    degree: 0,
                                    in_array: 0,
                                    start: t,
                                    elog_head: NO_ELOG,
                                },
                            );
                            self.tree_add(section, 1);
                            self.tail.store(t + 1, Ordering::Release);
                            true
                        } else {
                            self.tail.fetch_max(t + 1, Ordering::AcqRel);
                            false
                        }
                    });
                    if placed {
                        return Ok(());
                    }
                    None
                }
            };
            if let Some(seen_segments) = needs_resize {
                self.resize(seen_segments)?;
            }
        }
    }

    // ------------------------------------------------------------------
    // Edge insertion
    // ------------------------------------------------------------------

    fn insert_record(&self, src: VertexId, dst: VertexId, tombstone: bool) -> GraphResult<()> {
        self.ensure_vertex_range(src.max(dst));
        let mut attempts = 0usize;
        let mut blocked = 0usize;
        loop {
            attempts += 1;
            if attempts > 10_000 {
                return Err(GraphError::Other(format!(
                    "insert of ({src} -> {dst}) did not converge"
                )));
            }
            let action = self.try_insert_once(src, dst, tombstone);
            match action {
                InsertAction::Done => {
                    self.records.fetch_add(1, Ordering::Relaxed);
                    if tombstone {
                        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(());
                }
                InsertAction::Maintain(section) => {
                    self.records.fetch_add(1, Ordering::Relaxed);
                    if tombstone {
                        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
                    }
                    self.maintain(section, false)?;
                    return Ok(());
                }
                InsertAction::MaintainAndRetry(section) => {
                    // The insert could not proceed at all (full section or
                    // full edge log): force the maintenance even if the
                    // density heuristics would not have triggered it yet.
                    blocked += 1;
                    if blocked <= 4 {
                        self.maintain(section, true)?;
                    } else {
                        // Rebalancing alone is not opening a usable slot for
                        // this vertex (e.g. its extent exactly fills a
                        // section and the plan keeps giving it a zero tail
                        // gap).  Growing the array always creates room.
                        self.resize(self.edges.num_segments())?;
                        blocked = 0;
                    }
                }
                InsertAction::Retry => {}
                InsertAction::NeedPlacement => {
                    self.place_vertex(src)?;
                }
            }
        }
    }

    fn try_insert_once(&self, src: VertexId, dst: VertexId, tombstone: bool) -> InsertAction {
        let _rg = self.resize_lock.read();
        let e = self.vertices.entry(src);
        if e.start == NO_START {
            return InsertAction::NeedPlacement;
        }
        let cap = self.edges.capacity() as u64;
        let ip = e.start + 1 + u64::from(e.in_array);
        let s_piv = self.edges.section_of(e.start);
        let s_ip = self.edges.section_of(ip.min(cap - 1));
        let mut sections = vec![s_piv, s_ip];
        sections.sort_unstable();
        sections.dedup();

        self.with_sections_write(&sections, || {
            // Re-validate: a concurrent rebalance may have moved the vertex.
            let e = self.vertices.entry(src);
            if e.start == NO_START {
                return InsertAction::NeedPlacement;
            }
            let ip = e.start + 1 + u64::from(e.in_array);
            if self.edges.section_of(e.start) != s_piv
                || self.edges.section_of(ip.min(cap - 1)) != s_ip
            {
                return InsertAction::Retry;
            }
            let slot = if tombstone {
                Slot::Tombstone(dst)
            } else {
                Slot::Edge(dst)
            };

            // Case 1: the natural slot is free — write in place (no shift).
            if ip < cap && self.edges.read_slot(ip).is_empty() {
                self.edges.write_slot_persist(ip, slot);
                self.vertices.update(src, |v| {
                    v.degree += 1;
                    v.in_array += 1;
                });
                let sec = self.edges.section_of(ip);
                self.tree_add(sec, 1);
                self.tail.fetch_max(ip + 1, Ordering::AcqRel);
                self.stats.array_inserts.fetch_add(1, Ordering::Relaxed);
                return if self.section_needs_maintenance(sec) {
                    InsertAction::Maintain(sec)
                } else {
                    InsertAction::Done
                };
            }

            // Case 2: slot occupied — append to the per-section edge log.
            if self.cfg.use_edge_log {
                match self.elogs.append(s_piv, src, dst, tombstone, e.elog_head) {
                    Ok(idx) => {
                        self.vertices.update(src, |v| {
                            v.degree += 1;
                            v.elog_head = idx;
                        });
                        self.tree_add(s_piv, 1);
                        self.stats.elog_inserts.fetch_add(1, Ordering::Relaxed);
                        if self.section_needs_maintenance(s_piv) {
                            InsertAction::Maintain(s_piv)
                        } else {
                            InsertAction::Done
                        }
                    }
                    Err(_) => InsertAction::MaintainAndRetry(s_piv),
                }
            } else {
                // Ablation "No EL": perform the nearby shift the edge log is
                // designed to avoid.
                self.shift_insert(src, slot, &e, ip, cap)
            }
        })
    }

    /// Nearby-shift insertion (the naive mutable-CSR path, used only when
    /// the edge log is disabled).  Opens a slot for the new record by
    /// shifting the neighbouring run towards the nearest gap in its section
    /// (rightwards if possible, otherwise leftwards), updating the starts of
    /// any vertices whose pivots move.  This is exactly the write
    /// amplification the per-section edge log exists to avoid.
    fn shift_insert(
        &self,
        src: VertexId,
        slot: Slot,
        e: &VertexEntry,
        ip: u64,
        cap: u64,
    ) -> InsertAction {
        let _ = e;
        let sec = self.edges.section_of(ip.min(cap - 1));
        let range = self.edges.section_slots(sec);

        // Prefer a gap at or after the insertion point: shift [ip, gap)
        // right by one and drop the record at ip.  (When the insertion
        // point falls past the end of the array there is nothing to search
        // on the right; the left-shift below still applies.)
        if let Some(gap) = (ip..range.end.min(cap)).find(|&j| self.edges.read_slot(j).is_empty()) {
            let run = self.edges.read_raw(ip, (gap - ip) as usize);
            for (k, &word) in run.iter().enumerate().rev() {
                self.edges.write_slot(ip + k as u64 + 1, Slot::decode(word));
            }
            self.edges.write_slot(ip, slot);
            let touched = (gap - ip + 1) as usize * crate::slot::SLOT_BYTES;
            self.pool.persist(self.edges.slot_offset(ip), touched);
            for (k, &word) in run.iter().enumerate() {
                if let Slot::Pivot(v) = Slot::decode(word) {
                    self.vertices.update(v, |ve| ve.start = ip + k as u64 + 1);
                }
            }
            self.vertices.update(src, |v| {
                v.degree += 1;
                v.in_array += 1;
            });
            self.tree_add(sec, 1);
            self.tail.fetch_max(gap + 1, Ordering::AcqRel);
            self.stats.shift_inserts.fetch_add(1, Ordering::Relaxed);
            self.stats
                .shifted_slots
                .fetch_add(run.len() as u64, Ordering::Relaxed);
            return if self.section_needs_maintenance(sec) {
                InsertAction::Maintain(sec)
            } else {
                InsertAction::Done
            };
        }

        // Otherwise look for a gap before the source's pivot (extents are
        // contiguous, so any earlier gap precedes the pivot) and shift the
        // run [gap+1, ip) left by one; the record lands at ip − 1.
        let left_end = ip.min(cap);
        if left_end > range.start {
            if let Some(gap) = (range.start..left_end)
                .rev()
                .find(|&j| self.edges.read_slot(j).is_empty())
            {
                let run_start = gap + 1;
                let run = self
                    .edges
                    .read_raw(run_start, (left_end - run_start) as usize);
                for (k, &word) in run.iter().enumerate() {
                    self.edges.write_slot(gap + k as u64, Slot::decode(word));
                }
                self.edges.write_slot(ip - 1, slot);
                let touched = (ip - gap) as usize * crate::slot::SLOT_BYTES;
                self.pool.persist(self.edges.slot_offset(gap), touched);
                for (k, &word) in run.iter().enumerate() {
                    if let Slot::Pivot(v) = Slot::decode(word) {
                        self.vertices.update(v, |ve| ve.start = gap + k as u64);
                    }
                }
                self.vertices.update(src, |v| {
                    v.degree += 1;
                    v.in_array += 1;
                });
                self.tree_add(sec, 1);
                self.stats.shift_inserts.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .shifted_slots
                    .fetch_add(run.len() as u64, Ordering::Relaxed);
                return if self.section_needs_maintenance(sec) {
                    InsertAction::Maintain(sec)
                } else {
                    InsertAction::Done
                };
            }
        }

        // Section completely full: rebalance (its density is above any
        // threshold) and retry.
        InsertAction::MaintainAndRetry(sec)
    }

    // ------------------------------------------------------------------
    // Maintenance: rebalancing, merging, resizing
    // ------------------------------------------------------------------

    /// Bring `section` back within its density bounds (and fold its edge log
    /// back into the array), rebalancing a window or resizing as needed.
    ///
    /// With `force` set, the density heuristics are bypassed and the section
    /// is rebalanced unconditionally — used when an insert found no room at
    /// all (full section, full edge log) even though the aggregate density
    /// looks healthy.
    fn maintain(&self, section: usize, force: bool) -> GraphResult<()> {
        let decision = {
            let _rg = self.resize_lock.read();
            if section >= self.edges.num_segments() {
                return Ok(()); // a resize replaced the geometry
            }
            if !force && !self.section_needs_maintenance(section) {
                return Ok(());
            }
            (
                self.tree.lock().find_rebalance_window(section, 1),
                self.edges.num_segments(),
            )
        };
        match decision {
            (Some(w), seen_segments) => {
                let done = {
                    let _rg = self.resize_lock.read();
                    self.rebalance_window(w.first_segment, w.num_segments)?
                };
                if done {
                    return Ok(());
                }
                // The chosen window could not absorb its own edge logs —
                // grow the whole array instead.
                self.resize(seen_segments)
            }
            (None, seen_segments) => self.resize(seen_segments),
        }
    }

    /// Rebalance the window starting at section `first` spanning `count`
    /// sections: merge the window's edge logs, redistribute gaps with
    /// degree-weighted (VCSR) spreading and write the result back
    /// crash-consistently.  Returns `false` when the window needs to be
    /// re-planned (e.g. the geometry changed under us).
    ///
    /// Caller must hold the resize read lock.
    fn rebalance_window(&self, first: usize, count: usize) -> GraphResult<bool> {
        let mut first = first;
        let mut count = count;
        let mut sections: Vec<usize> = (first..first + count).collect();
        loop {
            let outcome = self.with_sections_write(&sections, || {
                if first + count > self.edges.num_segments() {
                    return RebalanceOutcome::Stale;
                }
                let window_start = self.edges.section_slots(first).start;
                let window_limit = self.edges.section_slots(first + count - 1).end;

                // Skip any leading continuation of a vertex whose pivot lies
                // before the window: those slots are left untouched.
                let head = self
                    .edges
                    .read_raw(window_start, (window_limit - window_start) as usize);
                let mut gstart = window_start;
                for &word in &head {
                    if Slot::decode(word).is_edge_record() {
                        gstart += 1;
                    } else {
                        break;
                    }
                }

                // Collect the vertices whose pivots fall inside the window.
                let mut items: Vec<(VertexId, Vec<u64>)> = Vec::new();
                for (i, &word) in head[(gstart - window_start) as usize..].iter().enumerate() {
                    let _ = i;
                    match Slot::decode(word) {
                        Slot::Pivot(v) => items.push((v, Vec::new())),
                        s if s.is_edge_record() => {
                            if let Some(last) = items.last_mut() {
                                last.1.push(word);
                            }
                        }
                        _ => {}
                    }
                }
                if items.is_empty() {
                    // The window holds only the continuation of a vertex
                    // whose pivot lies before it: widen towards that pivot.
                    return RebalanceOutcome::Widen;
                }

                // The last vertex's extent may continue past the window.  Its
                // true length is in the DRAM metadata (stable: we hold its
                // pivot-section lock).  If it reaches into sections we have
                // not locked yet, widen the lock set and retry.
                let (last_v, _) = *items.last().unwrap();
                let last_e = self.vertices.entry(last_v);
                let last_end = last_e.start + 1 + u64::from(last_e.in_array);
                let gend = window_limit.max(last_end);
                let needed_last_section = self.edges.section_of(gend.saturating_sub(1).max(gstart));
                if needed_last_section >= first + sections.len() {
                    return RebalanceOutcome::NeedSections(needed_last_section);
                }
                if last_end > window_limit {
                    // Re-read the spill-over part of the last extent.
                    let spill = self
                        .edges
                        .read_raw(window_limit, (last_end - window_limit) as usize);
                    items.last_mut().unwrap().1.extend(
                        spill
                            .iter()
                            .copied()
                            .filter(|&w| Slot::decode(w).is_edge_record()),
                    );
                }

                // Fold in every vertex's edge-log chain (they live in the
                // window sections by construction).
                let mut extents = Vec::with_capacity(items.len());
                let mut contents: Vec<Vec<u64>> = Vec::with_capacity(items.len());
                let mut merged_any_log = false;
                for (v, words) in &items {
                    let e = self.vertices.entry(*v);
                    let mut all = Vec::with_capacity(1 + words.len() + 4);
                    all.push(Slot::Pivot(*v).encode());
                    all.extend_from_slice(words);
                    if e.elog_head != NO_ELOG {
                        merged_any_log = true;
                        for le in self.elogs.chain_oldest_first(e.elog_head) {
                            let s = if le.tombstone {
                                Slot::Tombstone(le.dst)
                            } else {
                                Slot::Edge(le.dst)
                            };
                            all.push(s.encode());
                        }
                    }
                    extents.push(Extent {
                        id: *v,
                        count: all.len(),
                    });
                    contents.push(all);
                }

                let capacity = (gend - gstart) as usize;
                let total: usize = extents.iter().map(|e| e.count).sum();
                if total > capacity {
                    // The window cannot absorb its own edge logs: try the
                    // parent window before giving up and resizing.
                    return RebalanceOutcome::Widen;
                }
                let plan = plan_weighted(&extents, capacity);

                // Build the new window image.
                let mut words = vec![0u64; capacity];
                for (p, content) in plan.iter().zip(&contents) {
                    words[p.start..p.start + content.len()].copy_from_slice(content);
                }
                let bytes = EdgeArray::encode_raw(&words);
                let window_off = self.edges.slot_offset(gstart);

                // Crash-consistent overwrite.
                let write_result = if self.cfg.use_undo_log {
                    self.ulog_for_current_thread()
                        .lock()
                        .protected_overwrite(window_off, &bytes)
                } else {
                    // Ablation: PMDK-style transaction, including the journal
                    // allocation the paper calls out as expensive.
                    TxContext::new(&self.pool, bytes.len() + 64).and_then(|ctx| {
                        let mut tx = ctx.begin()?;
                        tx.add_range(window_off, bytes.len())?;
                        self.pool.write(window_off, &bytes);
                        tx.commit();
                        Ok(())
                    })
                };
                if let Err(e) = write_result {
                    return RebalanceOutcome::Error(GraphError::OutOfSpace(e.to_string()));
                }

                // The logs of the window sections are now folded in.
                for s in first..first + count {
                    if self.elogs.used(s) > 0 {
                        self.elogs.clear(s);
                    }
                }

                // Refresh DRAM metadata.
                for (p, content) in plan.iter().zip(&contents) {
                    self.vertices.update(p.id, |v| {
                        v.start = gstart + p.start as u64;
                        v.in_array = (content.len() - 1) as u32;
                        v.elog_head = NO_ELOG;
                    });
                }
                let last_section = self.edges.section_of(gend.saturating_sub(1));
                for s in first..=last_section {
                    let range = self.edges.section_slots(s);
                    let raw = self.edges.read_raw(range.start, self.cfg.segment_size);
                    let occupied = raw.iter().filter(|&&w| w != 0).count() + self.elogs.used(s);
                    self.tree_set_occupancy(s, occupied);
                }
                self.tail.fetch_max(gend, Ordering::AcqRel);
                self.stats.rebalances.fetch_add(1, Ordering::Relaxed);
                if merged_any_log {
                    self.stats.merges.fetch_add(1, Ordering::Relaxed);
                }
                RebalanceOutcome::Done(true)
            });
            match outcome {
                RebalanceOutcome::Done(ok) => return Ok(ok),
                RebalanceOutcome::Stale => return Ok(true),
                RebalanceOutcome::NeedSections(up_to) => {
                    sections = (first..=up_to).collect();
                }
                RebalanceOutcome::Widen => {
                    let num_segments = self.edges.num_segments();
                    if count >= num_segments {
                        return Ok(false); // even the root window cannot help
                    }
                    count = (count * 2).min(num_segments);
                    first = (first / count) * count;
                    sections = (first..first + count).collect();
                }
                RebalanceOutcome::Error(e) => return Err(e),
            }
        }
    }

    /// Double (or more) the edge array, merging every edge log and spreading
    /// all extents with degree-weighted gaps across the new region.
    ///
    /// The new region is written in full and published with a single atomic
    /// layout-block switch, so a crash at any point leaves either the old or
    /// the new generation fully intact — no undo logging required.
    ///
    /// `seen_segments` is the geometry the caller observed when it decided a
    /// resize was necessary; if another thread already grew the array in the
    /// meantime, the call is a no-op.
    pub(crate) fn resize(&self, seen_segments: usize) -> GraphResult<()> {
        let _wg = self.resize_lock.write();
        // Re-check under the exclusive lock: another thread may have already
        // resized while we waited.
        if self.edges.num_segments() != seen_segments {
            return Ok(());
        }

        // Gather every vertex in positional order, folding in edge logs.
        let mut items: Vec<(VertexId, Vec<u64>)> = Vec::new();
        self.edges.scan(|_, slot| match slot {
            Slot::Pivot(v) => items.push((v, Vec::new())),
            s if s.is_edge_record() => {
                if let Some(last) = items.last_mut() {
                    last.1.push(s.encode());
                }
            }
            _ => {}
        });
        let mut extents = Vec::with_capacity(items.len());
        let mut contents = Vec::with_capacity(items.len());
        for (v, words) in &items {
            let e = self.vertices.entry(*v);
            let mut all = Vec::with_capacity(1 + words.len() + 4);
            all.push(Slot::Pivot(*v).encode());
            all.extend_from_slice(words);
            if e.elog_head != NO_ELOG {
                for le in self.elogs.chain_oldest_first(e.elog_head) {
                    let s = if le.tombstone {
                        Slot::Tombstone(le.dst)
                    } else {
                        Slot::Edge(le.dst)
                    };
                    all.push(s.encode());
                }
            }
            extents.push(Extent {
                id: *v,
                count: all.len(),
            });
            contents.push(all);
        }
        let total: usize = extents.iter().map(|e| e.count).sum();

        // Choose a new geometry that brings the root density to ~50 %.
        let mut num_segments = self.edges.num_segments().max(1);
        while (total as f64) / ((num_segments * self.cfg.segment_size) as f64) > 0.5 {
            num_segments *= 2;
        }
        if num_segments <= self.edges.num_segments() {
            num_segments = self.edges.num_segments() * 2;
        }
        let new_capacity = num_segments * self.cfg.segment_size;
        let plan = plan_weighted(&extents, new_capacity);

        // Build and persist the new generation.
        let new_base = self
            .edges
            .allocate_grown(num_segments)
            .map_err(|e| GraphError::OutOfSpace(e.to_string()))?;
        let mut words = vec![0u64; new_capacity];
        for (p, content) in plan.iter().zip(&contents) {
            words[p.start..p.start + content.len()].copy_from_slice(content);
        }
        let bytes = EdgeArray::encode_raw(&words);
        self.pool.write(new_base, &bytes);
        self.pool.persist(new_base, bytes.len());

        let new_elog_base = self
            .elogs
            .grow(num_segments)
            .map_err(|e| GraphError::OutOfSpace(e.to_string()))?;
        self.sb
            .publish_layout(
                &self.pool,
                Layout {
                    edge_base: new_base,
                    num_segments,
                    elog_base: new_elog_base,
                },
            )
            .map_err(pm_err)?;

        // Switch the volatile view over to the new generation.
        self.edges.switch_to(new_base, num_segments);
        for (p, content) in plan.iter().zip(&contents) {
            self.vertices.update(p.id, |v| {
                v.start = p.start as u64;
                v.in_array = (content.len() - 1) as u32;
                v.elog_head = NO_ELOG;
            });
        }
        let geom = SegmentGeometry::new(self.cfg.segment_size, num_segments);
        let mut tree = DensityTree::new(geom, self.cfg.density);
        for (i, chunk) in words.chunks(self.cfg.segment_size).enumerate() {
            tree.set_occupancy(i, chunk.iter().filter(|&&w| w != 0).count());
        }
        *self.tree.lock() = tree;
        *self.section_locks.write() = (0..num_segments).map(|_| RwLock::new(())).collect();
        let tail = plan.last().map_or(0, |p| (p.start + p.count) as u64);
        self.tail.store(tail, Ordering::Release);
        self.stats.resizes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Capture a consistent view of the latest graph for an analysis task
    /// (the paper's `g.consistent_view()`): allocates the task's Degree
    /// Cache and copies every vertex's current degree into it.
    pub fn consistent_view(&self) -> DgapSnapshot<'_> {
        let degrees = self.vertices.snapshot_degrees();
        let num_edges = degrees.iter().map(|&d| d as usize).sum();
        DgapSnapshot {
            graph: self,
            degrees,
            num_edges,
        }
    }

    /// Read up to `needed` edge records of `v`, in insertion order, into
    /// `out` (raw, tombstones included).  Used by the snapshot.
    fn read_records(&self, v: VertexId, needed: usize, out: &mut Vec<Slot>) {
        out.clear();
        if needed == 0 {
            return;
        }
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            if attempts > 10_000 {
                return;
            }
            let _rg = self.resize_lock.read();
            let e = self.vertices.entry(v);
            if e.start == NO_START {
                return;
            }
            let cap = self.edges.capacity() as u64;
            let first_sec = self.edges.section_of(e.start);
            let span_end = (e.start + 1 + u64::from(e.in_array)).min(cap);
            let last_sec = self
                .edges
                .section_of(span_end.saturating_sub(1).max(e.start));
            let sections: Vec<usize> = (first_sec..=last_sec).collect();
            let ok = self.with_sections_read(&sections, || {
                let e2 = self.vertices.entry(v);
                if e2.start != e.start {
                    return false;
                }
                let take_from_array = (e2.in_array as usize).min(needed);
                if take_from_array > 0 {
                    let raw = self.edges.read_raw(e2.start + 1, take_from_array);
                    for word in raw {
                        out.push(Slot::decode(word));
                    }
                }
                if out.len() < needed && e2.elog_head != NO_ELOG {
                    let chain = self.elogs.chain_oldest_first(e2.elog_head);
                    for le in chain.into_iter().take(needed - out.len()) {
                        out.push(if le.tombstone {
                            Slot::Tombstone(le.dst)
                        } else {
                            Slot::Edge(le.dst)
                        });
                    }
                }
                true
            });
            if ok {
                return;
            }
            out.clear();
        }
    }

    // ------------------------------------------------------------------
    // Consistency checking (tests and debugging)
    // ------------------------------------------------------------------

    /// Verify internal invariants: every placed vertex's pivot is where the
    /// DRAM metadata says, extents are contiguous, and degrees match the
    /// number of stored records.  Panics on violation (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let n = self.num_vertices.load(Ordering::Acquire);
        for v in 0..n {
            let e = self.vertices.entry(v);
            if e.start == NO_START {
                continue;
            }
            assert_eq!(
                self.edges.read_slot(e.start),
                Slot::Pivot(v),
                "vertex {v}: pivot not at recorded start {}",
                e.start
            );
            for k in 0..u64::from(e.in_array) {
                let s = self.edges.read_slot(e.start + 1 + k);
                assert!(
                    s.is_edge_record(),
                    "vertex {v}: slot {} should hold an edge record, found {s:?}",
                    e.start + 1 + k
                );
            }
            let elog_count = if e.elog_head != NO_ELOG {
                self.elogs.chain_oldest_first(e.elog_head).len()
            } else {
                0
            };
            assert_eq!(
                e.degree as usize,
                e.in_array as usize + elog_count,
                "vertex {v}: degree mismatch"
            );
        }
    }
}

impl Dgap {
    // ------------------------------------------------------------------
    // Internal helpers shared with the recovery module
    // ------------------------------------------------------------------

    /// Assemble an instance from already-attached components (used by
    /// [`Dgap::open`]); the caller then restores the DRAM metadata.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        pool: Arc<PmemPool>,
        cfg: DgapConfig,
        sb: Superblock,
        vertices: VertexArray,
        edges: EdgeArray,
        elogs: EdgeLogs,
        ulogs: Vec<Mutex<UndoLog>>,
        tree: DensityTree,
    ) -> Self {
        let num_segments = edges.num_segments();
        let num_vertices = vertices.len() as u64;
        Dgap {
            pool,
            sb,
            vertices,
            edges,
            elogs,
            ulogs,
            tree: Mutex::new(tree),
            tree_mirror: None,
            section_locks: RwLock::new((0..num_segments).map(|_| RwLock::new(())).collect()),
            resize_lock: RwLock::new(()),
            tail: AtomicU64::new(0),
            records: AtomicU64::new(0),
            num_vertices: AtomicU64::new(num_vertices),
            stats: DgapStats::default(),
            cfg,
        }
    }

    pub(crate) fn num_edges_internal(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    pub(crate) fn tail_value(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    pub(crate) fn ulogs_for_recovery(&self) -> &[Mutex<UndoLog>] {
        &self.ulogs
    }

    pub(crate) fn stats_recovered(&self, n: u64) {
        self.stats
            .recovered_rebalances
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Install recovered / reloaded DRAM state.
    pub(crate) fn restore_state(
        &self,
        entries: Vec<VertexEntry>,
        occupancies: Vec<usize>,
        tail: u64,
        records: u64,
    ) {
        self.vertices.load_entries(&entries);
        self.num_vertices
            .store(entries.len() as u64, Ordering::Release);
        let geom = SegmentGeometry::new(self.cfg.segment_size, self.edges.num_segments());
        let tree = DensityTree::rebuild_from(geom, self.cfg.density, occupancies);
        *self.tree.lock() = tree;
        self.tail.store(tail, Ordering::Release);
        self.records.store(records, Ordering::Relaxed);
    }
}

enum RebalanceOutcome {
    Done(bool),
    Stale,
    NeedSections(usize),
    Widen,
    Error(GraphError),
}

fn pm_err(e: pmem::PmemError) -> GraphError {
    GraphError::OutOfSpace(e.to_string())
}

// ----------------------------------------------------------------------
// Trait implementations
// ----------------------------------------------------------------------

impl DynamicGraph for Dgap {
    fn insert_vertex(&self, v: VertexId) -> GraphResult<()> {
        self.ensure_vertex_range(v);
        Ok(())
    }

    fn insert_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<()> {
        self.insert_record(src, dst, false)
    }

    fn delete_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<bool> {
        self.insert_record(src, dst, true).map(|()| true)
    }

    fn num_vertices(&self) -> usize {
        self.num_vertices.load(Ordering::Acquire) as usize
    }

    fn num_edges(&self) -> usize {
        self.records.load(Ordering::Relaxed) as usize
    }

    fn flush(&self) {
        // Every insert persists before returning; a fence is all that is
        // left to order anything still in flight.
        self.pool.fence();
    }

    fn system_name(&self) -> &'static str {
        "DGAP"
    }
}

impl SnapshotSource for Dgap {
    type View<'a> = DgapSnapshot<'a>;

    fn consistent_view(&self) -> DgapSnapshot<'_> {
        Dgap::consistent_view(self)
    }
}

/// A consistent snapshot of a [`Dgap`] graph (the paper's per-task Degree
/// Cache).  Cheap to create — it copies only the degree array — and safe to
/// use while writer threads keep inserting.
pub struct DgapSnapshot<'g> {
    graph: &'g Dgap,
    degrees: Vec<u32>,
    num_edges: usize,
}

impl DgapSnapshot<'_> {
    /// Resolve the visible records of `v` (applying tombstones) into a
    /// neighbour list.
    fn resolve(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let needed = self.degrees.get(v as usize).copied().unwrap_or(0) as usize;
        if needed == 0 {
            return;
        }
        let mut records = Vec::with_capacity(needed);
        self.graph.read_records(v, needed, &mut records);
        for slot in records {
            match slot {
                Slot::Edge(d) => out.push(d),
                Slot::Tombstone(d) => {
                    if let Some(pos) = out.iter().rposition(|&x| x == d) {
                        out.remove(pos);
                    }
                }
                _ => {}
            }
        }
    }
}

impl GraphView for DgapSnapshot<'_> {
    fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degrees.get(v as usize).copied().unwrap_or(0) as usize
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        let mut out = Vec::new();
        self.resolve(v, &mut out);
        for d in out {
            f(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    pub(crate) fn small_graph() -> Dgap {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        Dgap::create(pool, DgapConfig::small_test()).unwrap()
    }

    #[test]
    fn create_places_all_initial_pivots() {
        let g = small_graph();
        assert_eq!(DynamicGraph::num_vertices(&g), 64);
        g.check_invariants();
        // Every initial vertex has a pivot and zero degree.
        for v in 0..64u64 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn insert_and_read_back_single_vertex() {
        let g = small_graph();
        for dst in [5u64, 9, 1, 1, 7] {
            g.insert_edge(3, dst).unwrap();
        }
        assert_eq!(g.degree(3), 5);
        let view = g.consistent_view();
        assert_eq!(view.degree(3), 5);
        assert_eq!(view.neighbors(3), vec![5, 9, 1, 1, 7]);
        assert_eq!(view.neighbors(5), Vec::<u64>::new());
        g.check_invariants();
    }

    #[test]
    fn insertion_order_is_preserved_across_many_edges() {
        let g = small_graph();
        let expected: Vec<u64> = (0..200).map(|i| (i * 7) % 64).collect();
        for &dst in &expected {
            g.insert_edge(10, dst).unwrap();
        }
        let view = g.consistent_view();
        assert_eq!(view.neighbors(10), expected);
        g.check_invariants();
        assert!(g.stats().rebalances + g.stats().resizes > 0);
    }

    #[test]
    fn many_vertices_many_edges_match_reference() {
        use crate::traits::ReferenceGraph;
        let g = small_graph();
        let mut reference = ReferenceGraph::new(64);
        let mut x = 0x243f_6a88u64;
        for _ in 0..3000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = (x >> 33) % 64;
            let dst = (x >> 20) % 64;
            g.insert_edge(src, dst).unwrap();
            reference.add_edge(src, dst);
        }
        let view = g.consistent_view();
        for v in 0..64u64 {
            assert_eq!(
                view.neighbors(v),
                reference.neighbors(v),
                "vertex {v} neighbour mismatch"
            );
        }
        g.check_invariants();
        assert_eq!(DynamicGraph::num_edges(&g), 3000);
    }

    #[test]
    fn skewed_insertions_trigger_merges_and_resizes() {
        let g = small_graph();
        // Vertex 0 receives most edges: forces elog use, merges and growth.
        let mut expected_degree_0 = 0usize;
        for i in 0..2000u64 {
            g.insert_edge(0, i % 64).unwrap();
            expected_degree_0 += 1;
            if i % 10 == 0 {
                g.insert_edge(i % 64, 0).unwrap();
                if i % 64 == 0 {
                    expected_degree_0 += 1;
                }
            }
        }
        let s = g.stats();
        assert!(s.elog_inserts > 0, "edge log should absorb occupied slots");
        assert!(s.rebalances > 0);
        let view = g.consistent_view();
        assert_eq!(view.degree(0), expected_degree_0);
        g.check_invariants();
    }

    #[test]
    fn delete_edges_are_tombstoned_and_filtered() {
        let g = small_graph();
        g.insert_edge(1, 2).unwrap();
        g.insert_edge(1, 3).unwrap();
        g.insert_edge(1, 2).unwrap();
        assert!(g.delete_edge(1, 2).unwrap());
        let view = g.consistent_view();
        // One of the two (1 -> 2) edges is cancelled.
        assert_eq!(view.neighbors(1), vec![2, 3]);
        // Degree counts records (paper semantics), so it includes the
        // tombstone.
        assert_eq!(view.degree(1), 4);
        assert_eq!(g.stats().deletes, 1);
    }

    #[test]
    fn snapshot_isolation_hides_later_inserts() {
        let g = small_graph();
        g.insert_edge(2, 7).unwrap();
        g.insert_edge(2, 8).unwrap();
        let view = g.consistent_view();
        g.insert_edge(2, 9).unwrap();
        g.insert_edge(2, 10).unwrap();
        assert_eq!(view.degree(2), 2);
        assert_eq!(view.neighbors(2), vec![7, 8]);
        // A fresh view sees everything.
        let view2 = g.consistent_view();
        assert_eq!(view2.neighbors(2), vec![7, 8, 9, 10]);
    }

    #[test]
    fn snapshot_survives_concurrent_rebalances() {
        let g = small_graph();
        for dst in 0..20u64 {
            g.insert_edge(4, dst).unwrap();
        }
        let view = g.consistent_view();
        let before = view.neighbors(4);
        // Force lots of movement (merges, rebalances, at least one resize).
        for i in 0..3000u64 {
            g.insert_edge(i % 64, (i * 13) % 64).unwrap();
        }
        assert!(g.stats().resizes >= 1 || g.stats().rebalances >= 1);
        assert_eq!(view.neighbors(4), before, "snapshot must be stable");
    }

    #[test]
    fn vertices_beyond_initial_estimate_are_placed() {
        let g = small_graph();
        g.insert_edge(100, 5).unwrap();
        g.insert_edge(100, 6).unwrap();
        g.insert_edge(5, 100).unwrap();
        assert_eq!(DynamicGraph::num_vertices(&g), 101);
        let view = g.consistent_view();
        assert_eq!(view.neighbors(100), vec![5, 6]);
        assert_eq!(view.neighbors(5), vec![100]);
        g.check_invariants();
    }

    #[test]
    fn insert_vertex_is_idempotent() {
        let g = small_graph();
        g.insert_vertex(10).unwrap();
        g.insert_vertex(10).unwrap();
        g.insert_vertex(200).unwrap();
        assert_eq!(DynamicGraph::num_vertices(&g), 201);
    }

    #[test]
    fn concurrent_writers_preserve_all_edges() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let g = Arc::new(Dgap::create(pool, DgapConfig::small_test().writer_threads(4)).unwrap());
        let threads = 4u64;
        let per_thread = 500u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let src = (t * 16 + i % 16) % 64;
                    let dst = (i * 7 + t) % 64;
                    g.insert_edge(src, dst).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            DynamicGraph::num_edges(&*g),
            (threads * per_thread) as usize
        );
        let view = g.consistent_view();
        let total: usize = (0..64u64).map(|v| view.neighbors(v).len()).sum();
        assert_eq!(total, (threads * per_thread) as usize);
        g.check_invariants();
    }

    #[test]
    fn concurrent_reads_during_writes_do_not_panic() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let g = Arc::new(Dgap::create(pool, DgapConfig::small_test().writer_threads(2)).unwrap());
        for i in 0..200u64 {
            g.insert_edge(i % 64, (i * 3) % 64).unwrap();
        }
        let writer = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || {
                for i in 0..2000u64 {
                    g.insert_edge(i % 64, (i * 11) % 64).unwrap();
                }
            })
        };
        let reader = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let view = g.consistent_view();
                    let mut sum = 0usize;
                    for v in 0..64u64 {
                        sum += view.neighbors(v).len();
                    }
                    // The snapshot can never expose more records than the
                    // total number of inserts the test issues (200 seed +
                    // 2000 from the writer thread).
                    assert!(sum <= 2200, "snapshot exposed {sum} records");
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        g.check_invariants();
    }

    #[test]
    fn flush_is_a_noop_fence() {
        let g = small_graph();
        g.insert_edge(0, 1).unwrap();
        g.flush();
        assert_eq!(g.system_name(), "DGAP");
    }

    #[test]
    fn stats_report_component_usage() {
        let g = small_graph();
        for i in 0..500u64 {
            g.insert_edge(i % 8, (i * 3) % 64).unwrap();
        }
        let s = g.stats();
        assert!(s.array_inserts > 0);
        assert_eq!(
            s.array_inserts + s.elog_inserts + s.shift_inserts,
            500,
            "every record is inserted through exactly one path: {s:?}"
        );
    }
}
