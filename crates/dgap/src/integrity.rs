//! End-to-end integrity of DGAP's persistent state.
//!
//! Every durable region DGAP writes is sealed with a CRC32C at its existing
//! flush barrier: the pool header, the superblock, layout blocks, undo-log
//! headers (and the backed-up window data of an armed log), every edge-log
//! record, and — at graceful shutdown — the metadata backup blob and a
//! per-section CRC table over the edge array.  This module is the read
//! side: a verify pass that sweeps those seals and classifies each region
//! as
//!
//! * **clean** — all checksums matched;
//! * **repaired** — a mismatch whose damage is provably reconstructible
//!   from redundant state (garbage past an edge-log tail is re-zeroed, a
//!   corrupt disarmed undo-log header is re-initialised, a corrupt
//!   metadata backup falls back to a full crash scan, a corrupt CRC table
//!   is discarded — it holds verification metadata only);
//! * **fatal** — live data fails its checksum with no redundant copy.
//!   The open refuses with [`GraphError::Corrupted`] rather than serve
//!   wrong edges; a sharded deployment quarantines the shard and keeps
//!   serving the survivors in degraded mode.
//!
//! [`Dgap::open_verified`](crate::graph::Dgap::open_verified) runs the
//! pass on every open.  [`Dgap::verify`] runs it on demand against a live
//! instance — the background scrubber's entry point.
//! [`Dgap::covered_regions`] enumerates the sealed regions so the
//! media-fault harness can aim injected faults at bytes the pass is
//! guaranteed to cover.  Section sweeps reuse the work-stealing pool the
//! parallel crash scan runs on.

use crate::graph::Dgap;
use crate::meta::Superblock;
use crate::slot::SLOT_BYTES;
use crate::traits::GraphError;
use pmem::{crc32c, PmemOffset, PmemPool};

/// Below this many bytes a region sweep stays sequential — the fork
/// overhead outweighs the checksumming.
const PARALLEL_VERIFY_MIN_BYTES: usize = 1 << 17;

/// Classification of one verified region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionState {
    /// All checksums matched.
    Clean,
    /// A mismatch was found but repaired (or routed around) from redundant
    /// state, with no data loss.
    Repaired {
        /// What was wrong and how it was repaired.
        detail: String,
    },
    /// A mismatch in live data with no redundant copy: the region cannot
    /// be trusted and the instance must not serve from it.
    Fatal {
        /// What exactly failed.
        detail: String,
    },
}

/// One region's verification outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionReport {
    /// Region name (`"superblock"`, `"edge section 3"`, ...).
    pub region: String,
    /// Pool byte offset of the region (or of the failing record).
    pub offset: PmemOffset,
    /// Length of the verified region in bytes.
    pub len: u64,
    /// Outcome.
    pub state: RegionState,
}

/// The outcome of a full verify pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Per-region outcomes, in sweep order.
    pub regions: Vec<RegionReport>,
}

impl VerifyReport {
    pub(crate) fn push(&mut self, r: RegionReport) {
        self.regions.push(r);
    }

    /// `true` if any region failed fatally.
    pub fn is_fatal(&self) -> bool {
        self.first_fatal().is_some()
    }

    /// The first fatal region, if any.
    pub fn first_fatal(&self) -> Option<&RegionReport> {
        self.regions
            .iter()
            .find(|r| matches!(r.state, RegionState::Fatal { .. }))
    }

    /// Regions that were repaired during the pass.
    pub fn repaired(&self) -> Vec<&RegionReport> {
        self.regions
            .iter()
            .filter(|r| matches!(r.state, RegionState::Repaired { .. }))
            .collect()
    }

    /// Total bytes the pass covered.
    pub fn bytes_verified(&self) -> u64 {
        self.regions.iter().map(|r| r.len).sum()
    }

    /// Fold the first fatal region into a structured error carrying the
    /// pool's source path and the failing byte offset.
    pub fn fatal_error(&self, pool: &PmemPool) -> Option<GraphError> {
        self.first_fatal().map(|r| {
            let detail = match &r.state {
                RegionState::Fatal { detail } => detail.as_str(),
                _ => unreachable!(),
            };
            GraphError::Corrupted {
                region: r.region.clone(),
                detail: format!("{} @ +{}: {detail}", pool.label(), r.offset),
            }
        })
    }
}

fn clean(region: &str, offset: PmemOffset, len: u64) -> RegionReport {
    RegionReport {
        region: region.to_string(),
        offset,
        len,
        state: RegionState::Clean,
    }
}

fn repaired(region: &str, offset: PmemOffset, len: u64, detail: String) -> RegionReport {
    RegionReport {
        region: region.to_string(),
        offset,
        len,
        state: RegionState::Repaired { detail },
    }
}

fn fatal(region: &str, offset: PmemOffset, len: u64, detail: String) -> RegionReport {
    RegionReport {
        region: region.to_string(),
        offset,
        len,
        state: RegionState::Fatal { detail },
    }
}

/// A persistent region the verify pass covers.
///
/// The media-fault harness aims injected faults here: damage inside a
/// covered region is always detected at the next open.
/// `covered_after_crash` gates which regions stay covered when the open
/// takes the crash path — the metadata backup, the section CRC table and
/// the edge-array seals are only fresh after a graceful shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveredRegion {
    /// Region name, matching the verify report's naming.
    pub name: String,
    /// Pool byte offset of the region.
    pub offset: PmemOffset,
    /// Region length in bytes.
    pub len: u64,
    /// Whether the region is still verified when the next open takes the
    /// crash-recovery path.
    pub covered_after_crash: bool,
}

pub(crate) fn pool_header_report(pool: &PmemPool) -> RegionReport {
    let len = pool.header_bytes() as u64;
    match pool.verify_header() {
        Ok(()) => clean("pool header", 0, len),
        Err(e) => fatal("pool header", 0, len, e.to_string()),
    }
}

pub(crate) fn superblock_report(pool: &PmemPool, sb: &Superblock) -> RegionReport {
    let (off, len) = sb.region();
    match sb.verify(pool) {
        Ok(()) => clean("superblock", off, len),
        Err(d) => fatal("superblock", off, len, d),
    }
}

pub(crate) fn layout_report(pool: &PmemPool, sb: &Superblock) -> RegionReport {
    let (off, len) = sb.layout_block(pool).unwrap_or((0, 0));
    match sb.verify_layout(pool) {
        Ok(()) => clean("layout block", off, len),
        Err((block, d)) => fatal("layout block", block, len, d),
    }
}

impl Dgap {
    /// On-demand integrity pass over a live instance.
    ///
    /// Sweeps every CRC-sealed region, repairing what is repairable
    /// (re-zeroing garbage past an edge-log tail) and reporting the rest.
    /// Safe to run concurrently with writers: each edge-log section is
    /// swept under its section lock, undo logs under their mutexes.  The
    /// graceful-shutdown seals (metadata backup, section CRC table) are
    /// only checked while the `NORMAL_SHUTDOWN` flag is still set — on a
    /// running instance they are stale by construction and skipped.
    ///
    /// Never fails: fatal regions are reported, not raised, so a scrubber
    /// can count them and the caller decides whether to quarantine.
    pub fn verify(&self) -> VerifyReport {
        let _rg = self.resize_lock.read();
        let pool = self.pool();
        let mut report = VerifyReport::default();
        report.push(pool_header_report(pool));
        report.push(superblock_report(pool, self.superblock()));
        report.push(layout_report(pool, self.superblock()));
        for (i, m) in self.ulogs_for_recovery().iter().enumerate() {
            let ulog = m.lock();
            let (off, len) = ulog.header_region();
            let name = format!("undo-log {i} header");
            // Under the log's mutex it is at rest: the header CRC is
            // re-sealed at every protocol step and the armed-data check is
            // a no-op on a disarmed log.
            report.push(
                match ulog.verify_header().and_then(|()| ulog.verify_armed_data()) {
                    Ok(()) => clean(&name, off, len),
                    Err(d) => fatal(&name, off, len, d),
                },
            );
        }
        self.sweep_elogs(&mut report);
        if self.superblock().normal_shutdown(pool) {
            self.check_section_table(&mut report);
            self.check_backup(&mut report);
        }
        report
    }

    /// The open-time verify pass, run by
    /// [`Dgap::open_verified`](crate::graph::Dgap::open_verified) after the
    /// persistent components are attached but before any state is loaded.
    ///
    /// `normal` is the recorded `NORMAL_SHUTDOWN` flag; the return value is
    /// the *effective* flag — a corrupt metadata backup downgrades a
    /// graceful restart to a crash scan (which rebuilds the identical
    /// state from the verified edge array and logs).  Fatal regions abort
    /// with [`GraphError::Corrupted`].
    pub(crate) fn verify_on_open(
        &self,
        normal: bool,
        report: &mut VerifyReport,
    ) -> Result<bool, GraphError> {
        let _rg = self.resize_lock.read();
        for (i, m) in self.ulogs_for_recovery().iter().enumerate() {
            let ulog = m.lock();
            let (off, len) = ulog.header_region();
            let name = format!("undo-log {i} header");
            match ulog.verify_header() {
                Ok(()) if normal => report.push(clean(&name, off, len)),
                Ok(()) => report.push(match ulog.verify_armed_data() {
                    Ok(()) => clean(&name, off, len),
                    Err(d) => fatal(&format!("undo-log {i} backup data"), off, len, d),
                }),
                Err(d) if normal => {
                    // Shutdown cannot complete mid-rebalance, so the log is
                    // known disarmed; a fresh header loses nothing.
                    ulog.reinit_header();
                    report.push(repaired(
                        &name,
                        off,
                        len,
                        format!("{d}; header re-initialised (logs are disarmed across a graceful shutdown)"),
                    ));
                }
                Err(d) => report.push(fatal(&name, off, len, d)),
            }
        }
        self.sweep_elogs(report);
        let mut effective = normal;
        if normal {
            // The full-array re-checksum is opt-in: a default graceful
            // restart stays O(metadata), the paper's headline property.
            if self.config().verify_data_on_open {
                self.check_section_table(report);
            }
            effective = self.check_backup(report);
        }
        match report.fatal_error(self.pool()) {
            Some(e) => Err(e),
            None => Ok(effective),
        }
    }

    /// Enumerate every region the verify pass covers (see
    /// [`CoveredRegion`]).  The graceful-shutdown seals only appear after
    /// a [`Dgap::shutdown`] has written them, and the edge-array and
    /// CRC-table entries are only checked at open when
    /// `verify_data_on_open` is set (on-demand [`Dgap::verify`] always
    /// checks them while the shutdown flag is up).
    pub fn covered_regions(&self) -> Vec<CoveredRegion> {
        let pool = self.pool();
        let sb = self.superblock();
        let region =
            |name: &str, offset: PmemOffset, len: u64, covered_after_crash: bool| CoveredRegion {
                name: name.to_string(),
                offset,
                len,
                covered_after_crash,
            };
        let mut out = vec![region("pool header", 0, pool.header_bytes() as u64, true)];
        let (off, len) = sb.region();
        out.push(region("superblock", off, len, true));
        if let Some((off, len)) = sb.layout_block(pool) {
            out.push(region("layout block", off, len, true));
        }
        for (i, m) in self.ulogs_for_recovery().iter().enumerate() {
            let (off, len) = m.lock().header_region();
            out.push(region(&format!("undo-log {i} header"), off, len, true));
        }
        out.push(region(
            "edge logs",
            self.elogs.base_offset(),
            self.elogs.total_bytes() as u64,
            true,
        ));
        out.push(region(
            "edge array",
            self.edges.base_offset(),
            (self.edges.capacity() * SLOT_BYTES) as u64,
            false,
        ));
        if let Some((off, len)) = sb.backup(pool) {
            out.push(region("metadata backup", off, len as u64, false));
        }
        if let Some((off, len)) = sb.section_crcs(pool) {
            out.push(region("section crc table", off, len as u64, false));
        }
        out
    }

    /// CRC-sweep every edge-log section (in parallel on graphs big enough
    /// to matter), re-zeroing repairable tail garbage and reporting the
    /// rest as fatal.  The scan runs under section read locks; repairs
    /// retake the section's write lock and re-classify under it.
    fn sweep_elogs(&self, report: &mut VerifyReport) {
        use rayon::prelude::*;
        let n = self.elogs.num_sections();
        let parallel = self.config().parallel_recovery
            && rayon::current_num_threads() > 1
            && self.elogs.total_bytes() >= PARALLEL_VERIFY_MIN_BYTES;
        let faulted: Vec<usize> = if parallel {
            (0..n)
                .collect::<Vec<_>>()
                .into_par_iter()
                .filter_map(|s| {
                    self.with_sections_read(&[s], || self.elogs.verify_section(s))
                        .is_err()
                        .then_some(s)
                })
                .collect()
        } else {
            (0..n)
                .filter(|&s| {
                    self.with_sections_read(&[s], || self.elogs.verify_section(s))
                        .is_err()
                })
                .collect()
        };
        let (base, total) = (self.elogs.base_offset(), self.elogs.total_bytes() as u64);
        if faulted.is_empty() {
            report.push(clean("edge logs", base, total));
            return;
        }
        let section_len = total / n.max(1) as u64;
        for s in faulted {
            self.with_sections_write(&[s], || {
                let name = format!("edge-log section {s}");
                match self.elogs.verify_section(s) {
                    Ok(()) => report.push(clean(&name, base, 0)),
                    Err(f) if f.repairable => {
                        self.elogs.zero_tail(s, f.global);
                        report.push(match self.elogs.verify_section(s) {
                            Ok(()) => repaired(
                                &name,
                                f.offset,
                                section_len,
                                format!("{}; log tail re-zeroed", f.detail),
                            ),
                            Err(f2) => fatal(&name, f2.offset, section_len, f2.detail),
                        });
                    }
                    Err(f) => report.push(fatal(&name, f.offset, section_len, f.detail)),
                }
            });
        }
    }

    /// Check the edge array against the per-section CRC table sealed at
    /// the last graceful shutdown.  A corrupt table is discarded (it holds
    /// verification metadata only — no graph data is lost); a section that
    /// fails its recorded CRC is fatal.
    fn check_section_table(&self, report: &mut VerifyReport) {
        use rayon::prelude::*;
        let pool = self.pool();
        let Some((toff, tlen)) = self.superblock().section_crcs(pool) else {
            return;
        };
        let name = "section crc table";
        let edge_off = self.edges.base_offset();
        let edge_len = (self.edges.capacity() * SLOT_BYTES) as u64;
        let discard = |detail: String| {
            repaired(
                name,
                toff,
                tlen as u64,
                format!(
                    "{detail}; table discarded (verification metadata only, no graph data lost)"
                ),
            )
        };
        if tlen < 12 {
            report.push(discard(format!("table impossibly short ({tlen} bytes)")));
            return;
        }
        let table = pool.read_vec(toff, tlen);
        let stored = u32::from_le_bytes(table[tlen - 4..].try_into().unwrap());
        let actual = crc32c(&table[..tlen - 4]);
        if stored != actual {
            report.push(discard(format!(
                "table crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
            return;
        }
        let n = u64::from_le_bytes(table[0..8].try_into().unwrap()) as usize;
        let sections = self.edges.num_segments();
        if n != sections || tlen != 8 + n * 4 + 4 {
            report.push(discard(format!(
                "table records {n} sections but the array has {sections}"
            )));
            return;
        }
        let seg_bytes = self.edges.segment_size() * SLOT_BYTES;
        let recorded: Vec<u32> = (0..n)
            .map(|i| u32::from_le_bytes(table[8 + 4 * i..12 + 4 * i].try_into().unwrap()))
            .collect();
        let check = |s: usize| {
            let actual = crc32c(&pool.read_vec(edge_off + (s * seg_bytes) as u64, seg_bytes));
            (actual != recorded[s]).then_some((s, recorded[s], actual))
        };
        let parallel = self.config().parallel_recovery
            && rayon::current_num_threads() > 1
            && edge_len as usize >= PARALLEL_VERIFY_MIN_BYTES;
        let mismatches: Vec<(usize, u32, u32)> = if parallel {
            (0..n)
                .collect::<Vec<_>>()
                .into_par_iter()
                .filter_map(check)
                .collect()
        } else {
            (0..n).filter_map(check).collect()
        };
        report.push(match mismatches.first() {
            None => clean("edge array", edge_off, edge_len),
            Some(&(s, stored, actual)) => fatal(
                &format!("edge section {s}"),
                edge_off + (s * seg_bytes) as u64,
                seg_bytes as u64,
                format!("crc mismatch: stored {stored:#010x}, computed {actual:#010x}"),
            ),
        });
    }

    /// Check the graceful-shutdown metadata backup against its recorded
    /// CRC.  Returns whether the backup is still usable; a mismatch is
    /// repairable by downgrading to a crash scan of the (already verified)
    /// edge array and logs.
    fn check_backup(&self, report: &mut VerifyReport) -> bool {
        let pool = self.pool();
        let sb = self.superblock();
        let Some((off, len)) = sb.backup(pool) else {
            report.push(repaired(
                "metadata backup",
                0,
                0,
                "normal shutdown recorded but no backup region; falling back to a crash scan"
                    .to_string(),
            ));
            return false;
        };
        let stored = sb.backup_crc(pool);
        let actual = crc32c(&pool.read_vec(off, len));
        if stored != actual {
            report.push(repaired(
                "metadata backup",
                off,
                len as u64,
                format!(
                    "backup crc mismatch: stored {stored:#010x}, computed {actual:#010x}; \
                     falling back to a crash scan"
                ),
            ));
            false
        } else {
            report.push(clean("metadata backup", off, len as u64));
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DgapConfig;
    use crate::recovery::RecoveryKind;
    use crate::traits::{DynamicGraph, GraphView};
    use pmem::{PmemConfig, PmemPool};
    use std::sync::Arc;

    fn pool() -> Arc<PmemPool> {
        Arc::new(PmemPool::new(PmemConfig::small_test()))
    }

    fn populated(p: &Arc<PmemPool>, n: usize) -> Dgap {
        let g = Dgap::create(Arc::clone(p), DgapConfig::small_test()).unwrap();
        let mut x = 0x1234_5678u64;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            g.insert_edge((x >> 33) % 48, (x >> 17) % 48).unwrap();
        }
        g
    }

    #[test]
    fn live_verify_is_clean_and_covers_every_region() {
        let p = pool();
        let g = populated(&p, 1200);
        let report = g.verify();
        assert!(!report.is_fatal(), "{report:?}");
        assert!(report.repaired().is_empty());
        assert!(report.bytes_verified() > 0);
        let names: Vec<_> = report.regions.iter().map(|r| r.region.as_str()).collect();
        assert!(names.contains(&"pool header"));
        assert!(names.contains(&"superblock"));
        assert!(names.contains(&"edge logs"));
    }

    #[test]
    fn post_shutdown_verify_checks_backup_and_sections() {
        let p = pool();
        let g = populated(&p, 800);
        g.shutdown().unwrap();
        let report = g.verify();
        assert!(!report.is_fatal(), "{report:?}");
        let names: Vec<_> = report.regions.iter().map(|r| r.region.as_str()).collect();
        assert!(names.contains(&"edge array"), "{names:?}");
        assert!(names.contains(&"metadata backup"), "{names:?}");
    }

    #[test]
    fn covered_regions_gain_shutdown_seals() {
        let p = pool();
        let g = populated(&p, 500);
        let before = g.covered_regions();
        assert!(before.iter().all(|r| r.name != "metadata backup"));
        g.shutdown().unwrap();
        let after = g.covered_regions();
        assert!(after.iter().any(|r| r.name == "metadata backup"));
        assert!(after.iter().any(|r| r.name == "section crc table"));
        // Regions must not overlap each other.
        let mut spans: Vec<_> = after.iter().map(|r| (r.offset, r.offset + r.len)).collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping covered regions: {after:?}");
        }
    }

    #[test]
    fn corrupt_backup_downgrades_to_crash_scan_with_exact_state() {
        let p = pool();
        let g = populated(&p, 1500);
        let view: Vec<Vec<u64>> = {
            let v = g.consistent_view();
            (0..48).map(|x| v.neighbors(x)).collect()
        };
        g.shutdown().unwrap();
        let (boff, _) = g.superblock().backup(g.pool()).unwrap();
        drop(g);
        p.simulate_crash();
        p.inject_bit_flip(boff + 40, 3);
        let (g2, kind, report) =
            Dgap::open_verified(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert!(
            matches!(kind, RecoveryKind::CrashRecovery { .. }),
            "{kind:?}"
        );
        assert_eq!(report.repaired().len(), 1, "{report:?}");
        let v2 = g2.consistent_view();
        for (x, expect) in view.iter().enumerate() {
            assert_eq!(&v2.neighbors(x as u64), expect, "vertex {x}");
        }
    }

    #[test]
    fn corrupt_edge_section_is_fatal_after_graceful_shutdown() {
        let p = pool();
        let g = populated(&p, 1500);
        g.shutdown().unwrap();
        let edge_base = g.edges.base_offset();
        drop(g);
        p.simulate_crash();
        p.inject_bit_flip(edge_base + 24, 5);
        let cfg = DgapConfig::small_test().verify_data_on_open(true);
        let err = match Dgap::open_verified(Arc::clone(&p), cfg) {
            Err(e) => e,
            Ok(_) => panic!("open must refuse the corrupt image"),
        };
        match err {
            GraphError::Corrupted { region, detail } => {
                assert!(region.starts_with("edge section"), "{region}");
                assert!(detail.contains("crc mismatch"), "{detail}");
            }
            other => panic!("expected Corrupted, got {other}"),
        }
    }

    #[test]
    fn corrupt_section_table_is_discarded_without_data_loss() {
        let p = pool();
        let g = populated(&p, 900);
        let edges_before = DynamicGraph::num_edges(&g);
        g.shutdown().unwrap();
        let (toff, _) = g.superblock().section_crcs(g.pool()).unwrap();
        drop(g);
        p.simulate_crash();
        p.inject_bit_flip(toff + 9, 1);
        let cfg = DgapConfig::small_test().verify_data_on_open(true);
        let (g2, kind, report) = Dgap::open_verified(Arc::clone(&p), cfg).unwrap();
        assert_eq!(kind, RecoveryKind::NormalRestart);
        assert_eq!(report.repaired().len(), 1, "{report:?}");
        assert_eq!(DynamicGraph::num_edges(&g2), edges_before);
    }

    #[test]
    fn corrupt_elog_tail_is_repaired_on_crash_open() {
        let p = pool();
        let g = populated(&p, 400);
        let edges_before = DynamicGraph::num_edges(&g);
        // Garble the *second* cache line of a section whose log is empty:
        // the slots before it are zero, so the damage reads as garbage past
        // the log tail — repairable by re-zeroing.  (Garbage in the first
        // slot would be indistinguishable from a corrupted live entry and
        // classified fatal.)
        let empty = (0..g.elogs.num_sections())
            .find(|&s| g.elogs.used(s) == 0)
            .expect("a 400-edge small_test graph leaves empty sections");
        let section_bytes = g.elogs.entries_per_section() * crate::elog::ELOG_ENTRY_BYTES;
        let target = g.elogs.base_offset() + (empty * section_bytes) as u64 + 64;
        assert!(section_bytes > 64 + 64);
        drop(g);
        p.simulate_crash();
        p.inject_torn_line(target, 7);
        let (g2, _, report) =
            Dgap::open_verified(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert_eq!(report.repaired().len(), 1, "{report:?}");
        assert_eq!(DynamicGraph::num_edges(&g2), edges_before);
    }

    #[test]
    fn corrupt_live_elog_entry_is_fatal_on_crash_open() {
        let p = pool();
        let g = Dgap::create(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        // Insert until some section holds a live log entry (checking after
        // every insert, before a merge can clear it again), then flip a bit
        // in that entry's payload.
        let mut x = 0x1234_5678u64;
        let mut target = None;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            g.insert_edge((x >> 33) % 48, (x >> 17) % 48).unwrap();
            if let Some(s) = (0..g.elogs.num_sections()).find(|&s| g.elogs.used(s) > 0) {
                target = Some(s);
                break;
            }
        }
        let s = target.expect("inserts must reach the edge log");
        let entries = g.elogs.entries_per_section();
        let off = g.elogs.base_offset() + (s * entries * crate::elog::ELOG_ENTRY_BYTES) as u64;
        drop(g);
        p.simulate_crash();
        p.inject_bit_flip(off + 5, 2);
        let err = match Dgap::open_verified(Arc::clone(&p), DgapConfig::small_test()) {
            Err(e) => e,
            Ok(_) => panic!("open must refuse the corrupt image"),
        };
        match err {
            GraphError::Corrupted { region, detail } => {
                assert!(region.starts_with("edge-log section"), "{region}");
                assert!(detail.contains("@ +"), "{detail}");
            }
            other => panic!("expected Corrupted, got {other}"),
        }
    }

    #[test]
    fn corrupt_ulog_header_repairs_gracefully_but_is_fatal_after_crash() {
        let p = pool();
        let g = populated(&p, 300);
        let (uoff, _) = g.ulogs_for_recovery()[0].lock().header_region();
        g.shutdown().unwrap();
        drop(g);
        p.simulate_crash();
        p.inject_bit_flip(uoff + 12, 6);
        let (g2, kind, report) =
            Dgap::open_verified(Arc::clone(&p), DgapConfig::small_test()).unwrap();
        assert_eq!(kind, RecoveryKind::NormalRestart);
        assert_eq!(report.repaired().len(), 1, "{report:?}");
        drop(g2);

        // Same damage without the graceful flag: the log's state cannot be
        // trusted, so the open must refuse.
        p.simulate_crash(); // flag was cleared by the successful open
        p.inject_bit_flip(uoff + 12, 6);
        let err = match Dgap::open_verified(Arc::clone(&p), DgapConfig::small_test()) {
            Err(e) => e,
            Ok(_) => panic!("open must refuse the corrupt image"),
        };
        assert!(matches!(err, GraphError::Corrupted { .. }), "{err}");
    }
}
