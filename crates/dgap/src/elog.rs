//! Per-section edge logs.
//!
//! The edge log is DGAP's answer to the write-amplification issue
//! (§2.4.1): when an insertion's natural slot in the edge array is already
//! occupied — which would force a nearby shift of up to a few hundred bytes
//! — the edge is instead *appended* to a small, pre-allocated, per-section
//! log on persistent memory.  Appends are sequential 16-byte writes (12
//! payload bytes plus a CRC32C sealed in the same store), the cheapest
//! thing Optane can do.  When a log approaches capacity (90 % by
//! default) its contents are merged back into the edge array as part of a
//! rebalance.
//!
//! Every entry stores `(source, destination, back-pointer)`.  The
//! back-pointer links all logged edges of the same source vertex newest →
//! oldest; the vertex array's `elog_head` field points at the newest one, so
//! readers can follow the chain and recovery can rebuild the heads by a
//! single forward scan.
//!
//! Entry indices are *global* (`section * entries_per_section + slot`) so
//! that a chain may be followed without knowing which section each entry
//! lives in.  One deviation from the paper (documented in DESIGN.md): a
//! vertex's entries are always appended to the log of the section containing
//! its **pivot**, which lets a section merge clear its whole log safely.

use crate::traits::VertexId;
use pmem::{crc32c, PmemOffset, PmemPool};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes per edge-log entry: source (4), destination (4), back-pointer (4),
/// CRC32C of the first 12 bytes (4).  Entries are 16-byte aligned inside a
/// 64-byte-aligned region, so payload and checksum always share one cache
/// line and persist atomically.
pub const ELOG_ENTRY_BYTES: usize = 16;

/// Bytes of an entry covered by its trailing CRC32C.
const ELOG_PAYLOAD_BYTES: usize = 12;

/// One decoded edge-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElogEntry {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// `true` when this record is a tombstone (deletion marker).
    pub tombstone: bool,
    /// Global index of the previous entry for the same source, or
    /// [`crate::vertex::NO_ELOG`].
    pub prev: u32,
}

/// Error returned when a section's log is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElogFull {
    /// The section whose log is full.
    pub section: usize,
}

/// Aggregate statistics used by the Fig. 9 evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElogStats {
    /// Total appends ever performed.
    pub appends: u64,
    /// Number of section merges (log cleared back into the edge array).
    pub merges: u64,
    /// Highest entry count any section reached before a merge.
    pub high_watermark: u64,
}

const TOMB_BIT: u32 = 1 << 31;
const ID_MASK: u32 = TOMB_BIT - 1;

/// The collection of per-section edge logs backing one DGAP instance.
pub struct EdgeLogs {
    pool: Arc<PmemPool>,
    /// Offset of section 0's log; logs are laid out contiguously.
    base: AtomicU64,
    /// Entries each section's log can hold.
    entries_per_section: usize,
    /// Number of sections (grows on resize).
    num_sections: AtomicU64,
    /// DRAM-side used counters, one per section.
    used: parking_lot::RwLock<Vec<AtomicU32>>,
    appends: AtomicU64,
    merges: AtomicU64,
    high_watermark: AtomicU64,
}

impl EdgeLogs {
    /// Allocate logs for `num_sections` sections, each `elog_size` bytes.
    pub fn new(pool: Arc<PmemPool>, num_sections: usize, elog_size: usize) -> pmem::Result<Self> {
        let entries_per_section = (elog_size / ELOG_ENTRY_BYTES).max(1);
        let base = Self::allocate_region(&pool, num_sections, entries_per_section)?;
        Ok(EdgeLogs {
            pool,
            base: AtomicU64::new(base),
            entries_per_section,
            num_sections: AtomicU64::new(num_sections as u64),
            used: parking_lot::RwLock::new((0..num_sections).map(|_| AtomicU32::new(0)).collect()),
            appends: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            high_watermark: AtomicU64::new(0),
        })
    }

    /// Re-attach to an existing log region (pool re-open).  Used counters are
    /// rebuilt by [`EdgeLogs::rebuild_used_counters`] / a recovery scan.
    pub fn attach(
        pool: Arc<PmemPool>,
        base: PmemOffset,
        num_sections: usize,
        elog_size: usize,
    ) -> Self {
        let entries_per_section = (elog_size / ELOG_ENTRY_BYTES).max(1);
        EdgeLogs {
            pool,
            base: AtomicU64::new(base),
            entries_per_section,
            num_sections: AtomicU64::new(num_sections as u64),
            used: parking_lot::RwLock::new((0..num_sections).map(|_| AtomicU32::new(0)).collect()),
            appends: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            high_watermark: AtomicU64::new(0),
        }
    }

    fn allocate_region(
        pool: &PmemPool,
        num_sections: usize,
        entries_per_section: usize,
    ) -> pmem::Result<PmemOffset> {
        let bytes = num_sections * entries_per_section * ELOG_ENTRY_BYTES;
        let off = pool.alloc(bytes.max(ELOG_ENTRY_BYTES), 64)?;
        // Zero-fill so that "first zero source" marks the end of each log.
        pool.memset(off, 0, bytes.max(ELOG_ENTRY_BYTES));
        pool.persist(off, bytes.max(ELOG_ENTRY_BYTES));
        Ok(off)
    }

    /// Offset of the log region (stored in the superblock).
    pub fn base_offset(&self) -> PmemOffset {
        self.base.load(Ordering::Acquire)
    }

    /// Entries one section's log can hold.
    pub fn entries_per_section(&self) -> usize {
        self.entries_per_section
    }

    /// Number of sections currently covered.
    pub fn num_sections(&self) -> usize {
        self.num_sections.load(Ordering::Acquire) as usize
    }

    /// Total bytes of persistent memory dedicated to the logs (Fig. 9's bar
    /// heights).
    pub fn total_bytes(&self) -> usize {
        self.num_sections() * self.entries_per_section * ELOG_ENTRY_BYTES
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ElogStats {
        ElogStats {
            appends: self.appends.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            high_watermark: self.high_watermark.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries in `section`'s log.
    pub fn used(&self, section: usize) -> usize {
        self.used.read()[section].load(Ordering::Acquire) as usize
    }

    /// Utilisation of `section`'s log in `[0, 1]`.
    pub fn utilization(&self, section: usize) -> f64 {
        self.used(section) as f64 / self.entries_per_section as f64
    }

    fn entry_offset(&self, global_idx: u32) -> PmemOffset {
        self.base.load(Ordering::Acquire) + (global_idx as u64) * ELOG_ENTRY_BYTES as u64
    }

    /// Append an entry to `section`'s log.  Returns the new entry's global
    /// index, or [`ElogFull`] when the log has no room left.
    ///
    /// The entry is persisted before the call returns, making the logged
    /// edge durable (this is the cheap path that replaces nearby shifts).
    pub fn append(
        &self,
        section: usize,
        src: VertexId,
        dst: VertexId,
        tombstone: bool,
        prev: u32,
    ) -> Result<u32, ElogFull> {
        let used_guard = self.used.read();
        let counter = &used_guard[section];
        let slot = counter.load(Ordering::Acquire);
        if slot as usize >= self.entries_per_section {
            return Err(ElogFull { section });
        }
        let global = (section * self.entries_per_section) as u32 + slot;
        let off = self.entry_offset(global);
        let mut buf = [0u8; ELOG_ENTRY_BYTES];
        let src_word = (src as u32 + 1) & ID_MASK;
        let mut dst_word = (dst as u32 + 1) & ID_MASK;
        if tombstone {
            dst_word |= TOMB_BIT;
        }
        buf[0..4].copy_from_slice(&src_word.to_le_bytes());
        buf[4..8].copy_from_slice(&dst_word.to_le_bytes());
        buf[8..12].copy_from_slice(&prev.to_le_bytes());
        let crc = crc32c(&buf[..ELOG_PAYLOAD_BYTES]);
        buf[12..16].copy_from_slice(&crc.to_le_bytes());
        self.pool.write(off, &buf);
        self.pool.persist(off, ELOG_ENTRY_BYTES);
        counter.store(slot + 1, Ordering::Release);
        drop(used_guard);
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.high_watermark
            .fetch_max(u64::from(slot) + 1, Ordering::Relaxed);
        Ok(global)
    }

    /// Read the entry at `global_idx`.  Returns `None` for an empty slot.
    pub fn entry(&self, global_idx: u32) -> Option<ElogEntry> {
        let off = self.entry_offset(global_idx);
        let bytes = self.pool.read_vec(off, ELOG_ENTRY_BYTES);
        let src_word = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if src_word == 0 {
            return None;
        }
        let dst_word = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let prev = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        Some(ElogEntry {
            src: u64::from((src_word & ID_MASK) - 1),
            dst: u64::from((dst_word & ID_MASK) - 1),
            tombstone: dst_word & TOMB_BIT != 0,
            prev,
        })
    }

    /// Collect the chain of entries for one vertex starting at `head`,
    /// oldest first (the order they were inserted).
    pub fn chain_oldest_first(&self, head: u32) -> Vec<ElogEntry> {
        let mut out = Vec::new();
        let mut cur = head;
        while cur != crate::vertex::NO_ELOG {
            match self.entry(cur) {
                Some(e) => {
                    let prev = e.prev;
                    out.push(e);
                    cur = prev;
                }
                None => break,
            }
        }
        out.reverse();
        out
    }

    /// Clear `section`'s log after its contents were merged into the edge
    /// array.  The region is zeroed and persisted so a post-crash scan never
    /// sees stale entries.
    pub fn clear(&self, section: usize) {
        let bytes = self.entries_per_section * ELOG_ENTRY_BYTES;
        let off = self.entry_offset((section * self.entries_per_section) as u32);
        self.pool.memset(off, 0, bytes);
        self.pool.persist(off, bytes);
        self.used.read()[section].store(0, Ordering::Release);
        self.merges.fetch_add(1, Ordering::Relaxed);
    }

    /// Grow to `new_num_sections` sections by allocating a fresh (empty)
    /// region.  Called during an edge-array resize, which merges every log
    /// into the new array anyway, so no old entries need to be carried over.
    /// Returns the new region's base offset for the superblock.
    pub fn grow(&self, new_num_sections: usize) -> pmem::Result<PmemOffset> {
        let base = Self::allocate_region(&self.pool, new_num_sections, self.entries_per_section)?;
        let mut used = self.used.write();
        *used = (0..new_num_sections).map(|_| AtomicU32::new(0)).collect();
        self.base.store(base, Ordering::Release);
        self.num_sections
            .store(new_num_sections as u64, Ordering::Release);
        Ok(base)
    }

    /// Scan every section's log (stopping at the first empty slot in each)
    /// and invoke `f` with `(section, global_index, entry)`.  Also rebuilds
    /// the DRAM used counters.  This is the crash-recovery path.
    pub fn scan_all(&self, mut f: impl FnMut(usize, u32, ElogEntry)) {
        for section in 0..self.num_sections() {
            self.scan_section(section, |global, e| f(section, global, e));
        }
    }

    /// Scan one section's log in append order (stopping at its first empty
    /// slot), invoking `f(global_index, entry)`, and store the rebuilt DRAM
    /// used counter for that section.  Returns the live entry count.
    /// Sections are independent regions, so the parallel crash-recovery
    /// path scans them concurrently.
    pub fn scan_section(&self, section: usize, mut f: impl FnMut(u32, ElogEntry)) -> u32 {
        let mut count = 0u32;
        for slot in 0..self.entries_per_section {
            let global = (section * self.entries_per_section + slot) as u32;
            match self.entry(global) {
                Some(e) => {
                    count += 1;
                    f(global, e);
                }
                None => break,
            }
        }
        self.used.read()[section].store(count, Ordering::Release);
        count
    }

    /// Rebuild the DRAM used counters without reporting entries.
    pub fn rebuild_used_counters(&self) {
        self.scan_all(|_, _, _| {});
    }

    /// CRC-sweep one section's log.  Returns the first fault found, if any.
    ///
    /// Entries are prefix-contiguous (appends fill forward, `clear` zeroes
    /// the whole section), so the sweep distinguishes:
    ///
    /// * a live entry with a bad checksum or a zeroed source word — data
    ///   loss, **not** repairable;
    /// * a structurally valid entry after the first empty slot — a gap in
    ///   the live prefix, meaning an earlier entry was wiped: also fatal;
    /// * non-zero garbage past the first empty slot that does not verify
    ///   as an entry — cannot be a record the log ever wrote, so it is
    ///   **repairable** by re-zeroing the tail ([`EdgeLogs::zero_tail`]).
    pub fn verify_section(&self, section: usize) -> Result<(), ElogFault> {
        let mut in_tail = false;
        for slot in 0..self.entries_per_section {
            let global = (section * self.entries_per_section + slot) as u32;
            let offset = self.entry_offset(global);
            let bytes = self.pool.read_vec(offset, ELOG_ENTRY_BYTES);
            if bytes.iter().all(|&b| b == 0) {
                in_tail = true;
                continue;
            }
            let src_word = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
            let stored = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
            let actual = crc32c(&bytes[..ELOG_PAYLOAD_BYTES]);
            let looks_valid = src_word != 0 && stored == actual;
            let fault = |detail: String, repairable: bool| ElogFault {
                section,
                global,
                offset,
                detail,
                repairable,
            };
            match (in_tail, looks_valid) {
                (false, true) => {}
                (false, false) => {
                    return Err(fault(
                        if src_word == 0 {
                            "live entry with zeroed source word".to_string()
                        } else {
                            format!(
                                "entry crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
                            )
                        },
                        false,
                    ));
                }
                (true, true) => {
                    return Err(fault("live entry after an empty slot".to_string(), false));
                }
                (true, false) => {
                    return Err(fault("garbage past the log tail".to_string(), true));
                }
            }
        }
        Ok(())
    }

    /// Re-zero `section`'s log from `from_global` to the end of the section
    /// — the repair for tail garbage reported by
    /// [`EdgeLogs::verify_section`].
    pub fn zero_tail(&self, section: usize, from_global: u32) {
        let end = ((section + 1) * self.entries_per_section) as u32;
        debug_assert!(from_global < end);
        let offset = self.entry_offset(from_global);
        let bytes = (end - from_global) as usize * ELOG_ENTRY_BYTES;
        self.pool.memset(offset, 0, bytes);
        self.pool.persist(offset, bytes);
    }
}

/// A fault found by [`EdgeLogs::verify_section`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElogFault {
    /// Section whose log failed verification.
    pub section: usize,
    /// Global index of the failing slot.
    pub global: u32,
    /// Pool byte offset of the failing slot.
    pub offset: PmemOffset,
    /// What exactly failed.
    pub detail: String,
    /// Whether [`EdgeLogs::zero_tail`] can repair it without data loss.
    pub repairable: bool,
}

impl std::fmt::Debug for EdgeLogs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeLogs")
            .field("sections", &self.num_sections())
            .field("entries_per_section", &self.entries_per_section)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::NO_ELOG;
    use pmem::PmemConfig;

    fn logs(sections: usize, elog_size: usize) -> (Arc<PmemPool>, EdgeLogs) {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let l = EdgeLogs::new(Arc::clone(&pool), sections, elog_size).unwrap();
        (pool, l)
    }

    #[test]
    fn append_and_read_back() {
        let (_p, l) = logs(2, 256);
        let i0 = l.append(0, 5, 9, false, NO_ELOG).unwrap();
        let i1 = l.append(0, 5, 11, false, i0).unwrap();
        let i2 = l.append(1, 7, 1, true, NO_ELOG).unwrap();
        assert_eq!(l.used(0), 2);
        assert_eq!(l.used(1), 1);
        let e = l.entry(i1).unwrap();
        assert_eq!(e.src, 5);
        assert_eq!(e.dst, 11);
        assert_eq!(e.prev, i0);
        assert!(!e.tombstone);
        assert!(l.entry(i2).unwrap().tombstone);
    }

    #[test]
    fn vertex_zero_is_representable() {
        let (_p, l) = logs(1, 256);
        let i = l.append(0, 0, 0, false, NO_ELOG).unwrap();
        let e = l.entry(i).unwrap();
        assert_eq!(e.src, 0);
        assert_eq!(e.dst, 0);
    }

    #[test]
    fn chain_returns_insertion_order() {
        let (_p, l) = logs(1, 512);
        let mut head = NO_ELOG;
        for dst in [3u64, 1, 4, 1, 5] {
            head = l.append(0, 2, dst, false, head).unwrap();
        }
        let chain = l.chain_oldest_first(head);
        let dsts: Vec<u64> = chain.iter().map(|e| e.dst).collect();
        assert_eq!(dsts, vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn full_log_is_reported() {
        let (_p, l) = logs(1, ELOG_ENTRY_BYTES * 3);
        assert_eq!(l.entries_per_section(), 3);
        for dst in 0..3u64 {
            l.append(0, 1, dst, false, NO_ELOG).unwrap();
        }
        assert_eq!(
            l.append(0, 1, 9, false, NO_ELOG),
            Err(ElogFull { section: 0 })
        );
        assert!((l.utilization(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_and_zeroes() {
        let (_p, l) = logs(2, 256);
        for dst in 0..5u64 {
            l.append(1, 2, dst, false, NO_ELOG).unwrap();
        }
        l.clear(1);
        assert_eq!(l.used(1), 0);
        assert_eq!(l.stats().merges, 1);
        // The first entry slot of section 1 must read as empty again.
        let global = (l.entries_per_section()) as u32;
        assert!(l.entry(global).is_none());
        // Section 0 untouched.
        l.append(0, 3, 3, false, NO_ELOG).unwrap();
        assert_eq!(l.used(0), 1);
    }

    #[test]
    fn scan_all_recovers_counts_and_entries() {
        let (pool, l) = logs(3, 256);
        let base = l.base_offset();
        l.append(0, 1, 10, false, NO_ELOG).unwrap();
        l.append(0, 1, 11, false, 0).unwrap();
        l.append(2, 4, 12, true, NO_ELOG).unwrap();

        // Simulate crash + reattach: counters are lost, PM content survives.
        pool.simulate_crash();
        let l2 = EdgeLogs::attach(Arc::clone(&pool), base, 3, 256);
        assert_eq!(l2.used(0), 0, "fresh attach starts with unknown counters");
        let mut seen = Vec::new();
        l2.scan_all(|sec, idx, e| seen.push((sec, idx, e.src, e.dst, e.tombstone)));
        assert_eq!(l2.used(0), 2);
        assert_eq!(l2.used(1), 0);
        assert_eq!(l2.used(2), 1);
        assert_eq!(seen.len(), 3);
        assert!(seen.contains(&(2, (2 * l2.entries_per_section()) as u32, 4, 12, true)));
    }

    #[test]
    fn appends_are_durable_without_extra_flush() {
        let (pool, l) = logs(1, 256);
        let base = l.base_offset();
        l.append(0, 6, 60, false, NO_ELOG).unwrap();
        pool.simulate_crash();
        let l2 = EdgeLogs::attach(pool, base, 1, 256);
        assert_eq!(l2.entry(0).unwrap().dst, 60);
    }

    #[test]
    fn grow_provides_fresh_empty_logs() {
        let (_p, l) = logs(2, 256);
        l.append(0, 1, 2, false, NO_ELOG).unwrap();
        let new_base = l.grow(8).unwrap();
        assert_eq!(l.base_offset(), new_base);
        assert_eq!(l.num_sections(), 8);
        for s in 0..8 {
            assert_eq!(l.used(s), 0);
        }
    }

    #[test]
    fn verify_passes_on_clean_and_empty_sections() {
        let (_p, l) = logs(2, 256);
        for dst in 0..5u64 {
            l.append(0, 1, dst, false, NO_ELOG).unwrap();
        }
        l.verify_section(0).unwrap();
        l.verify_section(1).unwrap();
    }

    #[test]
    fn verify_detects_flipped_live_entry_as_fatal() {
        let (pool, l) = logs(1, 256);
        l.append(0, 3, 7, false, NO_ELOG).unwrap();
        pool.inject_bit_flip(l.base_offset() + 5, 1);
        let fault = l.verify_section(0).unwrap_err();
        assert!(!fault.repairable);
        assert!(fault.detail.contains("crc mismatch"), "{}", fault.detail);
        assert_eq!(fault.offset, l.base_offset());
    }

    #[test]
    fn verify_repairs_tail_garbage() {
        let (pool, l) = logs(1, 256);
        l.append(0, 3, 7, false, NO_ELOG).unwrap();
        // One flipped bit well past the live prefix.
        let tail_off = l.base_offset() + (5 * ELOG_ENTRY_BYTES) as u64 + 3;
        pool.inject_bit_flip(tail_off, 6);
        let fault = l.verify_section(0).unwrap_err();
        assert!(fault.repairable, "{}", fault.detail);
        l.zero_tail(0, fault.global);
        l.verify_section(0).unwrap();
        // The live entry is untouched by the repair.
        assert_eq!(l.entry(0).unwrap().dst, 7);
    }

    #[test]
    fn stats_track_high_watermark() {
        let (_p, l) = logs(1, 256);
        for dst in 0..7u64 {
            l.append(0, 1, dst, false, NO_ELOG).unwrap();
        }
        let s = l.stats();
        assert_eq!(s.appends, 7);
        assert_eq!(s.high_watermark, 7);
    }
}
