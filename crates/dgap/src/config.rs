//! DGAP configuration: the user-specified initialisation parameters of the
//! paper (§3.1.1) plus the knobs the evaluation sweeps (Fig. 9, Table 5).

use pma::DensityBounds;

/// Where a frequently-updated component lives.
///
/// The paper's *data placement schema* keeps the vertex array, the PMA tree
/// and the locks in DRAM and only the edge array / logs on PM.  The Table 5
/// ablation ("No EL&UL&DP") moves the vertex array (and the PMA-tree
/// shadow) onto PM, which is what [`Placement::Pmem`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Keep the component in DRAM (DGAP's default).
    Dram,
    /// Keep the component on persistent memory, paying the in-place-update
    /// penalty on every modification.
    Pmem,
}

/// Configuration for a DGAP instance.
#[derive(Debug, Clone)]
pub struct DgapConfig {
    /// Expected number of vertices (`INIT_VERTICES_SIZE`).  The vertex array
    /// is pre-allocated to this size and grows automatically if exceeded.
    pub init_vertices: usize,
    /// Expected number of edges (`INIT_EDGES_SIZE`).  Together with
    /// [`DgapConfig::gap_factor`] this sizes the initial edge array.
    pub init_edges: usize,
    /// Extra space factor for the initial edge array: the array starts with
    /// `init_edges * gap_factor` slots (plus one pivot slot per vertex).
    pub gap_factor: f64,
    /// Number of element slots per PMA section.  One per-section edge log is
    /// attached to each section.
    ///
    /// This is a *creation-time* parameter: [`crate::Dgap::open`] always
    /// uses the value recorded in the pool's superblock (the persistent
    /// layout was built with it and cannot be reinterpreted).  Passing the
    /// default here is always accepted on open; passing an explicit value
    /// that differs from the recorded one is a configuration error.
    pub segment_size: usize,
    /// Size of one per-section edge log in bytes (`ELOG_SZ`).  The paper's
    /// default is 2 KiB; Fig. 9 sweeps 64 B – 16 KiB.
    ///
    /// Like [`DgapConfig::segment_size`], this is recorded in the
    /// superblock at creation time and [`crate::Dgap::open`] uses the
    /// recorded value; an explicit non-default mismatch is rejected.
    pub elog_size: usize,
    /// Per-thread undo-log region size in bytes (`ULOG_SZ`); also the chunk
    /// granularity at which rebalance backups are persisted.
    pub ulog_size: usize,
    /// Number of writer threads the instance should pre-allocate undo logs
    /// for.
    pub writer_threads: usize,
    /// PMA density thresholds.
    pub density: DensityBounds,
    /// Fraction of the edge log that may fill before a merge back into the
    /// edge array is forced (the paper merges at 90 %).
    pub elog_merge_threshold: f64,
    /// Whether the per-section edge log optimisation is enabled.  Disabled
    /// in the "No EL" ablation rows of Table 5.
    pub use_edge_log: bool,
    /// Whether rebalances are protected by the per-thread undo log (`true`)
    /// or by PMDK-style transactions (`false`, the "No EL&UL" ablation).
    pub use_undo_log: bool,
    /// Placement of the vertex array and PMA-tree mirror ("DP" in Table 5).
    pub metadata_placement: Placement,
    /// Whether crash recovery may rebuild the DRAM metadata with the
    /// work-stealing pool (chunked parallel scans over the edge array, the
    /// per-section edge logs and the metadata backup).  `true` by default;
    /// recovery still falls back to the sequential scan on small graphs or
    /// when only one thread is available.  The `recovery` benchmark turns
    /// this off to measure the sequential baseline.
    pub parallel_recovery: bool,
    /// Whether a graceful-restart open re-checksums the full edge array
    /// against the per-section CRC table sealed at shutdown.  `false` by
    /// default: the paper's graceful restart is O(metadata), independent of
    /// graph size, and a full-array scan would forfeit that.  The metadata
    /// seals (pool header, superblock, layout block, undo-log headers, edge
    /// logs, backup blob) are verified on every open regardless.  The
    /// service layer and the corruption-fuzz harness opt in.
    pub verify_data_on_open: bool,
}

impl Default for DgapConfig {
    fn default() -> Self {
        DgapConfig {
            init_vertices: 1024,
            init_edges: 16 * 1024,
            gap_factor: 1.5,
            segment_size: 512,
            elog_size: 2 * 1024,
            ulog_size: 2 * 1024,
            writer_threads: 1,
            density: DensityBounds::default(),
            elog_merge_threshold: 0.9,
            use_edge_log: true,
            use_undo_log: true,
            metadata_placement: Placement::Dram,
            parallel_recovery: true,
            verify_data_on_open: false,
        }
    }
}

impl DgapConfig {
    /// A configuration sized for unit tests: tiny arrays so that rebalances,
    /// merges and resizes all trigger quickly.
    pub fn small_test() -> Self {
        DgapConfig {
            init_vertices: 64,
            init_edges: 256,
            gap_factor: 1.5,
            segment_size: 64,
            elog_size: 256,
            ulog_size: 512,
            writer_threads: 2,
            ..DgapConfig::default()
        }
    }

    /// Configuration sized for a graph with `vertices` vertices and `edges`
    /// edges (the two `INIT_*` parameters of the paper).
    pub fn for_graph(vertices: usize, edges: usize) -> Self {
        DgapConfig {
            init_vertices: vertices.max(1),
            init_edges: edges.max(16),
            ..DgapConfig::default()
        }
    }

    /// Builder-style: set the per-section edge-log size (Fig. 9 sweep).
    pub fn elog_size(mut self, bytes: usize) -> Self {
        self.elog_size = bytes;
        self
    }

    /// Builder-style: set the per-thread undo-log size.
    pub fn ulog_size(mut self, bytes: usize) -> Self {
        self.ulog_size = bytes;
        self
    }

    /// Builder-style: set the PMA section size (in slots).
    pub fn segment_size(mut self, slots: usize) -> Self {
        self.segment_size = slots;
        self
    }

    /// Builder-style: set the number of writer threads to provision for.
    pub fn writer_threads(mut self, n: usize) -> Self {
        self.writer_threads = n.max(1);
        self
    }

    /// Builder-style: disable the per-section edge log ("No EL").
    pub fn without_edge_log(mut self) -> Self {
        self.use_edge_log = false;
        self
    }

    /// Builder-style: replace the per-thread undo log with PMDK-style
    /// transactions ("No EL&UL" keeps `use_edge_log = false` too).
    pub fn without_undo_log(mut self) -> Self {
        self.use_undo_log = false;
        self
    }

    /// Builder-style: place the vertex array / PMA-tree mirror on PM
    /// ("No EL&UL&DP").
    pub fn metadata_on_pmem(mut self) -> Self {
        self.metadata_placement = Placement::Pmem;
        self
    }

    /// Builder-style: force crash recovery onto the sequential scan path
    /// (the measured baseline of the `recovery` benchmark).
    pub fn sequential_recovery(mut self) -> Self {
        self.parallel_recovery = false;
        self
    }

    /// Builder-style: re-checksum the full edge array on graceful-restart
    /// opens (see the `verify_data_on_open` field).
    pub fn verify_data_on_open(mut self, verify: bool) -> Self {
        self.verify_data_on_open = verify;
        self
    }

    /// Number of edge-array slots the initial allocation should contain:
    /// one pivot per expected vertex plus the expected edges scaled by the
    /// gap factor, rounded so the segment count is a power of two.
    pub fn initial_slots(&self) -> usize {
        let raw = self.init_vertices as f64 + self.init_edges as f64 * self.gap_factor;
        (raw.ceil() as usize).max(self.segment_size)
    }

    /// Number of edge-log entries one per-section log can hold.
    pub fn elog_entries(&self) -> usize {
        self.elog_size / crate::elog::ELOG_ENTRY_BYTES
    }

    /// Validate invariants; called by the constructors.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical settings (zero sizes, thresholds outside
    /// `(0, 1]`).
    pub fn validate(&self) {
        assert!(
            self.segment_size >= 8,
            "segment_size must be at least 8 slots"
        );
        assert!(self.init_vertices > 0, "init_vertices must be positive");
        assert!(self.init_edges > 0, "init_edges must be positive");
        assert!(self.gap_factor >= 1.0, "gap_factor must be >= 1.0");
        assert!(
            self.elog_merge_threshold > 0.0 && self.elog_merge_threshold <= 1.0,
            "elog_merge_threshold must be in (0, 1]"
        );
        assert!(self.writer_threads >= 1, "need at least one writer thread");
        assert!(
            self.ulog_size >= 256,
            "ulog_size must hold at least one backup chunk header"
        );
        self.density.validated();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        DgapConfig::default().validate();
        DgapConfig::small_test().validate();
    }

    #[test]
    fn builders_compose() {
        let c = DgapConfig::for_graph(100, 1000)
            .elog_size(4096)
            .ulog_size(8192)
            .segment_size(128)
            .writer_threads(4)
            .without_edge_log()
            .without_undo_log()
            .metadata_on_pmem()
            .sequential_recovery();
        c.validate();
        assert!(!c.parallel_recovery);
        assert_eq!(c.init_vertices, 100);
        assert_eq!(c.init_edges, 1000);
        assert_eq!(c.elog_size, 4096);
        assert_eq!(c.ulog_size, 8192);
        assert_eq!(c.segment_size, 128);
        assert_eq!(c.writer_threads, 4);
        assert!(!c.use_edge_log);
        assert!(!c.use_undo_log);
        assert_eq!(c.metadata_placement, Placement::Pmem);
    }

    #[test]
    fn initial_slots_cover_vertices_and_edges() {
        let c = DgapConfig::for_graph(10, 100);
        assert!(c.initial_slots() >= 10 + 100);
    }

    #[test]
    fn elog_entry_count_scales_with_size() {
        let small = DgapConfig::default().elog_size(256).elog_entries();
        let large = DgapConfig::default().elog_size(4096).elog_entries();
        assert!(large > small);
        assert!(small > 0);
    }

    #[test]
    #[should_panic(expected = "segment_size")]
    fn tiny_segment_rejected() {
        DgapConfig {
            segment_size: 2,
            ..DgapConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "gap_factor")]
    fn sub_unity_gap_factor_rejected() {
        DgapConfig {
            gap_factor: 0.5,
            ..DgapConfig::default()
        }
        .validate();
    }
}
