//! `dgap-bench` — regenerate the paper's tables and figures.
//!
//! ```text
//! dgap-bench <experiment> [--scale N] [--threads a,b,c] [--shards a,b,c]
//!                         [--json DIR]
//!
//! experiments:
//!   fig1a fig1b fig1c fig5 fig6 table3 fig7 fig8 table4 table5 fig9
//!   recovery     (§4.4 + beyond: graceful vs crash restore, sequential vs
//!                 parallel scans per --threads, `open_dgap` per --shards)
//!   sharding     (beyond the paper: crates/sharded ingest + kernel scaling)
//!   serve        (beyond the paper: GraphService mixed mutate/query traffic)
//!   serve-net    (beyond the paper: remote tenants over TCP through the
//!                 wire protocol, tail latency per connection count +
//!                 admission-control shedding)
//!   snapshot     (beyond the paper: sequential vs parallel/incremental
//!                 FrozenView capture)
//!   analytics    (beyond the paper: dyn-dispatch vs zero-dispatch CSR
//!                 kernels + UnifiedView merge cost)
//!   incremental  (beyond the paper: epoch-delta PageRank/CC vs full
//!                 recomputation per write-burst size + widened kernel set)
//!   motivation   (fig1a + fig1b + fig1c)
//!   insertion    (fig5 + fig6 + table3)
//!   analysis     (fig7 + fig8 + table4)
//!   components   (table5 + fig9 + recovery)
//!   all          (everything)
//!
//! options:
//!   --scale N       divide every Table 2 dataset by N   (default 8192)
//!   --threads LIST  writer-thread counts for Table 3    (default 1,8,16)
//!   --shards LIST   shard counts for sharding           (default 1,2,4,8)
//!   --json DIR      also write each experiment's rows + config as
//!                   machine-readable DIR/BENCH_<experiment>.json
//! ```

use bench::experiments as exp;
use bench::{BenchOptions, Table};

fn parse_args() -> (Vec<String>, BenchOptions, Option<std::path::PathBuf>) {
    let mut opts = BenchOptions::default();
    let mut experiments = Vec::new();
    let mut json_dir = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                opts.scale = v.parse().expect("--scale must be an integer");
            }
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                opts.thread_counts = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads must be integers"))
                    .collect();
            }
            "--shards" => {
                let v = args.next().expect("--shards needs a value");
                opts.shard_counts = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards must be integers"))
                    .collect();
                assert!(
                    opts.shard_counts.iter().all(|&s| s > 0),
                    "--shards values must be at least 1"
                );
            }
            "--json" => {
                let v = args.next().expect("--json needs a directory path");
                json_dir = Some(std::path::PathBuf::from(v));
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                print_usage();
                std::process::exit(2);
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    opts.artifact_dir = json_dir.clone();
    (experiments, opts, json_dir)
}

fn print_usage() {
    eprintln!(
        "usage: dgap-bench <experiment>... [--scale N] [--threads a,b,c] [--shards a,b,c] [--json DIR]\n\
         experiments: fig1a fig1b fig1c fig5 fig6 table3 fig7 fig8 table4 table5 fig9 recovery\n\
         beyond the paper: sharding (ingest + kernels vs shard count; see --shards)\n\
                      serve    (GraphService mixed mutate/query traffic + latency percentiles)\n\
                      serve-net (remote TCP tenants: wire protocol, tails per connection count)\n\
                      snapshot (sequential vs parallel/incremental FrozenView capture)\n\
                      analytics (dyn-dispatch vs zero-dispatch CSR kernels + UnifiedView merge)\n\
                      incremental (epoch-delta PageRank/CC vs full recompute per burst size)\n\
         groups:      motivation insertion analysis components all\n\
         options:     --scale N       divide every Table 2 dataset by N (default 8192)\n\
                      --threads LIST  writer-thread counts for table3 (default 1,8,16)\n\
                      --shards LIST   shard counts for sharding (default 1,2,4,8)\n\
                      --json DIR      also write DIR/BENCH_<experiment>.json per experiment"
    );
}

fn expand(name: &str) -> Vec<&'static str> {
    match name {
        "fig1a" => vec!["fig1a"],
        "fig1b" => vec!["fig1b"],
        "fig1c" => vec!["fig1c"],
        "fig5" => vec!["fig5"],
        "fig6" => vec!["fig6"],
        "table3" => vec!["table3"],
        "fig7" => vec!["fig7"],
        "fig8" => vec!["fig8"],
        "table4" => vec!["table4"],
        "table5" => vec!["table5"],
        "fig9" => vec!["fig9"],
        "recovery" => vec!["recovery"],
        "sharding" => vec!["sharding"],
        "serve" => vec!["serve"],
        "serve-net" | "serve_net" => vec!["serve_net"],
        "snapshot" => vec!["snapshot"],
        "analytics" => vec!["analytics"],
        "incremental" => vec!["incremental"],
        "motivation" => vec!["fig1a", "fig1b", "fig1c"],
        "insertion" => vec!["fig5", "fig6", "table3"],
        "analysis" => vec!["fig7", "fig8", "table4"],
        "components" => vec!["table5", "fig9", "recovery"],
        "all" => vec![
            "fig1a",
            "fig1b",
            "fig1c",
            "fig5",
            "fig6",
            "table3",
            "fig7",
            "fig8",
            "table4",
            "table5",
            "fig9",
            "recovery",
            "sharding",
            "serve",
            "serve_net",
            "snapshot",
            "analytics",
            "incremental",
        ],
        other => {
            eprintln!("unknown experiment: {other}");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn run(name: &str, opts: &BenchOptions) -> Table {
    match name {
        "fig1a" => exp::fig1a(opts),
        "fig1b" => exp::fig1b(opts),
        "fig1c" => exp::fig1c(opts),
        "fig5" => exp::fig5(opts),
        "fig6" => exp::fig6(opts),
        "table3" => exp::table3(opts),
        "fig7" => exp::fig7(opts),
        "fig8" => exp::fig8(opts),
        "table4" => exp::table4(opts),
        "table5" => exp::table5(opts),
        "fig9" => exp::fig9(opts),
        "recovery" => exp::recovery(opts),
        "sharding" => exp::sharding(opts),
        "serve" => exp::serve(opts),
        "serve_net" => exp::serve_net(opts),
        "snapshot" => exp::snapshot(opts),
        "analytics" => exp::analytics(opts),
        "incremental" => exp::incremental(opts),
        _ => unreachable!("expand() filters unknown names"),
    }
}

/// Serialise the run's options as the `config` object embedded in every
/// `BENCH_*.json` (`Vec<usize>`'s `Debug` form is valid JSON).
fn config_json(opts: &BenchOptions) -> String {
    format!(
        "{{\"scale\": {}, \"thread_counts\": {:?}, \"shard_counts\": {:?}, \"warmup_fraction\": {}}}",
        opts.scale, opts.thread_counts, opts.shard_counts, opts.warmup_fraction
    )
}

fn main() {
    let (requested, opts, json_dir) = parse_args();
    println!(
        "# dgap-bench: scale 1/{}, writer threads {:?}, shard counts {:?}",
        opts.scale, opts.thread_counts, opts.shard_counts
    );
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create --json directory");
    }
    let mut names: Vec<&'static str> = Vec::new();
    for r in &requested {
        for n in expand(r) {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    for name in names {
        let start = std::time::Instant::now();
        let table = run(name, &opts);
        table.print();
        println!(
            "({name} completed in {:.1}s)\n",
            start.elapsed().as_secs_f64()
        );
        if let Some(dir) = &json_dir {
            let path = dir.join(format!("BENCH_{name}.json"));
            std::fs::write(&path, table.to_json(name, &config_json(&opts)))
                .expect("write BENCH json");
            println!("(wrote {})\n", path.display());
        }
    }
}
