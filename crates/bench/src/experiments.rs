//! One runner per paper table / figure.
//!
//! Every function prints a [`Table`] whose rows mirror the corresponding
//! artefact in the paper.  Absolute numbers differ from the paper (the
//! substrate is an emulator and the datasets are scaled), but the comparisons
//! — who wins, by roughly what factor, where the crossovers are — are the
//! reproduction target; `EXPERIMENTS.md` records both sides.

use crate::harness::{measure, pool_for_edges, AnySystem, BenchOptions, Measurement, Workload};
use crate::report::{meps, ratio, secs, Table};
use analytics::{
    bc_csr, bc_parallel, bfs_csr, bfs_parallel, cc_csr, cc_parallel, highest_degree_vertex,
    pagerank_csr, pagerank_parallel, with_threads,
};
use baselines::SystemKind;
use dgap::{Dgap, DgapConfig, DgapVariant, DynamicGraph, GraphView, SnapshotSource};
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;
use workloads::datasets::{ALL_DATASETS, CIT_PATENTS, LIVEJOURNAL, ORKUT, SMALL_DATASETS};
use workloads::DatasetSpec;

// ----------------------------------------------------------------------
// Fig. 1 — motivation micro-benchmarks
// ----------------------------------------------------------------------

/// Fig. 1(a): write amplification of naive (no edge log) PMA-CSR insertion,
/// sampled over insertion progress on the Orkut-scaled workload.
pub fn fig1a(opts: &BenchOptions) -> Table {
    let w = Workload::build(ORKUT, opts);
    let pool = pool_for_edges(w.edges.len());
    let sys = AnySystem::build_dgap_variant(
        DgapVariant::NoElog,
        Arc::clone(&pool),
        w.num_vertices,
        w.edges.len(),
    );
    let mut table = Table::new(
        "Fig 1(a): write amplification of PMA-based CSR inserts (Orkut-scaled, no edge log)",
        &["progress", "logical MB", "media MB", "write amplification"],
    );
    let deciles = 10usize;
    let chunk = w.edges.len().div_ceil(deciles).max(1);
    for (i, edges) in w.edges.chunks(chunk).enumerate() {
        let before = pool.stats_snapshot();
        sys.insert_all(edges);
        let d = pool.stats_snapshot().delta_since(&before);
        table.row(vec![
            format!("{}%", (i + 1) * 100 / deciles),
            format!("{:.2}", d.logical_bytes_written as f64 / 1e6),
            format!("{:.2}", d.media_bytes_written as f64 / 1e6),
            format!("{:.2}", d.write_amplification()),
        ]);
    }
    table
}

/// Fig. 1(b): time to insert a graph into a mutable CSR held in DRAM, on PM,
/// and on PM with PMDK-style transactions.
pub fn fig1b(opts: &BenchOptions) -> Table {
    let w = Workload::build(CIT_PATENTS, opts);
    let mut table = Table::new(
        "Fig 1(b): insert time, DRAM vs PM vs PM+TX (CitPatents-scaled, naive mutable CSR)",
        &["target", "wall s", "simulated s", "total s"],
    );
    let cases: [(&str, bool, DgapVariant); 3] = [
        ("DRAM", true, DgapVariant::NoElog),
        ("PM", false, DgapVariant::NoElog),
        ("PM-TX", false, DgapVariant::NoElogUlog),
    ];
    for (label, dram, variant) in cases {
        let bytes = (w.edges.len() * 256).clamp(32 << 20, 1 << 30);
        let pool = Arc::new(PmemPool::new(if dram {
            PmemConfig::dram_with_capacity(bytes)
        } else {
            PmemConfig::with_capacity(bytes).persistence_tracking(false)
        }));
        let sys = AnySystem::build_dgap_variant(
            variant,
            Arc::clone(&pool),
            w.num_vertices,
            w.edges.len(),
        );
        let m = measure(&pool, w.edges.len(), || sys.insert_all(&w.edges));
        table.row(vec![
            label.to_string(),
            secs(m.wall_secs),
            secs(m.simulated_secs),
            secs(m.total_secs()),
        ]);
    }
    table
}

/// Fig. 1(c): latency of writing the same volume of data sequentially,
/// randomly and repeatedly in-place on (emulated) persistent memory.
pub fn fig1c(_opts: &BenchOptions) -> Table {
    let pool = PmemPool::new(PmemConfig::with_capacity(32 << 20));
    let region = pool.alloc(8 << 20, 256).unwrap();
    let total_writes = 16_384usize;
    let payload = [0xabu8; 64];
    let mut table = Table::new(
        "Fig 1(c): persistent write latency by access pattern (1 MiB in 64 B units)",
        &["pattern", "simulated ms", "per write ns"],
    );
    let mut run = |label: &str, mut addr: Box<dyn FnMut(usize) -> u64>| {
        let before = pool.stats_snapshot();
        // Flush per store, fence once per 8 stores — the grouping a real
        // application uses when it batches ordering points.  Repeatedly
        // flushing the same line inside one ordering window is what makes
        // the in-place pattern pathological on Optane (Fig. 1(c)).
        for i in 0..total_writes {
            let off = addr(i);
            pool.write(off, &payload);
            pool.flush(off, payload.len());
            if i % 8 == 7 {
                pool.fence();
            }
        }
        pool.fence();
        let d = pool.stats_snapshot().delta_since(&before);
        table.row(vec![
            label.to_string(),
            format!("{:.3}", d.simulated_ns as f64 / 1e6),
            format!("{:.0}", d.simulated_ns as f64 / total_writes as f64),
        ]);
    };
    run("Seq", Box::new(move |i| region + (i as u64) * 64));
    let region2 = region + (2 << 20);
    run(
        "Rnd",
        Box::new(move |i| {
            let x = (i as u64).wrapping_mul(2654435761) % 32768;
            region2 + x * 64
        }),
    );
    let region3 = region + (4 << 20);
    run("In-place", Box::new(move |_| region3));
    table
}

// ----------------------------------------------------------------------
// Fig. 5 — XPGraph archiving threshold
// ----------------------------------------------------------------------

/// Fig. 5: XPGraph insert throughput as a function of the archiving
/// threshold (2^1 .. 2^16), LiveJournal-scaled workload.
pub fn fig5(opts: &BenchOptions) -> Table {
    let w = Workload::build(LIVEJOURNAL, opts);
    let mut table = Table::new(
        "Fig 5: XPGraph insert throughput vs archiving threshold (LiveJournal-scaled)",
        &["threshold", "MEPS (wall)", "MEPS (incl. simulated PM time)"],
    );
    for exp in 1..=16u32 {
        let threshold = 1usize << exp;
        let pool = pool_for_edges(w.edges.len());
        let sys = baselines::XpGraph::new(Arc::clone(&pool), w.num_vertices, threshold)
            .expect("create XPGraph");
        // Warm up, then measure, mirroring the main insertion benchmark.
        for &(s, d) in w.warmup() {
            sys.insert_edge(s, d).expect("insert");
        }
        let m = measure(&pool, w.measured().len(), || {
            for &(s, d) in w.measured() {
                sys.insert_edge(s, d).expect("insert");
            }
        });
        table.row(vec![
            format!("2^{exp}"),
            meps(m.meps()),
            meps(m.effective_meps()),
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// Fig. 6 / Table 3 — insertion throughput
// ----------------------------------------------------------------------

fn insert_run(kind: SystemKind, w: &Workload, threads: usize) -> Measurement {
    let pool = pool_for_edges(w.edges.len());
    let sys = AnySystem::build(kind, Arc::clone(&pool), w.num_vertices, w.edges.len());
    sys.insert_all(w.warmup());
    let m = measure(&pool, w.measured().len(), || {
        sys.insert_parallel(w.measured(), threads)
    });
    sys.flush();
    m
}

/// Fig. 6: single-writer-thread insertion throughput (MEPS) for every
/// dynamic system on every dataset.
pub fn fig6(opts: &BenchOptions) -> Table {
    let mut table = Table::new(
        "Fig 6: dynamic graph insertion throughput, 1 writer thread (MEPS, incl. simulated PM time)",
        &["dataset", "DGAP", "BAL", "LLAMA", "GraphOne-FD", "XPGraph"],
    );
    for spec in ALL_DATASETS {
        let w = Workload::build(spec, opts);
        let mut cells = vec![spec.name.to_string()];
        for kind in SystemKind::dynamic_systems() {
            let m = insert_run(kind, &w, 1);
            cells.push(meps(m.effective_meps()));
        }
        table.row(cells);
    }
    table
}

/// Table 3: insertion throughput with 1, 8 and 16 writer threads.
pub fn table3(opts: &BenchOptions) -> Table {
    let mut table = Table::new(
        "Table 3: insertion throughput (MEPS, incl. simulated PM time) vs writer threads",
        &[
            "dataset",
            "threads",
            "DGAP",
            "BAL",
            "LLAMA",
            "GraphOne-FD",
            "XPGraph",
        ],
    );
    for spec in ALL_DATASETS {
        let w = Workload::build(spec, opts);
        for &threads in &opts.thread_counts {
            let mut cells = vec![spec.name.to_string(), format!("T{threads}")];
            for kind in SystemKind::dynamic_systems() {
                let m = insert_run(kind, &w, threads);
                cells.push(meps(m.effective_meps()));
            }
            table.row(cells);
        }
    }
    table
}

// ----------------------------------------------------------------------
// Fig. 7 / Fig. 8 / Table 4 — analysis kernels
// ----------------------------------------------------------------------

/// Which kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// PageRank, 20 iterations.
    PageRank,
    /// Direction-optimizing BFS from the highest-degree vertex.
    Bfs,
    /// Brandes betweenness centrality from the highest-degree vertex.
    Bc,
    /// Shiloach–Vishkin connected components.
    Cc,
}

impl Kernel {
    fn label(self) -> &'static str {
        match self {
            Kernel::PageRank => "PR",
            Kernel::Bfs => "BFS",
            Kernel::Bc => "BC",
            Kernel::Cc => "CC",
        }
    }
}

fn run_kernel(view: &impl GraphView, kernel: Kernel, threads: usize, source: u64) -> f64 {
    let start = std::time::Instant::now();
    with_threads(threads, || match kernel {
        Kernel::PageRank => {
            let r = pagerank_parallel(view, analytics::pagerank::DEFAULT_ITERATIONS);
            std::hint::black_box(r.len());
        }
        Kernel::Bfs => {
            let p = bfs_parallel(view, source);
            std::hint::black_box(p.len());
        }
        Kernel::Bc => {
            let c = bc_parallel(view, source);
            std::hint::black_box(c.len());
        }
        Kernel::Cc => {
            let c = cc_parallel(view);
            std::hint::black_box(c.len());
        }
    });
    start.elapsed().as_secs_f64()
}

/// Build every system (including the CSR reference), load the workload and
/// return `(label, kernel seconds)` for one kernel at one thread count.
fn analysis_run(
    spec: DatasetSpec,
    opts: &BenchOptions,
    kernels: &[Kernel],
    threads: usize,
) -> Vec<(String, Vec<f64>)> {
    let w = Workload::build(spec, opts);
    let mut out = Vec::new();

    // CSR reference first (it also provides the BFS/BC source vertex).
    let pool = pool_for_edges(w.edges.len());
    let csr = AnySystem::build_csr(Arc::clone(&pool), w.num_vertices, &w.edges);
    let csr_view = csr.view();
    let source = highest_degree_vertex(&csr_view);
    let times: Vec<f64> = kernels
        .iter()
        .map(|&k| run_kernel(&csr_view, k, threads, source))
        .collect();
    out.push(("CSR".to_string(), times));

    for kind in SystemKind::dynamic_systems() {
        let pool = pool_for_edges(w.edges.len());
        let sys = AnySystem::build(kind, Arc::clone(&pool), w.num_vertices, w.edges.len());
        sys.insert_all(&w.edges);
        sys.flush();
        let view = sys.view();
        let times: Vec<f64> = kernels
            .iter()
            .map(|&k| run_kernel(&view, k, threads, source))
            .collect();
        out.push((kind.label().to_string(), times));
    }
    out
}

fn normalised_table(title: &str, kernels: &[Kernel], opts: &BenchOptions) -> Table {
    let mut header = vec!["dataset", "kernel"];
    let mut labels = vec!["CSR".to_string()];
    labels.extend(SystemKind::dynamic_systems().map(|k| k.label().to_string()));
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    header.extend(label_refs.iter().copied());
    let mut table = Table::new(title, &header);
    for spec in ALL_DATASETS {
        let results = analysis_run(spec, opts, kernels, 1);
        for (ki, kernel) in kernels.iter().enumerate() {
            let csr_time = results[0].1[ki].max(1e-9);
            let mut cells = vec![spec.name.to_string(), kernel.label().to_string()];
            for (_, times) in &results {
                cells.push(ratio(times[ki] / csr_time));
            }
            table.row(cells);
        }
    }
    table
}

/// Fig. 7: PageRank and Connected Components running time normalised to the
/// CSR baseline (single analysis thread).
pub fn fig7(opts: &BenchOptions) -> Table {
    normalised_table(
        "Fig 7: PR and CC time normalised to CSR (1 thread; smaller is better)",
        &[Kernel::PageRank, Kernel::Cc],
        opts,
    )
}

/// Fig. 8: BFS and Betweenness Centrality running time normalised to CSR.
pub fn fig8(opts: &BenchOptions) -> Table {
    normalised_table(
        "Fig 8: BFS and BC time normalised to CSR (1 thread; smaller is better)",
        &[Kernel::Bfs, Kernel::Bc],
        opts,
    )
}

/// Table 4: absolute kernel times (seconds) at 1 and 16 analysis threads.
pub fn table4(opts: &BenchOptions) -> Table {
    let kernels = [Kernel::PageRank, Kernel::Bfs, Kernel::Bc, Kernel::Cc];
    let mut header = vec!["dataset", "kernel", "threads", "CSR"];
    let labels: Vec<String> = SystemKind::dynamic_systems()
        .iter()
        .map(|k| k.label().to_string())
        .collect();
    header.extend(labels.iter().map(String::as_str));
    let mut table = Table::new(
        "Table 4: kernel execution time in seconds (T1 and T16)",
        &header,
    );
    let threads_cases = [1usize, *opts.thread_counts.last().unwrap_or(&16)];
    for spec in ALL_DATASETS {
        for &threads in &threads_cases {
            let results = analysis_run(spec, opts, &kernels, threads);
            for (ki, kernel) in kernels.iter().enumerate() {
                let mut cells = vec![
                    spec.name.to_string(),
                    kernel.label().to_string(),
                    format!("T{threads}"),
                ];
                for (_, times) in &results {
                    cells.push(secs(times[ki]));
                }
                table.row(cells);
            }
        }
    }
    table
}

// ----------------------------------------------------------------------
// Table 5 — ablation
// ----------------------------------------------------------------------

/// Table 5: insertion time of DGAP with its designs removed one by one.
pub fn table5(opts: &BenchOptions) -> Table {
    let mut table = Table::new(
        "Table 5: insertion time in seconds (wall + simulated PM) of the DGAP ablation variants",
        &["dataset", "DGAP", "No EL", "No EL&UL", "No EL&UL&DP"],
    );
    for spec in SMALL_DATASETS {
        let w = Workload::build(spec, opts);
        let mut cells = vec![spec.name.to_string()];
        for variant in DgapVariant::all() {
            let pool = pool_for_edges(w.edges.len());
            let sys = AnySystem::build_dgap_variant(
                variant,
                Arc::clone(&pool),
                w.num_vertices,
                w.edges.len(),
            );
            let m = measure(&pool, w.edges.len(), || sys.insert_all(&w.edges));
            cells.push(secs(m.total_secs()));
        }
        table.row(cells);
    }
    table
}

// ----------------------------------------------------------------------
// Fig. 9 — edge-log size sweep
// ----------------------------------------------------------------------

/// Fig. 9: impact of the per-section edge-log size on PM consumption,
/// utilisation and insertion time.
pub fn fig9(opts: &BenchOptions) -> Table {
    let mut table = Table::new(
        "Fig 9: per-section edge-log size sweep (Orkut- and LiveJournal-scaled)",
        &[
            "dataset",
            "ELOG_SZ",
            "total log MB",
            "utilisation %",
            "insert s (wall+sim)",
        ],
    );
    for spec in [ORKUT, LIVEJOURNAL] {
        let w = Workload::build(spec, opts);
        for exp in 6..=14u32 {
            let elog_size = 1usize << exp; // 64 B .. 16 KiB
            let pool = pool_for_edges(w.edges.len());
            let cfg = DgapConfig::for_graph(w.num_vertices, w.edges.len()).elog_size(elog_size);
            let sys = Dgap::create(Arc::clone(&pool), cfg).expect("create DGAP");
            let m = measure(&pool, w.edges.len(), || {
                for &(s, d) in &w.edges {
                    sys.insert_edge(s, d).expect("insert");
                }
            });
            let stats = sys.elog_stats();
            let entries = sys.config().elog_entries().max(1);
            let fills = stats.merges.max(1) * entries as u64;
            let utilisation = (stats.appends as f64 / fills as f64 * 100.0).min(100.0);
            table.row(vec![
                spec.name.to_string(),
                format!("{elog_size}"),
                format!("{:.2}", sys.elog_total_bytes() as f64 / 1e6),
                format!("{utilisation:.1}"),
                secs(m.total_secs()),
            ]);
        }
    }
    table
}

// ----------------------------------------------------------------------
// §4.4 — recovery
// ----------------------------------------------------------------------

/// §4.4 + beyond: restart/crash-recovery wall time.
///
/// Rows per dataset (all on crash-tracking pools; `speedup vs seq` is the
/// single-instance sequential crash scan divided by the row's time):
///
/// * `normal`       — graceful-shutdown backup reload
/// * `crash-seq`    — crash scan forced onto the sequential path
///   ([`DgapConfig::sequential_recovery`], the PR-before baseline)
/// * `crash-par`    — the chunked parallel crash scan, one row per
///   `--threads` entry (split width bounded via `with_threads`)
/// * `verify`       — the full integrity pass ([`Dgap::verify`]) over the
///   recovered instance: every durable region re-checksummed, the cost
///   `verify_data_on_open` adds to a restart (and of one scrub pass)
/// * `crash-shards` — the same data partitioned across each `--shards`
///   entry, reopened with [`sharded::ShardedGraph::open_dgap`] (per-shard
///   opens fanned out on the pool, each shard's scan itself parallel)
/// * `reopen+client-table` — the crash-shards reopen plus the exactly-once
///   machinery `GraphService::open` layers on top: the durable-watermark
///   peek and one [`sharded::ClientTable::create_or_open`] per shard
///   (in-doubt resolution included), on pools whose client tables were
///   populated by a tagged ingest before the crash
pub fn recovery(opts: &BenchOptions) -> Table {
    use sharded::ShardedGraph;

    /// Restore times are single-digit milliseconds at bench scales, so
    /// every row is the **minimum of this many trials** (repeated opens of
    /// the same crashed pool are idempotent).
    const TRIALS: usize = 3;
    /// Recovery is an `O(V + E)` scan of data the *insert* experiments
    /// take minutes to build, so it affords a denser graph than the shared
    /// `--scale` default: the effective scale divisor is `--scale /
    /// RECOVERY_SCALE_BOOST` (same datasets, 8x the edges), which is what
    /// gives the parallel scan enough work to show its speedup.
    const RECOVERY_SCALE_BOOST: u64 = 8;

    let opts = BenchOptions {
        scale: (opts.scale / RECOVERY_SCALE_BOOST).max(1),
        ..opts.clone()
    };
    let opts = &opts;
    let mut table = Table::new(
        "Recovery: restart + crash-recovery time, sequential vs parallel vs sharded \
         (restore = wall + simulated-PM critical path)",
        &[
            "dataset",
            "mode",
            "threads",
            "shards",
            "edges",
            "wall s",
            "pm s",
            "restore s",
            "speedup vs seq",
        ],
    );
    // Min wall over the trials plus the (deterministic, measured once)
    // simulated device time.  `concurrency` is how many workers the scan
    // spreads its device accesses over: the chunked parallel scan
    // partitions the slot range evenly, so its per-thread share — the
    // simulated critical path, the same convention as `sharding`'s
    // "pm crit-path s" column — is the total divided by the split width.
    let timed = |pool: &PmemPool, f: &mut dyn FnMut()| -> (f64, f64) {
        let mut best_wall = f64::INFINITY;
        let mut sim = 0.0f64;
        for trial in 0..TRIALS {
            let before = pool.stats_snapshot();
            let start = std::time::Instant::now();
            f();
            best_wall = best_wall.min(start.elapsed().as_secs_f64());
            if trial == 0 {
                sim = pool
                    .stats_snapshot()
                    .delta_since(&before)
                    .simulated_seconds();
            }
        }
        (best_wall, sim)
    };
    for spec in SMALL_DATASETS {
        let w = Workload::build(spec, opts);
        let num_edges = w.edges.len();
        // Recovery experiments need the crash-tracking pool; resize churn
        // leaks abandoned generations into the bump allocator, hence the
        // generous headroom.
        let bytes = (num_edges * 1024)
            .max(w.num_vertices * 1024)
            .clamp(64 << 20, 2 << 30);
        let cfg = DgapConfig::for_graph(w.num_vertices, num_edges);

        // One build serves every single-instance row: the first (normal)
        // open clears the shutdown flag, so each later open of the same
        // pool takes the crash path over identical persistent data.
        let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(bytes)));
        let g = Dgap::create(Arc::clone(&pool), cfg.clone()).expect("create");
        for &(s, d) in &w.edges {
            g.insert_edge(s, d).expect("insert");
        }
        g.shutdown().expect("shutdown");
        drop(g);
        pool.simulate_crash();

        // Opening clears the shutdown flag, so the normal-restart row
        // re-arms it (an untimed `shutdown`) between trials.
        let mut normal_wall = f64::INFINITY;
        let mut normal_sim = 0.0f64;
        for trial in 0..TRIALS {
            let before = pool.stats_snapshot();
            let start = std::time::Instant::now();
            let (g2, kind) = Dgap::open(Arc::clone(&pool), cfg.clone()).expect("open");
            assert_eq!(kind, dgap::RecoveryKind::NormalRestart);
            std::hint::black_box(g2.num_vertices());
            normal_wall = normal_wall.min(start.elapsed().as_secs_f64());
            if trial == 0 {
                normal_sim = pool
                    .stats_snapshot()
                    .delta_since(&before)
                    .simulated_seconds();
            }
            g2.shutdown().expect("re-arm backup");
        }
        // The trials above left the shutdown flag armed; one untimed open
        // clears it so every row below takes the crash path.  The probe
        // also answers, per thread count, whether the crash scan actually
        // fans out (small graphs fall back to the sequential scan — their
        // device time must NOT be divided as if it had been split).
        let probe = Dgap::open(Arc::clone(&pool), cfg.clone()).expect("open").0;
        pool.simulate_crash();
        let (seq_wall, seq_sim) = timed(&pool, &mut || {
            let (g2, kind) =
                Dgap::open(Arc::clone(&pool), cfg.clone().sequential_recovery()).expect("open");
            assert!(matches!(kind, dgap::RecoveryKind::CrashRecovery { .. }));
            std::hint::black_box(g2.num_vertices());
        });
        let seq_secs = seq_wall + seq_sim;
        // (mode, threads, shards, wall, pm critical path)
        let mut rows: Vec<(String, String, String, f64, f64)> = vec![
            (
                "normal".into(),
                "1".into(),
                "1".into(),
                normal_wall,
                normal_sim,
            ),
            (
                "crash-seq".into(),
                "1".into(),
                "1".into(),
                seq_wall,
                seq_sim,
            ),
        ];
        for &threads in &opts.thread_counts {
            pool.simulate_crash();
            let (par_wall, par_sim) = timed(&pool, &mut || {
                with_threads(threads, || {
                    let (g2, kind) = Dgap::open(Arc::clone(&pool), cfg.clone()).expect("open");
                    assert!(matches!(kind, dgap::RecoveryKind::CrashRecovery { .. }));
                    std::hint::black_box(g2.num_vertices());
                });
            });
            let scanners = if probe.crash_scan_is_parallel(threads) {
                threads
            } else {
                1
            };
            rows.push((
                "crash-par".into(),
                format!("{threads}"),
                "1".into(),
                par_wall,
                par_sim / scanners as f64,
            ));
        }

        // Integrity verify pass: the cost of re-checksumming every durable
        // region of the recovered instance ([`Dgap::verify`]) — what
        // `verify_data_on_open` adds to a restart and what one background
        // scrub pass costs at steady state.
        {
            pool.simulate_crash();
            let g2 = Dgap::open(Arc::clone(&pool), cfg.clone()).expect("open").0;
            let (verify_wall, verify_sim) = timed(&pool, &mut || {
                let report = g2.verify();
                assert!(!report.is_fatal(), "pristine pool must verify clean");
                std::hint::black_box(report.bytes_verified());
            });
            rows.push((
                "verify".into(),
                "1".into(),
                "1".into(),
                verify_wall,
                verify_sim,
            ));
        }

        // Sharded rows: the same workload partitioned across the shards
        // (`--shards`), every shard crashed, the whole graph reopened in
        // one call.
        for &shards in &opts.shard_counts {
            let per_shard_bytes = (num_edges.div_ceil(shards) * 3 * 1024)
                .max(w.num_vertices * 1024)
                .clamp(64 << 20, 1 << 30);
            let graph = ShardedGraph::create_dgap(shards, w.num_vertices, num_edges, |_| {
                PmemConfig::with_capacity(per_shard_bytes)
            })
            .expect("create sharded DGAP");
            for &(s, d) in &w.edges {
                graph.insert_edge(s, d).expect("insert");
            }
            let pools: Vec<Arc<PmemPool>> = (0..shards)
                .map(|i| Arc::clone(graph.shard(i).pool()))
                .collect();
            drop(graph); // no shutdown: every shard takes the crash path
            for p in &pools {
                p.simulate_crash();
            }
            let cfg = cfg.clone();
            let mut shard_wall = f64::INFINITY;
            let mut shard_crit = 0.0f64;
            for trial in 0..TRIALS {
                let before: Vec<_> = pools.iter().map(|p| p.stats_snapshot()).collect();
                let start = std::time::Instant::now();
                let (g2, recovered) =
                    ShardedGraph::open_dgap(pools.clone(), |_| cfg.clone()).expect("open_dgap");
                assert_eq!(recovered.crashed_shards(), shards);
                std::hint::black_box(g2.num_edges());
                shard_wall = shard_wall.min(start.elapsed().as_secs_f64());
                if trial == 0 {
                    // Shards recover in parallel, so the device cost on the
                    // critical path is the slowest shard's, not the sum.
                    shard_crit = pools
                        .iter()
                        .zip(&before)
                        .map(|(p, b)| p.stats_snapshot().delta_since(b).simulated_seconds())
                        .fold(0.0f64, f64::max);
                }
            }
            rows.push((
                "crash-shards".into(),
                "pool".into(),
                format!("{shards}"),
                shard_wall,
                shard_crit,
            ));

            // Exactly-once reopen: the same crashed pools, plus the work
            // `GraphService::open` layers on top — restoring the per-client
            // operation tables that make ingest detectably exactly-once.
            // A short tagged ingest populates the tables first, so the
            // timed reopen pays the watermark peek and in-doubt resolution
            // on real data, not on empty slots.
            {
                use obs::Registry;
                use sharded::{ClientTable, IngestPipeline, ShardedConfig};

                let (graph, _) =
                    ShardedGraph::open_dgap(pools.clone(), |_| cfg.clone()).expect("open_dgap");
                let graph = Arc::new(graph);
                let tables: Vec<ClientTable> = (0..shards)
                    .map(|i| {
                        let shard = graph.shard(i);
                        ClientTable::create_or_open(shard.pool(), shard.num_edges() as u64)
                            .expect("create client table")
                    })
                    .collect();
                let pipeline = IngestPipeline::with_client_tables(
                    Arc::clone(&graph),
                    &ShardedConfig::builder().shards(shards).build(),
                    Arc::new(Registry::new()),
                    tables,
                );
                for (op, chunk) in w.edges.chunks(256).take(16).enumerate() {
                    let ops: Vec<dgap::Update> = chunk
                        .iter()
                        .map(|&(s, d)| dgap::Update::InsertEdge(s, d))
                        .collect();
                    pipeline
                        .submit_tagged(&ops, 1, (op + 1) as u64)
                        .expect("tagged submit");
                }
                pipeline.flush_all().expect("flush tagged ingest");
                drop(pipeline);
                drop(graph);
                for p in &pools {
                    p.simulate_crash();
                }
                let mut ct_wall = f64::INFINITY;
                let mut ct_crit = 0.0f64;
                for trial in 0..TRIALS {
                    let before: Vec<_> = pools.iter().map(|p| p.stats_snapshot()).collect();
                    let start = std::time::Instant::now();
                    let (g2, recovered) =
                        ShardedGraph::open_dgap(pools.clone(), |_| cfg.clone()).expect("open_dgap");
                    assert!(
                        recovered.client_watermarks().committed(1).unwrap_or(0) > 0,
                        "tagged ingest must leave a durable watermark"
                    );
                    let restored: Vec<ClientTable> = (0..shards)
                        .map(|i| {
                            let shard = g2.shard(i);
                            ClientTable::create_or_open(shard.pool(), shard.num_edges() as u64)
                                .expect("reopen client table")
                        })
                        .collect();
                    std::hint::black_box(restored.len());
                    ct_wall = ct_wall.min(start.elapsed().as_secs_f64());
                    if trial == 0 {
                        ct_crit = pools
                            .iter()
                            .zip(&before)
                            .map(|(p, b)| p.stats_snapshot().delta_since(b).simulated_seconds())
                            .fold(0.0f64, f64::max);
                    }
                }
                rows.push((
                    "reopen+client-table".into(),
                    "pool".into(),
                    format!("{shards}"),
                    ct_wall,
                    ct_crit,
                ));
            }
        }

        for (mode, threads, shards, wall_secs, pm_secs) in rows {
            let restore_secs = wall_secs + pm_secs;
            table.row(vec![
                spec.name.to_string(),
                mode,
                threads,
                shards,
                format!("{num_edges}"),
                secs(wall_secs),
                secs(pm_secs),
                secs(restore_secs),
                ratio(seq_secs / restore_secs.max(1e-9)),
            ]);
        }
    }
    table
}

// ----------------------------------------------------------------------
// Beyond the paper — sharded batch ingest (crates/sharded)
// ----------------------------------------------------------------------

/// `sharding`: ingest throughput and kernel runtime of the partitioned
/// engine (`ShardedGraph<Dgap>` + `IngestPipeline`) as the shard count
/// grows.  Not a paper artefact — this measures the scaling seam the
/// ROADMAP's production-scale direction builds on.  The single-shard row is
/// the degenerate case (one DGAP behind one queue) and serves as the
/// baseline the other rows are compared against.
pub fn sharding(opts: &BenchOptions) -> Table {
    use sharded::{IngestPipeline, ShardedConfig, ShardedGraph};

    let w = Workload::build(ORKUT, opts);
    let num_edges = w.edges.len();
    let mut table = Table::new(
        format!(
            "Sharding: batched ingest + kernels vs shard count (Orkut-scaled, {num_edges} edges)"
        ),
        &[
            "shards",
            "ingest s",
            "ingest MEPS",
            "submit ns/op",
            "pm crit-path s",
            "skew",
            "pagerank s",
            "bfs s",
        ],
    );
    for &shards in &opts.shard_counts {
        // Each shard gets 3x its even share of the single-graph headroom
        // (skew routes more than 1/N of the edges to the busiest shard, and
        // rebalance/resize churn leaks abandoned generations into the bump
        // allocator regardless of shard size).  The arenas are lazily
        // committed, so unused capacity costs nothing.
        let per_shard_edges = num_edges.div_ceil(shards.max(1));
        let bytes = (per_shard_edges * 3 * 1024)
            .max(w.num_vertices * 1024)
            .clamp(64 << 20, 1 << 30);
        let graph = Arc::new(
            ShardedGraph::create_dgap(shards, w.num_vertices, num_edges, |_| {
                PmemConfig::with_capacity(bytes).persistence_tracking(false)
            })
            .expect("create sharded DGAP"),
        );
        let cfg = ShardedConfig::builder()
            .shards(shards)
            .queue_capacity(64)
            .batch_size(4096)
            .build();
        let pipeline = IngestPipeline::new(Arc::clone(&graph), &cfg);

        let before: Vec<_> = (0..shards)
            .map(|i| graph.shard(i).pool().stats_snapshot())
            .collect();
        let start = std::time::Instant::now();
        // Producer-side cost of `submit` alone (scatter + enqueue): the
        // thread-local scatter reuse shows up directly in this number.
        let mut submit_secs = 0.0f64;
        for batch in workloads::batches(&w.edges, cfg.batch_size) {
            let t = std::time::Instant::now();
            pipeline.submit_edges(batch).expect("submit");
            submit_secs += t.elapsed().as_secs_f64();
        }
        pipeline.flush_all().expect("flush_all");
        let wall = start.elapsed().as_secs_f64();
        let submit_ns_per_op = submit_secs * 1e9 / num_edges.max(1) as f64;
        // Shards run in parallel, so the simulated-PM cost on the critical
        // path is the *slowest* shard's delta, not the sum.
        let crit_path = (0..shards)
            .map(|i| {
                graph
                    .shard(i)
                    .pool()
                    .stats_snapshot()
                    .delta_since(&before[i])
                    .simulated_seconds()
            })
            .fold(0.0f64, f64::max);
        let skew = pipeline.stats().skew();

        let view = graph.consistent_view();
        assert_eq!(view.num_edges(), num_edges, "{shards} shards lost edges");
        let start = std::time::Instant::now();
        let ranks = pagerank_parallel(&view, 20);
        let pr_secs = start.elapsed().as_secs_f64();
        std::hint::black_box(&ranks);

        let source = highest_degree_vertex(&view);
        let start = std::time::Instant::now();
        let parents = bfs_parallel(&view, source);
        let bfs_secs = start.elapsed().as_secs_f64();
        std::hint::black_box(&parents);

        table.row(vec![
            format!("{shards}"),
            secs(wall),
            meps(num_edges as f64 / wall / 1e6),
            format!("{submit_ns_per_op:.0}"),
            secs(crit_path),
            ratio(skew),
            secs(pr_secs),
            secs(bfs_secs),
        ]);
    }
    table
}

/// `snapshot`: cost of materialising the service-grade owned snapshot
/// ([`dgap::FrozenView`]), sequential vs work-stealing-parallel, plus the
/// composite capture paths the service layer actually exercises.  Not a
/// paper artefact — this measures the PR 3 snapshot pipeline: parallel
/// degree-count → prefix-sum → parallel adjacency fill, shard captures
/// running concurrently, and the incremental refresh that re-captures one
/// shard while sharing the rest.
///
/// Rows (p50/p99 over trials, throughput = visible edges materialised per
/// wall second):
///
/// * `seq`            — [`dgap::FrozenView::capture_sequential`] baseline
/// * `par@T`          — parallel [`dgap::FrozenView::capture`] with the
///   split width bounded to each `--threads` entry
/// * `shards-par`     — [`sharded::ShardedGraph`]'s full owned composite
///   (per-shard captures run concurrently, unbounded width)
/// * `incremental-1`  — the same composite refreshed after touching **one**
///   shard: every other shard's `Arc<FrozenView>` is reused
pub fn snapshot(opts: &BenchOptions) -> Table {
    use sharded::ShardedGraph;

    const TRIALS: usize = 7;
    /// One delete per this many inserts, so tombstone resolution is part
    /// of every measured capture.
    const DELETE_EVERY: usize = 64;

    let w = Workload::build(ORKUT, opts);
    let num_edges = w.edges.len();
    let shards = opts.shard_counts.iter().copied().max().unwrap_or(4).max(2);
    let per_shard_edges = num_edges.div_ceil(shards);
    let bytes = (per_shard_edges * 3 * 1024)
        .max(w.num_vertices * 1024)
        .clamp(64 << 20, 1 << 30);
    let graph = Arc::new(
        ShardedGraph::create_dgap(shards, w.num_vertices, num_edges, |_| {
            PmemConfig::with_capacity(bytes).persistence_tracking(false)
        })
        .expect("create sharded DGAP"),
    );
    for (i, &(s, d)) in w.edges.iter().enumerate() {
        graph.insert_edge(s, d).expect("insert");
        if i % DELETE_EVERY == 0 {
            graph.delete_edge(s, d).expect("delete");
        }
    }

    let mut table = Table::new(
        format!(
            "Snapshot: FrozenView capture, sequential vs parallel \
             (Orkut-scaled, {num_edges} edge records, {shards} shards)"
        ),
        &[
            "mode",
            "threads",
            "trials",
            "p50 ms",
            "p99 ms",
            "throughput MEPS",
            "speedup vs seq",
        ],
    );

    let view = graph.consistent_view();
    let visible_edges = dgap::GraphView::num_edges(&dgap::FrozenView::capture_sequential(&view));
    let timed = |f: &mut dyn FnMut()| -> (f64, f64) {
        let mut samples_ms: Vec<f64> = (0..TRIALS)
            .map(|_| {
                let start = std::time::Instant::now();
                f();
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples_ms.sort_by(f64::total_cmp);
        (percentile(&samples_ms, 0.50), percentile(&samples_ms, 0.99))
    };
    let mut rows: Vec<(String, String, f64, f64)> = Vec::new();

    let (seq_p50, seq_p99) = timed(&mut || {
        std::hint::black_box(dgap::FrozenView::capture_sequential(&view));
    });
    rows.push(("seq".into(), "1".into(), seq_p50, seq_p99));

    for &threads in &opts.thread_counts {
        let (p50, p99) = timed(&mut || {
            with_threads(threads, || {
                std::hint::black_box(dgap::FrozenView::capture(&view));
            });
        });
        rows.push(("par".into(), format!("{threads}"), p50, p99));
    }

    let (p50, p99) = timed(&mut || {
        std::hint::black_box(graph.consistent_view_arc());
    });
    rows.push(("shards-par".into(), "pool".into(), p50, p99));

    // Incremental: keep every shard's snapshot except vertex 0's owner,
    // touch that shard, and refresh — the service's single-shard-burst
    // path.
    let warm = graph.consistent_view_arc();
    let touched = graph.shard_of(0);
    graph.insert_edge(0, 1).expect("insert");
    let (p50, p99) = timed(&mut || {
        let reuse: Vec<Option<Arc<dgap::FrozenView>>> = (0..shards)
            .map(|i| (i != touched).then(|| warm.shard_view_arc(i)))
            .collect();
        std::hint::black_box(graph.owned_view_reusing(reuse));
    });
    rows.push(("incremental-1".into(), "pool".into(), p50, p99));

    for (mode, threads, p50, p99) in rows {
        table.row(vec![
            mode,
            threads,
            format!("{TRIALS}"),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            meps(visible_edges as f64 / (p50 / 1e3) / 1e6),
            ratio(seq_p50 / p50),
        ]);
    }
    table
}

/// `analytics`: the zero-dispatch analytics plane — dyn-dispatch kernels
/// (per-edge `&mut dyn FnMut` through [`dgap::GraphView`]) vs the `*_csr`
/// slice kernels, plus the cost of the [`sharded::UnifiedView`] merge the
/// CSR kernels run over.  Not a paper artefact — this seeds the analytics
/// trajectory the ISSUE-5 plane opens.
///
/// Rows (p50/p99 over trials):
///
/// * `dyn` / `csr` per `--threads` entry × kernel (PR/BFS/CC/BC): both run
///   over the **same** [`sharded::UnifiedView`] data, so the row pair
///   isolates pure dispatch cost; the `csr` row's `speedup` column is dyn
///   p50 / csr p50.
/// * `dyn-composite` / `csr-unified` per `--shards` entry (PageRank): the
///   shard-routed composite (partitioner hash per vertex + dyn dispatch
///   per edge) vs the unified CSR at that shard count — what the service's
///   query path actually switched from and to.
/// * `unify-full` / `unify-incr1` per `--shards` entry: the full merge vs
///   an incremental refresh after touching **one** shard (every other
///   shard's spans carried forward; `speedup` = full p50 / incr p50).
pub fn analytics(opts: &BenchOptions) -> Table {
    use sharded::{ShardedGraph, UnifiedView};

    const TRIALS: usize = 5;
    /// One delete per this many inserts, so tombstone resolution shapes
    /// the adjacency the kernels scan.
    const DELETE_EVERY: usize = 64;
    /// PageRank iterations (Table 1's GAPBS configuration).
    const ITERS: usize = analytics::pagerank::DEFAULT_ITERATIONS;
    /// Kernels are pure DRAM scans over data the *insert* experiments take
    /// minutes to build, so (like `recovery`) this experiment affords a
    /// denser graph than the shared `--scale` default: 8x the edges gives
    /// the dispatch gap and the unify merge enough work to measure.
    const ANALYTICS_SCALE_BOOST: u64 = 8;

    let opts = BenchOptions {
        scale: (opts.scale / ANALYTICS_SCALE_BOOST).max(1),
        ..opts.clone()
    };
    let opts = &opts;
    let w = Workload::build(ORKUT, opts);
    let num_edges = w.edges.len();
    let kernel_shards = opts.shard_counts.iter().copied().max().unwrap_or(4).max(2);

    let build_graph = |shards: usize| -> Arc<ShardedGraph<Dgap>> {
        let per_shard_edges = num_edges.div_ceil(shards);
        let bytes = (per_shard_edges * 3 * 1024)
            .max(w.num_vertices * 1024)
            .clamp(64 << 20, 1 << 30);
        let graph = Arc::new(
            ShardedGraph::create_dgap(shards, w.num_vertices, num_edges, |_| {
                PmemConfig::with_capacity(bytes).persistence_tracking(false)
            })
            .expect("create sharded DGAP"),
        );
        for (i, &(s, d)) in w.edges.iter().enumerate() {
            graph.insert_edge(s, d).expect("insert");
            if i % DELETE_EVERY == 0 {
                graph.delete_edge(s, d).expect("delete");
            }
        }
        graph
    };
    let timed = |f: &mut dyn FnMut()| -> (f64, f64) {
        let mut samples_ms: Vec<f64> = (0..TRIALS)
            .map(|_| {
                let start = std::time::Instant::now();
                f();
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples_ms.sort_by(f64::total_cmp);
        (percentile(&samples_ms, 0.50), percentile(&samples_ms, 0.99))
    };

    let mut table = Table::new(
        format!(
            "Analytics: dyn-dispatch vs zero-dispatch CSR kernels + UnifiedView merge \
             (Orkut-scaled, {num_edges} edge records)"
        ),
        &[
            "mode", "kernel", "threads", "shards", "trials", "p50 ms", "p99 ms", "speedup",
        ],
    );

    // Kernel rows: dyn vs CSR over the same unified data, per thread count.
    // Scoped so this graph (and its per-shard pools) is dropped before the
    // shard loop below builds the next one — peak footprint stays at one
    // graph + one unified CSR.
    {
        let graph = build_graph(kernel_shards);
        let owned = graph.consistent_view_arc();
        let unified = UnifiedView::unify(&owned);
        let source = highest_degree_vertex(&unified);
        let kernels = [Kernel::PageRank, Kernel::Bfs, Kernel::Cc, Kernel::Bc];
        for &threads in &opts.thread_counts {
            for kernel in kernels {
                let (dyn_p50, dyn_p99) = timed(&mut || {
                    with_threads(threads, || match kernel {
                        Kernel::PageRank => {
                            std::hint::black_box(pagerank_parallel(&unified, ITERS).len());
                        }
                        Kernel::Bfs => {
                            std::hint::black_box(bfs_parallel(&unified, source).len());
                        }
                        Kernel::Cc => {
                            std::hint::black_box(cc_parallel(&unified).len());
                        }
                        Kernel::Bc => {
                            std::hint::black_box(bc_parallel(&unified, source).len());
                        }
                    });
                });
                let (csr_p50, csr_p99) = timed(&mut || {
                    with_threads(threads, || match kernel {
                        Kernel::PageRank => {
                            std::hint::black_box(pagerank_csr(&unified, ITERS).len());
                        }
                        Kernel::Bfs => {
                            std::hint::black_box(bfs_csr(&unified, source).len());
                        }
                        Kernel::Cc => {
                            std::hint::black_box(cc_csr(&unified).len());
                        }
                        Kernel::Bc => {
                            std::hint::black_box(bc_csr(&unified, source).len());
                        }
                    });
                });
                for (mode, p50, p99, speedup) in [
                    ("dyn", dyn_p50, dyn_p99, 1.0),
                    ("csr", csr_p50, csr_p99, dyn_p50 / csr_p50.max(1e-9)),
                ] {
                    table.row(vec![
                        mode.to_string(),
                        kernel.label().to_string(),
                        format!("{threads}"),
                        format!("{kernel_shards}"),
                        format!("{TRIALS}"),
                        format!("{p50:.3}"),
                        format!("{p99:.3}"),
                        ratio(speedup),
                    ]);
                }
            }
        }
    }

    // Cross-shard rows: composite (hash + dispatch) vs unified CSR, and
    // the merge cost (full vs one-shard incremental), per shard count.
    for &shards in &opts.shard_counts {
        let graph = build_graph(shards);
        let owned = graph.consistent_view_arc();
        let unified = UnifiedView::unify(&owned);
        let (composite_p50, composite_p99) = timed(&mut || {
            std::hint::black_box(pagerank_parallel(&*owned, ITERS).len());
        });
        let (unified_p50, unified_p99) = timed(&mut || {
            std::hint::black_box(pagerank_csr(&unified, ITERS).len());
        });
        let (full_p50, full_p99) = timed(&mut || {
            std::hint::black_box(UnifiedView::unify(&owned).num_edges());
        });
        // The service's single-shard-burst path: touch one shard, carry
        // every other shard's Arc over, refresh the unified CSR.
        let touched = graph.shard_of(0);
        graph.insert_edge(0, 1).expect("insert");
        let reuse: Vec<Option<Arc<dgap::FrozenView>>> = (0..shards)
            .map(|i| (i != touched).then(|| owned.shard_view_arc(i)))
            .collect();
        let owned2 = graph.owned_view_reusing(reuse);
        let (incr_p50, incr_p99) = timed(&mut || {
            let refreshed = unified.refreshed(&owned2);
            assert_eq!(refreshed.merged_shards(), 1, "one shard was touched");
            std::hint::black_box(refreshed.num_edges());
        });
        for (mode, kernel, p50, p99, speedup) in [
            ("dyn-composite", "PR", composite_p50, composite_p99, 1.0),
            (
                "csr-unified",
                "PR",
                unified_p50,
                unified_p99,
                composite_p50 / unified_p50.max(1e-9),
            ),
            ("unify-full", "-", full_p50, full_p99, 1.0),
            (
                "unify-incr1",
                "-",
                incr_p50,
                incr_p99,
                full_p50 / incr_p50.max(1e-9),
            ),
        ] {
            table.row(vec![
                mode.to_string(),
                kernel.to_string(),
                "pool".to_string(),
                format!("{shards}"),
                format!("{TRIALS}"),
                format!("{p50:.3}"),
                format!("{p99:.3}"),
                ratio(speedup),
            ]);
        }
    }
    table
}

/// `incremental`: epoch-delta kernels vs their full recomputations on the
/// unified CSR, per write-burst size, plus one row per kernel in the
/// widened analytics set.
///
/// Incremental kernels pay off when a perturbation stays local, so the
/// workload models **graph growth** rather than uniform-random rewiring: a
/// sparse core (a ring plus a sprinkling of random chords, mirrored, avg
/// degree ~2) over 80% of the vertex range, then write bursts that attach
/// previously-isolated tail vertices to a handful of core hubs — the
/// preferential-attachment shape real dynamic graphs grow by, and the one
/// the service's steady state serves.  Each new leaf is a dead end, so
/// rank deviations radiate from the few hubs, not from every inserted
/// edge; a uniform-random burst of the same size seeds thousands of
/// deviation sources whose multi-hop spread touches the whole (scaled)
/// graph and degenerates the exact-trajectory incremental kernel into a
/// sequential full recompute.  The core is sized from the Orkut edge
/// budget at `--scale`, not the Orkut degree distribution (at avg degree
/// 76 even one perturbation floods within two hops).
///
/// The graph is mutated through four escalating attachment bursts: a
/// single edge, 0.1% of E, 1% of E, and 10% of E.  After each burst the
/// unified CSR is refreshed through the epoch-delta path (untouched shards
/// carry their spans forward) and both PageRank and connected components
/// run twice:
///
/// * `full`: the plain CSR kernel over the refreshed view.
/// * `incr`: the incremental kernel seeded from the previous epoch's
///   result, re-relaxing only the delta's frontier.  `speedup` is full p50
///   / incr p50.  The 10%E row deliberately shows the profitability
///   crossover: the sequential frontier replay recomputes enough of the
///   graph that the pool-parallel full kernel wins, and past
///   [`analytics::INCREMENTAL_FALLBACK_FRACTION`] of V changed the
///   incremental path declines outright and the row measures the declared
///   fallback (full kernel plus a cheap bound check).
///
/// The trailing `kernel` rows time the widened kernel set once each on the
/// final epoch's view: triangle count, 4-core, top-32 by degree, top-32 by
/// PageRank (served from the maintained rank vector, hence microseconds),
/// and a depth-2 k-hop ball around the highest-degree vertex.
pub fn incremental(opts: &BenchOptions) -> Table {
    use analytics::{
        cc_incremental, k_core_csr, khop_neighborhood_csr, pagerank_csr_recording,
        pagerank_incremental, top_k_degree, top_k_pagerank, triangle_count_csr,
    };
    use sharded::{ShardedGraph, UnifiedView};

    const TRIALS: usize = 5;
    /// PageRank iterations (Table 1's GAPBS configuration).
    const ITERS: usize = analytics::pagerank::DEFAULT_ITERATIONS;
    /// Same densification as `analytics`: the kernels need enough edges
    /// that a full recomputation has real work to amortise.
    const ANALYTICS_SCALE_BOOST: u64 = 8;

    let opts = BenchOptions {
        scale: (opts.scale / ANALYTICS_SCALE_BOOST).max(1),
        ..opts.clone()
    };
    let opts = &opts;
    let shards = opts.shard_counts.iter().copied().max().unwrap_or(4).max(2);
    // Core = ring + chords over the first 80% of the range; the tail is
    // the pool of not-yet-attached vertices the bursts draw from.  The
    // vertex count carries the Orkut edge budget so `--scale` means the
    // same thing it does everywhere else.
    let n = (ORKUT.scaled_edges(opts.scale) as u64).max(1024);
    let core = n * 4 / 5;
    let chords = core / 16;
    let base_edges = (core + chords) as usize;
    // Mirrored load plus headroom for the bursts (~11.1% of E, mirrored).
    let num_records = base_edges * 2 + base_edges / 4;
    let per_shard_edges = num_records.div_ceil(shards);
    let bytes = (per_shard_edges * 3 * 1024)
        .max(n as usize * 1024)
        .clamp(64 << 20, 1 << 30);
    let graph = Arc::new(
        ShardedGraph::create_dgap(shards, n as usize, num_records, |_| {
            PmemConfig::with_capacity(bytes).persistence_tracking(false)
        })
        .expect("create sharded DGAP"),
    );
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for v in 0..core {
        graph.insert_edge(v, (v + 1) % core).expect("insert");
        graph.insert_edge((v + 1) % core, v).expect("insert");
    }
    for _ in 0..chords {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = (x >> 33) % core;
        let b = (x >> 11) % core;
        graph.insert_edge(a, b).expect("insert");
        graph.insert_edge(b, a).expect("insert");
    }

    let timed = |f: &mut dyn FnMut()| -> (f64, f64) {
        let mut samples_ms: Vec<f64> = (0..TRIALS)
            .map(|_| {
                let start = std::time::Instant::now();
                f();
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples_ms.sort_by(f64::total_cmp);
        (percentile(&samples_ms, 0.50), percentile(&samples_ms, 0.99))
    };

    let mut table = Table::new(
        format!(
            "Incremental analytics: epoch-delta kernels vs full recomputation \
             (small-world ring+chords, {} edge records, {shards} shards)",
            base_edges * 2
        ),
        &[
            "mode", "kernel", "burst", "threads", "shards", "trials", "p50 ms", "p99 ms", "speedup",
        ],
    );

    let mut owned = graph.consistent_view_arc();
    let mut unified = UnifiedView::unify(&owned);
    let mut cache = pagerank_csr_recording(&unified, ITERS);
    let mut labels = cc_csr(&unified);

    let bursts: [(&str, usize); 4] = [
        ("1", 1),
        ("0.1%E", (base_edges / 1000).max(1)),
        ("1%E", (base_edges / 100).max(1)),
        ("10%E", (base_edges / 10).max(1)),
    ];
    // Attachment bursts: each inserted edge links the next unattached tail
    // vertex to one of a few core hubs (deterministically spread around the
    // ring), one hub per 512 leaves.
    let mut next_leaf = core;
    for (label, burst) in bursts {
        let hub_count = burst.div_ceil(512).max(1) as u64;
        let mut touched = vec![false; shards];
        for i in 0..burst {
            let hub = (i as u64 % hub_count).wrapping_mul(997) % core;
            let leaf = next_leaf;
            next_leaf += 1;
            assert!(leaf < n, "burst headroom: reserved tail exhausted");
            graph.insert_edge(hub, leaf).expect("insert");
            graph.insert_edge(leaf, hub).expect("insert");
            touched[graph.shard_of(hub)] = true;
            touched[graph.shard_of(leaf)] = true;
        }
        // The service's refresh path: untouched shards carry their frozen
        // spans (and the unified CSR carries their slices) forward.
        let reuse: Vec<Option<Arc<dgap::FrozenView>>> = (0..shards)
            .map(|i| (!touched[i]).then(|| owned.shard_view_arc(i)))
            .collect();
        let owned2 = Arc::new(graph.owned_view_reusing(reuse));
        let next = unified.refreshed(&owned2);
        let delta = next.delta().expect("refreshed views carry a delta");

        let (full_pr_p50, full_pr_p99) = timed(&mut || {
            std::hint::black_box(pagerank_csr(&next, ITERS).len());
        });
        let (incr_pr_p50, incr_pr_p99) = timed(&mut || {
            match pagerank_incremental(&next, &cache, delta.changed_vertices()) {
                Some(run) => std::hint::black_box(run.cache.ranks().len()),
                // Declined: the incremental path's cost IS the fallback.
                None => std::hint::black_box(pagerank_csr(&next, ITERS).len()),
            };
        });
        let (full_cc_p50, full_cc_p99) = timed(&mut || {
            std::hint::black_box(cc_csr(&next).len());
        });
        let (incr_cc_p50, incr_cc_p99) = timed(&mut || {
            match cc_incremental(
                &next,
                &labels,
                delta.changed_vertices(),
                delta.has_deletions(),
            ) {
                Some(l) => std::hint::black_box(l.len()),
                None => std::hint::black_box(cc_csr(&next).len()),
            };
        });
        for (mode, kernel, p50, p99, speedup) in [
            ("full", "PR", full_pr_p50, full_pr_p99, 1.0),
            (
                "incr",
                "PR",
                incr_pr_p50,
                incr_pr_p99,
                full_pr_p50 / incr_pr_p50.max(1e-9),
            ),
            ("full", "CC", full_cc_p50, full_cc_p99, 1.0),
            (
                "incr",
                "CC",
                incr_cc_p50,
                incr_cc_p99,
                full_cc_p50 / incr_cc_p50.max(1e-9),
            ),
        ] {
            table.row(vec![
                mode.to_string(),
                kernel.to_string(),
                label.to_string(),
                "pool".to_string(),
                format!("{shards}"),
                format!("{TRIALS}"),
                format!("{p50:.3}"),
                format!("{p99:.3}"),
                ratio(speedup),
            ]);
        }

        // Carry this epoch's results into the next burst, exactly as the
        // service's analytics cache does.
        cache = pagerank_incremental(&next, &cache, delta.changed_vertices())
            .map(|run| run.cache)
            .unwrap_or_else(|| pagerank_csr_recording(&next, ITERS));
        labels = cc_csr(&next);
        unified = next;
        owned = owned2;
    }

    // The widened kernel set, once each over the final epoch's view.
    let source = highest_degree_vertex(&unified);
    let ranks: Vec<f64> = cache.ranks().to_vec();
    let kernel_row = |table: &mut Table, kernel: &str, f: &mut dyn FnMut()| {
        let (p50, p99) = timed(f);
        table.row(vec![
            "kernel".to_string(),
            kernel.to_string(),
            "-".to_string(),
            "pool".to_string(),
            format!("{shards}"),
            format!("{TRIALS}"),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            ratio(1.0),
        ]);
    };
    kernel_row(&mut table, "TC", &mut || {
        std::hint::black_box(triangle_count_csr(&unified));
    });
    kernel_row(&mut table, "KCORE4", &mut || {
        std::hint::black_box(k_core_csr(&unified, 4).len());
    });
    kernel_row(&mut table, "TOPK-DEG", &mut || {
        std::hint::black_box(top_k_degree(&unified, 32).len());
    });
    kernel_row(&mut table, "TOPK-PR", &mut || {
        std::hint::black_box(top_k_pagerank(&ranks, 32).len());
    });
    kernel_row(&mut table, "KHOP2", &mut || {
        std::hint::black_box(khop_neighborhood_csr(&unified, source, 2).len());
    });
    table
}

/// `serve`: sustained mixed mutate/query traffic through the typed
/// [`service::GraphService`] front-end, per shard count.  Four client
/// threads stream insert batches (with periodic deletes of earlier edges)
/// and interleave snapshot queries; the table reports mutation throughput
/// plus query latency percentiles — the numbers a capacity plan for the
/// request/response layer starts from.
///
/// The percentiles come from the service's **own** telemetry plane (the
/// `service_query_nanos{kind="degree"}` histogram behind `Query::Metrics`),
/// not from client-side stopwatches: the benchmark exercises exactly the
/// instrumentation an operator would read in production, and a run with
/// `--json DIR` drops the full Prometheus rendering as
/// `DIR/METRICS_serve.prom`.
pub fn serve(opts: &BenchOptions) -> Table {
    use dgap::Update;
    use service::{GraphService, ServiceConfig};
    use sharded::ShardedConfig;

    const CLIENTS: usize = 4;
    const BATCH: usize = 1024;
    /// One snapshot query per this many mutate batches.
    const QUERY_EVERY: usize = 4;
    /// One delete per this many inserts (deletes re-target edges from the
    /// same batch, so the oracle-free benchmark stays self-consistent).
    const DELETE_EVERY: usize = 64;

    let w = Workload::build(ORKUT, opts);
    let num_edges = w.edges.len();
    let mut table = Table::new(
        format!(
            "Serve: mixed mutate/query traffic via GraphService \
             (Orkut-scaled, {num_edges} edges, {CLIENTS} clients)"
        ),
        &[
            "shards",
            "mutate ops",
            "queries",
            "wall s",
            "throughput MOPS",
            "query p50 ms",
            "query p99 ms",
            "query p999 ms",
            "refresh us",
            "captures/refresh",
        ],
    );
    let mut last_prom: Option<String> = None;

    for &shards in &opts.shard_counts {
        let per_shard_edges = num_edges.div_ceil(shards.max(1));
        let pool_bytes = (per_shard_edges * 3 * 1024)
            .max(w.num_vertices * 1024)
            .clamp(64 << 20, 1 << 30);
        let service = GraphService::start(ServiceConfig {
            sharded: ShardedConfig::builder()
                .shards(shards)
                .queue_capacity(64)
                .batch_size(BATCH)
                .build(),
            workers: CLIENTS,
            num_vertices: w.num_vertices,
            num_edges,
            pool_bytes,
            ..ServiceConfig::default()
        })
        .expect("start GraphService");

        let start = std::time::Instant::now();
        let per_client: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let client = service.client();
                    let edges = &w.edges;
                    scope.spawn(move || {
                        let stream: Vec<workloads::Edge> =
                            edges.iter().copied().skip(c).step_by(CLIENTS).collect();
                        let mut mutated = 0usize;
                        for (i, chunk) in stream.chunks(BATCH).enumerate() {
                            let mut ops: Vec<Update> =
                                chunk.iter().map(|&e| Update::from(e)).collect();
                            for &(s, d) in chunk.iter().step_by(DELETE_EVERY) {
                                ops.push(Update::DeleteEdge(s, d));
                            }
                            mutated += ops.len();
                            let ticket = client.mutate(ops).expect("mutate");
                            if i % QUERY_EVERY == 0 {
                                client.wait(&ticket).expect("wait");
                                let probe = chunk[0].0;
                                let _ = client.degree(probe).expect("degree query");
                            }
                        }
                        mutated
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        service.client().flush().expect("flush");
        let wall = start.elapsed().as_secs_f64();
        // Snapshot-refresh economics over the whole run: mean time per
        // epoch refresh, and how many shard captures each refresh paid for
        // (all-shard write traffic approaches the shard count; single-shard
        // bursts approach 1 — the incremental path's whole point).
        let stats = service.stats();
        let refreshes = stats.snapshot_refreshes.max(1);
        let refresh_us = stats.refresh_nanos as f64 / refreshes as f64 / 1e3;
        let captures_per_refresh = stats.shard_captures as f64 / refreshes as f64;

        // Query latency straight from the service's own histogram — what a
        // dashboard scraping `Query::Metrics` would show for this run.
        let metrics = service.metrics();
        let degree = metrics
            .histogram_labeled("service_query_nanos", "kind=\"degree\"")
            .cloned()
            .unwrap_or_default();
        let queries = degree.count;
        let ms = |nanos: u64| nanos as f64 / 1e6;

        let mutate_ops: usize = per_client.iter().sum();
        table.row(vec![
            format!("{shards}"),
            format!("{mutate_ops}"),
            format!("{queries}"),
            secs(wall),
            meps(mutate_ops as f64 / wall / 1e6),
            format!("{:.3}", ms(degree.p50())),
            format!("{:.3}", ms(degree.p99())),
            format!("{:.3}", ms(degree.p999())),
            format!("{refresh_us:.1}"),
            format!("{captures_per_refresh:.2}"),
        ]);
        last_prom = Some(format!(
            "# dgap-bench serve: shards={shards}, clients={CLIENTS}\n{}",
            metrics.render_prometheus()
        ));
        service.shutdown();
    }
    if let (Some(dir), Some(prom)) = (&opts.artifact_dir, &last_prom) {
        let path = dir.join("METRICS_serve.prom");
        std::fs::write(&path, prom).expect("write METRICS_serve.prom");
    }
    table
}

/// `serve_net`: the network plane under load — hundreds of simulated
/// remote tenants, each on its own TCP connection, streaming mutate/query
/// traffic through the wire protocol into one `GraphServer`.  One row per
/// connection count reports throughput and the server-side
/// `net_request_nanos` tail (p50/p99/p999) — how request latency degrades
/// as the connection count grows — plus a `quota` row where deliberately
/// oversized batches exercise admission control (the `shed` column counts
/// the structured `Overloaded` replies).
///
/// Like `serve`, the percentiles come from the service registry's own
/// histogram, not client stopwatches; with `--json DIR` the run appends its
/// full Prometheus rendering (including every `net_*` series) to
/// `DIR/METRICS_serve.prom`.
pub fn serve_net(opts: &BenchOptions) -> Table {
    use dgap::Update;
    use net::{GraphServer, NetConfig, RemoteClient};
    use service::{GraphService, ServiceConfig};
    use sharded::ShardedConfig;

    /// Tenant counts for the open (unthrottled) rows.
    const CONN_COUNTS: [usize; 3] = [8, 32, 128];
    /// Requests per tenant: even slots are mutate batches, odd are degree
    /// queries, with a ticket wait every 16th to exercise read-your-writes.
    const REQUESTS_PER_CONN: usize = 120;
    const BATCH: usize = 8;
    const NUM_VERTICES: usize = 4096;
    /// The quota row's per-connection token bucket: each tenant demands
    /// ~550 tokens per run, so even a slow box (where the wall clock
    /// refills more tokens) sheds with an order-of-magnitude margin.
    const QUOTA_OPS_PER_SEC: u64 = 50;

    let service_config = || ServiceConfig {
        sharded: ShardedConfig::builder()
            .shards(4)
            .queue_capacity(64)
            .batch_size(256)
            .build(),
        workers: 4,
        num_vertices: NUM_VERTICES,
        num_edges: 1 << 17,
        pool_bytes: 64 << 20,
        ..ServiceConfig::default()
    };

    let mut table = Table::new(
        format!(
            "Serve-net: remote tenants over TCP via GraphServer \
             ({REQUESTS_PER_CONN} requests/connection, mutate batch {BATCH})"
        ),
        &[
            "mode",
            "connections",
            "requests",
            "shed",
            "wall s",
            "kreq s",
            "p50 ms",
            "p99 ms",
            "p999 ms",
        ],
    );

    let modes: Vec<(&str, usize, NetConfig)> = CONN_COUNTS
        .iter()
        .map(|&conns| ("open", conns, NetConfig::loopback()))
        .chain(std::iter::once((
            "quota",
            32,
            NetConfig {
                ops_per_sec: Some(QUOTA_OPS_PER_SEC),
                burst_ops: QUOTA_OPS_PER_SEC,
                ..NetConfig::loopback()
            },
        )))
        .collect();

    let mut last_prom: Option<String> = None;
    for (mode, conns, net) in modes {
        let server = GraphServer::serve(
            GraphService::start(service_config()).expect("start GraphService"),
            net,
        )
        .expect("start GraphServer");
        let addr = server.local_addr();

        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for c in 0..conns {
                scope.spawn(move || {
                    let client = RemoteClient::connect(addr).expect("connect");
                    let mut ticket = sharded::Ticket::empty();
                    for i in 0..REQUESTS_PER_CONN {
                        if i % 2 == 0 {
                            let base = ((c * REQUESTS_PER_CONN + i) * BATCH) as u64;
                            let ops: Vec<Update> = (0..BATCH as u64)
                                .map(|k| {
                                    Update::InsertEdge(
                                        (base + k) % NUM_VERTICES as u64,
                                        (base + k * 7 + 1) % NUM_VERTICES as u64,
                                    )
                                })
                                .collect();
                            match client.mutate(ops) {
                                Ok(t) => ticket.merge(&t),
                                // The quota row sheds on purpose; a polite
                                // tenant would back off here.
                                Err(dgap::GraphError::Overloaded { .. }) => {}
                                Err(err) => panic!("mutate failed: {err}"),
                            }
                            if i % 16 == 0 {
                                match client.wait(&ticket) {
                                    // Read-your-writes checkpoint; in quota
                                    // mode the drained bucket sheds it like
                                    // any other request.
                                    Ok(()) | Err(dgap::GraphError::Overloaded { .. }) => {}
                                    Err(err) => panic!("wait failed: {err}"),
                                }
                                ticket = sharded::Ticket::empty();
                            }
                        } else {
                            let probe = (c * 31 + i) as u64 % NUM_VERTICES as u64;
                            match client.degree(probe) {
                                Ok(_) => {}
                                Err(dgap::GraphError::Overloaded { .. }) => {}
                                Err(err) => panic!("degree failed: {err}"),
                            }
                        }
                    }
                    client.close();
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();

        // Everything below comes from the server's own registry — the same
        // series an operator would scrape.
        let metrics = server.service().metrics();
        let requests = metrics.counter("net_requests_total").unwrap_or(0);
        let shed = metrics.counter("net_requests_shed").unwrap_or(0);
        let nanos = metrics
            .histogram("net_request_nanos")
            .cloned()
            .unwrap_or_default();
        let ms = |n: u64| n as f64 / 1e6;
        table.row(vec![
            mode.to_string(),
            format!("{conns}"),
            format!("{requests}"),
            format!("{shed}"),
            secs(wall),
            format!("{:.1}", requests as f64 / wall / 1e3),
            format!("{:.3}", ms(nanos.p50())),
            format!("{:.3}", ms(nanos.p99())),
            format!("{:.3}", ms(nanos.p999())),
        ]);
        last_prom = Some(format!(
            "# dgap-bench serve-net: mode={mode}, connections={conns}\n{}",
            metrics.render_prometheus()
        ));
        server.shutdown();
    }
    if let (Some(dir), Some(prom)) = (&opts.artifact_dir, &last_prom) {
        // Appended, not overwritten: a CI run that did `serve` first ends up
        // with one file carrying both the in-process and the network-plane
        // series.
        use std::io::Write as _;
        let path = dir.join("METRICS_serve.prom");
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open METRICS_serve.prom");
        file.write_all(prom.as_bytes())
            .expect("append METRICS_serve.prom");
    }
    table
}

/// Nearest-rank percentile over an ascending-sorted sample (0.0 for an
/// empty one).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchOptions {
        BenchOptions {
            scale: 1 << 21,
            thread_counts: vec![1, 2],
            ..BenchOptions::default()
        }
    }

    #[test]
    fn fig1_runners_produce_rows() {
        let rows = fig1a(&tiny()).len();
        assert!((9..=10).contains(&rows), "fig1a rows: {rows}");
        assert_eq!(fig1b(&tiny()).len(), 3);
        assert_eq!(fig1c(&tiny()).len(), 3);
    }

    #[test]
    fn insertion_runners_cover_all_systems() {
        let t = fig6(&tiny());
        assert_eq!(t.len(), ALL_DATASETS.len());
        let t3 = table3(&tiny());
        assert_eq!(t3.len(), ALL_DATASETS.len() * 2);
    }

    #[test]
    fn ablation_and_sweep_runners() {
        assert_eq!(table5(&tiny()).len(), SMALL_DATASETS.len());
        assert_eq!(fig9(&tiny()).len(), 2 * 9);
        assert_eq!(fig5(&tiny()).len(), 16);
    }

    #[test]
    fn analysis_runner_normalises_against_csr() {
        let t = fig7(&tiny());
        assert_eq!(t.len(), ALL_DATASETS.len() * 2);
    }

    #[test]
    fn recovery_runner() {
        let opts = BenchOptions {
            shard_counts: vec![1, 2],
            ..tiny()
        };
        // Per dataset: normal + crash-seq + one crash-par row per thread
        // count + the verify row + one crash-shards and one
        // reopen+client-table row per shard count.
        let per_dataset = 3 + opts.thread_counts.len() + 2 * opts.shard_counts.len();
        assert_eq!(recovery(&opts).len(), SMALL_DATASETS.len() * per_dataset);
    }

    #[test]
    fn sharding_runner_covers_requested_counts() {
        let opts = BenchOptions {
            shard_counts: vec![1, 2],
            ..tiny()
        };
        assert_eq!(sharding(&opts).len(), 2);
    }

    #[test]
    fn snapshot_runner_emits_all_modes() {
        let opts = BenchOptions {
            shard_counts: vec![1, 2],
            ..tiny()
        };
        // seq + one row per thread count + shards-par + incremental-1.
        let t = snapshot(&opts);
        assert_eq!(t.len(), 1 + opts.thread_counts.len() + 2);
    }

    #[test]
    fn analytics_runner_emits_all_modes() {
        let opts = BenchOptions {
            shard_counts: vec![1, 2],
            ..tiny()
        };
        // Per thread count: 4 kernels × (dyn + csr); per shard count:
        // dyn-composite + csr-unified + unify-full + unify-incr1.
        let t = analytics(&opts);
        assert_eq!(
            t.len(),
            opts.thread_counts.len() * 4 * 2 + opts.shard_counts.len() * 4
        );
    }

    #[test]
    fn incremental_runner_emits_all_modes() {
        let opts = BenchOptions {
            shard_counts: vec![1, 2],
            ..tiny()
        };
        // 4 bursts × (PR, CC) × (full, incr) + 5 widened-kernel rows.
        assert_eq!(incremental(&opts).len(), 4 * 2 * 2 + 5);
    }

    #[test]
    fn serve_runner_covers_requested_counts() {
        let opts = BenchOptions {
            shard_counts: vec![1, 2],
            ..tiny()
        };
        assert_eq!(serve(&opts).len(), 2);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 0.99), 5.0);
    }
}
