//! Uniform wrappers and helpers shared by every experiment.

use baselines::{Bal, GraphOneFd, Llama, PmCsr, SystemKind, XpGraph};
use dgap::{Dgap, DgapConfig, DgapVariant, DynamicGraph, GraphView, SnapshotSource, VertexId};
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;
use std::time::Instant;
use workloads::{DatasetSpec, Edge, EdgeList};

/// Options shared by every experiment (parsed from the CLI).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Divisor applied to the real dataset sizes of Table 2.
    pub scale: u64,
    /// Thread counts exercised by the scalability experiments.
    pub thread_counts: Vec<usize>,
    /// Fraction of edges inserted before measurement starts (the paper's
    /// 10 % warm-up).
    pub warmup_fraction: f64,
    /// Shard counts exercised by the `sharding` experiment.
    pub shard_counts: Vec<usize>,
    /// Where experiments drop side artifacts (the `serve` experiment's
    /// `METRICS_serve.prom` telemetry dump).  `None` = no artifacts; the
    /// CLI points this at the `--json` directory.
    pub artifact_dir: Option<std::path::PathBuf>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            scale: 8192,
            thread_counts: vec![1, 8, 16],
            warmup_fraction: 0.1,
            shard_counts: vec![1, 2, 4, 8],
            artifact_dir: None,
        }
    }
}

/// A prepared workload: the scaled dataset plus its insertion stream split
/// into warm-up and measured portions.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Dataset this workload was scaled from.
    pub spec: DatasetSpec,
    /// Scaled vertex count.
    pub num_vertices: usize,
    /// The full edge stream (shuffled insertion order).
    pub edges: Vec<Edge>,
    /// Number of leading edges that form the warm-up phase.
    pub warmup_len: usize,
}

impl Workload {
    /// Build the scaled workload for `spec`.
    pub fn build(spec: DatasetSpec, opts: &BenchOptions) -> Workload {
        let list: EdgeList = spec.generate_scaled(opts.scale);
        let num_edges = list.edges.len();
        let warmup_len =
            (((num_edges as f64) * opts.warmup_fraction).round() as usize).min(num_edges);
        Workload {
            spec,
            num_vertices: list.num_vertices,
            edges: list.edges,
            warmup_len,
        }
    }

    /// The warm-up prefix.
    pub fn warmup(&self) -> &[Edge] {
        &self.edges[..self.warmup_len]
    }

    /// The measured remainder.
    pub fn measured(&self) -> &[Edge] {
        &self.edges[self.warmup_len..]
    }
}

/// A wall-clock + simulated-PM-time measurement of one phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Simulated persistent-memory seconds charged by the cost model.
    pub simulated_secs: f64,
    /// Number of operations (edges inserted, kernels run...).
    pub operations: usize,
}

impl Measurement {
    /// Million edges (operations) per second of wall-clock time.
    pub fn meps(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.operations as f64 / self.wall_secs / 1e6
        }
    }

    /// Wall-clock plus simulated device time — the figure the tables print,
    /// so that the emulated PM costs influence the ranking the same way the
    /// real device would.
    pub fn total_secs(&self) -> f64 {
        self.wall_secs + self.simulated_secs
    }

    /// Million operations per second of total (wall + simulated) time.
    pub fn effective_meps(&self) -> f64 {
        let t = self.total_secs();
        if t <= 0.0 {
            0.0
        } else {
            self.operations as f64 / t / 1e6
        }
    }
}

/// Time `f`, attributing the pool's simulated-time delta to the measurement.
pub fn measure(pool: &PmemPool, operations: usize, f: impl FnOnce()) -> Measurement {
    let before = pool.stats_snapshot();
    let start = Instant::now();
    f();
    let wall = start.elapsed().as_secs_f64();
    let delta = pool.stats_snapshot().delta_since(&before);
    Measurement {
        wall_secs: wall,
        simulated_secs: delta.simulated_seconds(),
        operations,
    }
}

/// Size a pool generously for a workload of `num_edges` edges across any of
/// the systems (they all leak abandoned generations into the bump
/// allocator, so head-room matters more than precision).
pub fn pool_for_edges(num_edges: usize) -> Arc<PmemPool> {
    let bytes = (num_edges * 1024).clamp(64 << 20, 1 << 30);
    Arc::new(PmemPool::new(
        PmemConfig::with_capacity(bytes).persistence_tracking(false),
    ))
}

/// A uniform handle over every system under test.
// One of these exists per benchmark run; the size spread between variants
// does not matter.
#[allow(clippy::large_enum_variant)]
pub enum AnySystem {
    /// DGAP (any variant).
    Dgap(Dgap),
    /// Blocked adjacency list.
    Bal(Bal),
    /// LLAMA-like snapshots.
    Llama(Llama),
    /// GraphOne-FD.
    GraphOne(GraphOneFd),
    /// XPGraph-like.
    XpGraph(XpGraph),
    /// Static CSR (analysis only).
    Csr(PmCsr),
}

impl AnySystem {
    /// Build a dynamic system of the given kind sized for the workload.
    pub fn build(
        kind: SystemKind,
        pool: Arc<PmemPool>,
        num_vertices: usize,
        num_edges: usize,
    ) -> AnySystem {
        match kind {
            SystemKind::Dgap => AnySystem::Dgap(
                Dgap::create(pool, DgapConfig::for_graph(num_vertices, num_edges))
                    .expect("create DGAP"),
            ),
            SystemKind::Bal => AnySystem::Bal(Bal::new(pool, num_vertices)),
            SystemKind::Llama => AnySystem::Llama(Llama::new(
                pool,
                num_vertices,
                (num_edges / 100).max(1), // one snapshot per 1 % of the graph
            )),
            SystemKind::GraphOneFd => AnySystem::GraphOne(GraphOneFd::new(
                pool,
                num_vertices,
                // The paper flushes every 2^16 edges of graphs with 33 M – 3.6 B
                // edges; keep the same flush-interval-to-graph-size ratio on
                // the scaled workloads so GraphOne-FD pays a comparable
                // number of durability flushes per inserted edge.
                (num_edges / 1_300).clamp(64, baselines::graphone::DEFAULT_FLUSH_INTERVAL),
            )),
            SystemKind::XpGraph => AnySystem::XpGraph(
                XpGraph::new(
                    pool,
                    num_vertices,
                    baselines::xpgraph::DEFAULT_ARCHIVE_THRESHOLD,
                )
                .expect("create XPGraph"),
            ),
            SystemKind::Csr => panic!("CSR is built from an edge list, use AnySystem::build_csr"),
        }
    }

    /// Build a DGAP ablation variant.
    pub fn build_dgap_variant(
        variant: DgapVariant,
        pool: Arc<PmemPool>,
        num_vertices: usize,
        num_edges: usize,
    ) -> AnySystem {
        AnySystem::Dgap(
            variant
                .build(pool, DgapConfig::for_graph(num_vertices, num_edges))
                .expect("create DGAP variant"),
        )
    }

    /// Build the static CSR reference from an edge list.
    pub fn build_csr(pool: Arc<PmemPool>, num_vertices: usize, edges: &[Edge]) -> AnySystem {
        AnySystem::Csr(PmCsr::build(pool, num_vertices, edges).expect("build CSR"))
    }

    /// The system's display label.
    pub fn label(&self) -> &'static str {
        self.as_dyn().system_name()
    }

    /// Access the update interface.
    pub fn as_dyn(&self) -> &dyn DynamicGraph {
        match self {
            AnySystem::Dgap(g) => g,
            AnySystem::Bal(g) => g,
            AnySystem::Llama(g) => g,
            AnySystem::GraphOne(g) => g,
            AnySystem::XpGraph(g) => g,
            AnySystem::Csr(g) => g,
        }
    }

    /// Insert a stream of edges (panicking on error — benchmark pools are
    /// sized so that errors indicate a bug, not a condition to handle).
    pub fn insert_all(&self, edges: &[Edge]) {
        let g = self.as_dyn();
        for &(s, d) in edges {
            g.insert_edge(s, d).expect("insert");
        }
    }

    /// Insert a stream of edges from `threads` writer threads, splitting the
    /// stream round-robin (every system under test accepts concurrent
    /// writers through `&self`).
    pub fn insert_parallel(&self, edges: &[Edge], threads: usize) {
        if threads <= 1 {
            self.insert_all(edges);
            return;
        }
        std::thread::scope(|scope| {
            for t in 0..threads {
                let chunk: Vec<Edge> = edges.iter().copied().skip(t).step_by(threads).collect();
                let g = self.as_dyn();
                scope.spawn(move || {
                    for (s, d) in chunk {
                        g.insert_edge(s, d).expect("insert");
                    }
                });
            }
        });
    }

    /// Flush any buffered updates (durability point between phases).
    pub fn flush(&self) {
        self.as_dyn().flush();
    }

    /// Capture an analysis snapshot.
    pub fn view(&self) -> AnyView<'_> {
        match self {
            AnySystem::Dgap(g) => AnyView::Dgap(g.consistent_view()),
            AnySystem::Bal(g) => AnyView::Bal(g.consistent_view()),
            AnySystem::Llama(g) => AnyView::Llama(SnapshotSource::consistent_view(g)),
            AnySystem::GraphOne(g) => AnyView::GraphOne(SnapshotSource::consistent_view(g)),
            AnySystem::XpGraph(g) => AnyView::XpGraph(SnapshotSource::consistent_view(g)),
            AnySystem::Csr(g) => AnyView::Csr(SnapshotSource::consistent_view(g)),
        }
    }
}

/// A uniform snapshot wrapper so kernels can run on any system through one
/// type.
pub enum AnyView<'a> {
    /// DGAP snapshot.
    Dgap(dgap::DgapSnapshot<'a>),
    /// BAL snapshot.
    Bal(baselines::bal::BalView<'a>),
    /// LLAMA snapshot.
    Llama(baselines::llama::LlamaView),
    /// GraphOne snapshot.
    GraphOne(baselines::graphone::GraphOneView<'a>),
    /// XPGraph snapshot.
    XpGraph(baselines::xpgraph::XpGraphView<'a>),
    /// CSR view.
    Csr(baselines::csr::PmCsrView<'a>),
}

impl GraphView for AnyView<'_> {
    fn num_vertices(&self) -> usize {
        match self {
            AnyView::Dgap(v) => v.num_vertices(),
            AnyView::Bal(v) => v.num_vertices(),
            AnyView::Llama(v) => v.num_vertices(),
            AnyView::GraphOne(v) => v.num_vertices(),
            AnyView::XpGraph(v) => v.num_vertices(),
            AnyView::Csr(v) => v.num_vertices(),
        }
    }

    fn num_edges(&self) -> usize {
        match self {
            AnyView::Dgap(v) => v.num_edges(),
            AnyView::Bal(v) => v.num_edges(),
            AnyView::Llama(v) => v.num_edges(),
            AnyView::GraphOne(v) => v.num_edges(),
            AnyView::XpGraph(v) => v.num_edges(),
            AnyView::Csr(v) => v.num_edges(),
        }
    }

    fn degree(&self, v: VertexId) -> usize {
        match self {
            AnyView::Dgap(x) => x.degree(v),
            AnyView::Bal(x) => x.degree(v),
            AnyView::Llama(x) => x.degree(v),
            AnyView::GraphOne(x) => x.degree(v),
            AnyView::XpGraph(x) => x.degree(v),
            AnyView::Csr(x) => x.degree(v),
        }
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        match self {
            AnyView::Dgap(x) => x.for_each_neighbor(v, f),
            AnyView::Bal(x) => x.for_each_neighbor(v, f),
            AnyView::Llama(x) => x.for_each_neighbor(v, f),
            AnyView::GraphOne(x) => x.for_each_neighbor(v, f),
            AnyView::XpGraph(x) => x.for_each_neighbor(v, f),
            AnyView::Csr(x) => x.for_each_neighbor(v, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::datasets::ORKUT;

    fn tiny_opts() -> BenchOptions {
        BenchOptions {
            scale: 1 << 20,
            thread_counts: vec![1, 2],
            ..BenchOptions::default()
        }
    }

    #[test]
    fn workload_split_respects_warmup() {
        let w = Workload::build(ORKUT, &tiny_opts());
        assert_eq!(w.warmup().len() + w.measured().len(), w.edges.len());
        assert!(w.warmup().len() >= w.edges.len() / 20);
    }

    #[test]
    fn every_dynamic_system_ingests_and_serves_the_same_graph() {
        let w = Workload::build(ORKUT, &tiny_opts());
        let mut totals = Vec::new();
        for kind in SystemKind::dynamic_systems() {
            let pool = pool_for_edges(w.edges.len());
            let sys = AnySystem::build(kind, pool, w.num_vertices, w.edges.len());
            sys.insert_all(&w.edges);
            sys.flush();
            let view = sys.view();
            let total: usize = (0..view.num_vertices() as u64)
                .map(|v| view.neighbors(v).len())
                .sum();
            totals.push((kind.label(), total));
        }
        let expected = w.edges.len();
        for (label, total) in totals {
            assert_eq!(total, expected, "{label} lost edges");
        }
    }

    #[test]
    fn csr_matches_the_dynamic_systems() {
        let w = Workload::build(ORKUT, &tiny_opts());
        let pool = pool_for_edges(w.edges.len());
        let csr = AnySystem::build_csr(pool, w.num_vertices, &w.edges);
        let view = csr.view();
        let total: usize = (0..view.num_vertices() as u64)
            .map(|v| view.degree(v))
            .sum();
        assert_eq!(total, w.edges.len());
    }

    #[test]
    fn parallel_insert_preserves_edge_count() {
        let w = Workload::build(ORKUT, &tiny_opts());
        let pool = pool_for_edges(w.edges.len());
        let sys = AnySystem::build(SystemKind::Dgap, pool, w.num_vertices, w.edges.len());
        sys.insert_parallel(&w.edges, 4);
        assert_eq!(sys.as_dyn().num_edges(), w.edges.len());
    }

    #[test]
    fn measurement_math() {
        let m = Measurement {
            wall_secs: 2.0,
            simulated_secs: 2.0,
            operations: 8_000_000,
        };
        assert!((m.meps() - 4.0).abs() < 1e-9);
        assert!((m.effective_meps() - 2.0).abs() < 1e-9);
        assert!((m.total_secs() - 4.0).abs() < 1e-9);
    }
}
