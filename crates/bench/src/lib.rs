//! # bench — the benchmark harness reproducing the paper's evaluation
//!
//! The `dgap-bench` binary (see `src/main.rs`) regenerates every table and
//! figure of the paper's §4 on the emulated persistent-memory substrate:
//!
//! | Command    | Paper artefact | What it reports |
//! |------------|----------------|-----------------|
//! | `fig1a`    | Fig. 1(a)      | write amplification of naive PMA-CSR insertion over insertion progress |
//! | `fig1b`    | Fig. 1(b)      | graph insert time: DRAM vs PM vs PM with transactions |
//! | `fig1c`    | Fig. 1(c)      | latency of sequential vs random vs in-place persistent writes |
//! | `fig5`     | Fig. 5         | XPGraph insert throughput vs archiving threshold |
//! | `fig6`     | Fig. 6         | single-thread insert throughput (MEPS), 5 systems × 6 datasets |
//! | `table3`   | Table 3        | insert throughput at 1 / 8 / 16 writer threads |
//! | `fig7`     | Fig. 7         | PageRank and Connected Components time normalised to CSR |
//! | `fig8`     | Fig. 8         | BFS and Betweenness Centrality time normalised to CSR |
//! | `table4`   | Table 4        | kernel execution time at 1 and 16 threads |
//! | `table5`   | Table 5        | ablation: DGAP vs No EL vs No EL&UL vs No EL&UL&DP |
//! | `fig9`     | Fig. 9         | per-section edge-log size sweep (64 B – 16 KiB) |
//! | `recovery` | §4.4           | graceful-restart vs crash-recovery time |
//! | `sharding` | beyond paper   | `crates/sharded` batched ingest + kernels vs shard count |
//! | `serve`    | beyond paper   | `crates/service` mixed mutate/query traffic: throughput + p50/p99/p999 query latency (from the service's own histograms) + snapshot-refresh cost |
//! | `snapshot` | beyond paper   | `FrozenView` capture: sequential vs work-stealing-parallel vs incremental per-shard refresh |
//! | `analytics`| beyond paper   | dyn-dispatch vs zero-dispatch CSR kernels over the unified cross-shard CSR + `UnifiedView` merge/refresh cost |
//!
//! Every experiment can additionally emit its rows as machine-readable
//! JSON (`dgap-bench --json <dir>` writes one `BENCH_<experiment>.json`
//! per experiment, config included), so the performance trajectory is
//! trackable across PRs.
//!
//! This library crate holds the pieces the binary and the Criterion
//! micro-benchmarks share: a uniform wrapper over every graph system
//! ([`AnySystem`] / [`AnyView`]), scaled workload construction, timing
//! helpers and table formatting.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{AnySystem, AnyView, BenchOptions, Measurement, Workload};
pub use report::Table;
