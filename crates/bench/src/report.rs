//! Plain-text table formatting for benchmark output.
//!
//! The harness prints the same rows/columns the paper's tables and figure
//! legends use, so a run can be compared against the published numbers side
//! by side (EXPERIMENTS.md records that comparison).

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let c = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{c:<width$}  ", width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format seconds with three significant decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a throughput in MEPS with two decimals.
pub fn meps(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio (normalised running time) with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["system", "meps"]);
        t.row(vec!["DGAP".into(), "2.52".into()]);
        t.row(vec!["GraphOne-FD".into(), "1.23".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("system"));
        assert!(s.contains("GraphOne-FD"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Every data line has the same leading column width.
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[3].find("2.52").unwrap();
        assert_eq!(lines[4].find("1.23").unwrap(), col);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(meps(2.518), "2.52");
        assert_eq!(ratio(1.299), "1.30");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["a"]);
        assert!(t.is_empty());
        assert!(t.render().contains("empty"));
    }
}
