//! Plain-text table formatting for benchmark output.
//!
//! The harness prints the same rows/columns the paper's tables and figure
//! legends use, so a run can be compared against the published numbers side
//! by side (EXPERIMENTS.md records that comparison).

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let c = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{c:<width$}  ", width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Render the table as a machine-readable JSON document (what
    /// `dgap-bench --json <dir>` writes to `BENCH_<experiment>.json`).
    ///
    /// Column headers become snake_case keys; cells that parse as finite
    /// numbers are emitted as JSON numbers, everything else as strings.
    /// `config_json` must already be a JSON object (the caller serialises
    /// the run's [`crate::BenchOptions`]); it is embedded verbatim.
    pub fn to_json(&self, experiment: &str, config_json: &str) -> String {
        let keys: Vec<String> = self.header.iter().map(|h| snake_case(h)).collect();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            json_escape(experiment)
        ));
        out.push_str(&format!("  \"title\": \"{}\",\n", json_escape(&self.title)));
        out.push_str(&format!("  \"config\": {config_json},\n"));
        out.push_str(&format!(
            "  \"columns\": [{}],\n",
            keys.iter()
                .map(|k| format!("\"{}\"", json_escape(k)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"rows\": [\n");
        for (ri, row) in self.rows.iter().enumerate() {
            let fields: Vec<String> = keys
                .iter()
                .zip(row.iter())
                .map(|(k, cell)| format!("\"{}\": {}", json_escape(k), json_cell(cell)))
                .collect();
            let comma = if ri + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!("    {{{}}}{comma}\n", fields.join(", ")));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Lower-case a header, mapping every run of non-alphanumerics to one `_`
/// ("query p50 ms" -> "query_p50_ms").
fn snake_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_sep = false;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    out
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A table cell as a JSON value: a number when it parses as one (re-emitted
/// through `f64`'s `Display`, which is always valid JSON for finite
/// values), a string otherwise.
fn json_cell(cell: &str) -> String {
    match cell.trim().parse::<f64>() {
        Ok(x) if x.is_finite() && cell.trim().chars().all(|c| !c.is_ascii_alphabetic()) => {
            format!("{x}")
        }
        _ => format!("\"{}\"", json_escape(cell)),
    }
}

/// Format seconds with three significant decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a throughput in MEPS with two decimals.
pub fn meps(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio (normalised running time) with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["system", "meps"]);
        t.row(vec!["DGAP".into(), "2.52".into()]);
        t.row(vec!["GraphOne-FD".into(), "1.23".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("system"));
        assert!(s.contains("GraphOne-FD"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Every data line has the same leading column width.
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[3].find("2.52").unwrap();
        assert_eq!(lines[4].find("1.23").unwrap(), col);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(meps(2.518), "2.52");
        assert_eq!(ratio(1.299), "1.30");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["a"]);
        assert!(t.is_empty());
        assert!(t.render().contains("empty"));
    }

    #[test]
    fn snake_case_headers() {
        assert_eq!(snake_case("query p50 ms"), "query_p50_ms");
        assert_eq!(snake_case("throughput MEPS"), "throughput_meps");
        assert_eq!(snake_case("captures/refresh"), "captures_refresh");
        assert_eq!(snake_case("  shards "), "shards");
    }

    #[test]
    fn json_cells_type_correctly() {
        assert_eq!(json_cell("2.52"), "2.52");
        assert_eq!(json_cell("42"), "42");
        assert_eq!(json_cell("T1"), "\"T1\"");
        assert_eq!(json_cell("2^8"), "\"2^8\"");
        assert_eq!(json_cell("NaN"), "\"NaN\"");
        assert_eq!(json_cell("seq \"quoted\""), "\"seq \\\"quoted\\\"\"");
    }

    #[test]
    fn to_json_emits_one_object_per_row() {
        let mut t = Table::new("Demo", &["system", "throughput MEPS", "p50 ms"]);
        t.row(vec!["DGAP".into(), "2.52".into(), "0.125".into()]);
        t.row(vec!["BAL".into(), "1.10".into(), "0.250".into()]);
        let j = t.to_json("demo", "{\"scale\":8192}");
        assert!(j.contains("\"experiment\": \"demo\""));
        assert!(j.contains("\"config\": {\"scale\":8192}"));
        assert!(j.contains("\"throughput_meps\": 2.52"));
        assert!(j.contains("\"p50_ms\": 0.25"));
        assert!(j.contains("\"system\": \"BAL\""));
        // Exactly two row objects, comma-separated.
        assert_eq!(j.matches("{\"system\"").count(), 2);
    }
}
