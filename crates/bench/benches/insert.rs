//! Criterion micro-benchmark: single-edge insertion cost per system
//! (the microscopic view behind Fig. 6).

use baselines::SystemKind;
use bench::{AnySystem, BenchOptions, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workloads::datasets::ORKUT;

fn insert_benchmark(c: &mut Criterion) {
    let opts = BenchOptions {
        scale: 1 << 17, // tiny: criterion repeats the workload many times
        ..BenchOptions::default()
    };
    let w = Workload::build(ORKUT, &opts);
    let mut group = c.benchmark_group("insert_orkut_scaled");
    group.throughput(Throughput::Elements(w.edges.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for kind in SystemKind::dynamic_systems() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter_with_large_drop(|| {
                    let pool = bench::harness::pool_for_edges(w.edges.len());
                    let sys = AnySystem::build(kind, pool, w.num_vertices, w.edges.len());
                    sys.insert_all(&w.edges);
                    sys
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, insert_benchmark);
criterion_main!(benches);
