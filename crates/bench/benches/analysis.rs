//! Criterion micro-benchmark: analysis kernels per system on a small
//! workload (the microscopic view behind Figs. 7–8 / Table 4).

use analytics::{bfs, cc, highest_degree_vertex, pagerank};
use baselines::SystemKind;
use bench::{AnySystem, BenchOptions, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgap::GraphView;
use workloads::datasets::LIVEJOURNAL;

fn analysis_benchmark(c: &mut Criterion) {
    let opts = BenchOptions {
        scale: 1 << 16,
        ..BenchOptions::default()
    };
    let w = Workload::build(LIVEJOURNAL, &opts);

    // Build every system once; kernels are read-only.
    let mut systems = Vec::new();
    {
        let pool = bench::harness::pool_for_edges(w.edges.len());
        systems.push(AnySystem::build_csr(pool, w.num_vertices, &w.edges));
    }
    for kind in SystemKind::dynamic_systems() {
        let pool = bench::harness::pool_for_edges(w.edges.len());
        let sys = AnySystem::build(kind, pool, w.num_vertices, w.edges.len());
        sys.insert_all(&w.edges);
        sys.flush();
        systems.push(sys);
    }

    let mut pr_group = c.benchmark_group("pagerank_livejournal_scaled");
    pr_group.sample_size(10);
    pr_group.warm_up_time(std::time::Duration::from_millis(500));
    pr_group.measurement_time(std::time::Duration::from_millis(1500));
    for sys in &systems {
        let view = sys.view();
        pr_group.bench_with_input(
            BenchmarkId::from_parameter(sys.label()),
            &view,
            |b, view| {
                b.iter(|| pagerank(view, 5));
            },
        );
    }
    pr_group.finish();

    let mut bfs_group = c.benchmark_group("bfs_livejournal_scaled");
    bfs_group.sample_size(10);
    bfs_group.warm_up_time(std::time::Duration::from_millis(500));
    bfs_group.measurement_time(std::time::Duration::from_millis(1500));
    for sys in &systems {
        let view = sys.view();
        let source = highest_degree_vertex(&view);
        bfs_group.bench_with_input(
            BenchmarkId::from_parameter(sys.label()),
            &view,
            |b, view| {
                b.iter(|| bfs(view, source));
            },
        );
    }
    bfs_group.finish();

    let mut cc_group = c.benchmark_group("cc_livejournal_scaled");
    cc_group.sample_size(10);
    cc_group.warm_up_time(std::time::Duration::from_millis(500));
    cc_group.measurement_time(std::time::Duration::from_millis(1500));
    for sys in &systems {
        let view = sys.view();
        if view.num_edges() == 0 {
            continue;
        }
        cc_group.bench_with_input(
            BenchmarkId::from_parameter(sys.label()),
            &view,
            |b, view| {
                b.iter(|| cc(view));
            },
        );
    }
    cc_group.finish();
}

criterion_group!(benches, analysis_benchmark);
criterion_main!(benches);
