//! Criterion micro-benchmark: crash-consistent window overwrites — DGAP's
//! per-thread undo log against PMDK-style transactions (the mechanism gap
//! that the Table 5 "No EL&UL" ablation measures end to end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgap::ulog::UndoLog;
use pmem::tx::TxContext;
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;

fn rebalance_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("protected_window_overwrite");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for window_bytes in [2_048usize, 16_384, 131_072] {
        let pool = Arc::new(PmemPool::new(
            PmemConfig::with_capacity(64 << 20).persistence_tracking(false),
        ));
        let window = pool.alloc(window_bytes, 64).unwrap();
        pool.memset(window, 1, window_bytes);
        pool.persist(window, window_bytes);
        let new_contents = vec![7u8; window_bytes];
        group.throughput(Throughput::Bytes(window_bytes as u64));

        let ulog = UndoLog::new(Arc::clone(&pool), window_bytes, 2048).unwrap();
        group.bench_with_input(
            BenchmarkId::new("per_thread_undo_log", window_bytes),
            &window_bytes,
            |b, _| {
                b.iter(|| {
                    ulog.protected_overwrite(window, &new_contents).unwrap();
                });
            },
        );

        // The journal region is allocated once (the bump allocator would run
        // out if every Criterion iteration allocated a fresh one); the
        // per-transaction journal-allocation overhead itself is charged by
        // `begin()` through the cost model, so the comparison is preserved.
        let ctx = TxContext::new(&pool, window_bytes + 64).unwrap();
        group.bench_with_input(
            BenchmarkId::new("pmdk_style_tx", window_bytes),
            &window_bytes,
            |b, _| {
                b.iter(|| {
                    let mut tx = ctx.begin().unwrap();
                    tx.add_range(window, window_bytes).unwrap();
                    pool.write(window, &new_contents);
                    tx.commit();
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, rebalance_benchmark);
criterion_main!(benches);
