//! Criterion micro-benchmark: the persistent-memory primitives whose cost
//! asymmetries motivate DGAP's designs (Fig. 1(c) and §2.1.2).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pmem::{PmemConfig, PmemPool};

fn primitives_benchmark(c: &mut Criterion) {
    let pool = PmemPool::new(PmemConfig::with_capacity(64 << 20).persistence_tracking(false));
    let region = pool.alloc(16 << 20, 256).unwrap();
    let payload = [0x5au8; 64];
    let writes_per_iter = 1024u64;

    let mut group = c.benchmark_group("pmem_persistent_writes");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Bytes(writes_per_iter * 64));

    group.bench_function("sequential", |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            for _ in 0..writes_per_iter {
                let off = region + (cursor % (8 << 20));
                pool.write(off, &payload);
                pool.persist(off, 64);
                cursor += 64;
            }
        });
    });

    group.bench_function("random", |b| {
        let mut x = 0x9e3779b9u64;
        b.iter(|| {
            for _ in 0..writes_per_iter {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let off = region + (x % (8 << 20) / 64) * 64;
                pool.write(off, &payload);
                pool.persist(off, 64);
            }
        });
    });

    group.bench_function("in_place", |b| {
        let off = region + (12 << 20);
        b.iter(|| {
            for _ in 0..writes_per_iter {
                pool.write(off, &payload);
                pool.persist(off, 64);
            }
        });
    });

    group.bench_function("unflushed_store", |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            for _ in 0..writes_per_iter {
                let off = region + (cursor % (8 << 20));
                pool.write(off, &payload);
                cursor += 64;
            }
            pool.persist(region, 64); // single ordering point per batch
        });
    });

    group.finish();
}

criterion_group!(benches, primitives_benchmark);
criterion_main!(benches);
