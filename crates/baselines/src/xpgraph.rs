//! XPGraph-like PM-native graph store.
//!
//! XPGraph (MICRO'22) is "GraphOne re-designed for persistent memory": new
//! edges are appended to a PM circular edge log (cheap, sequential,
//! immediately durable) and, once an *archiving threshold* worth of edges
//! has accumulated, an archiving pass moves them into per-vertex adjacency
//! storage on PM, batching per vertex through a DRAM cache that analysis
//! also reads.  Two properties of the paper's evaluation are reproduced:
//!
//! * insertion throughput is governed by the archiving threshold (Fig. 5) —
//!   a larger threshold amortises the adjacency updates over more edges;
//! * analysis runs against the archived (DRAM-cached) adjacency, so it may
//!   trail the latest graph by up to one threshold of edges.

use dgap::{DynamicGraph, GraphError, GraphResult, GraphView, SnapshotSource, VertexId};
use parking_lot::{Mutex, RwLock};
use pmem::{PmemOffset, PmemPool, NULL_OFFSET};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Edges per adjacency block on PM.
const ADJ_BLOCK_EDGES: usize = 32;
/// Block layout: next pointer (8 B) + used (8 B) + edges.
const ADJ_BLOCK_BYTES: usize = 16 + ADJ_BLOCK_EDGES * 8;

/// Default archiving threshold used in the paper's comparison (2^10).
pub const DEFAULT_ARCHIVE_THRESHOLD: usize = 1 << 10;

#[derive(Debug, Clone, Copy, Default)]
struct AdjState {
    head: PmemOffset,
    tail: PmemOffset,
    used_in_tail: usize,
}

/// The XPGraph-like baseline.
pub struct XpGraph {
    pool: Arc<PmemPool>,
    /// PM circular edge log.
    log_base: PmemOffset,
    log_capacity_edges: usize,
    log_cursor: Mutex<usize>,
    /// Edges appended since the last archiving pass.
    staged: Mutex<Vec<(VertexId, VertexId)>>,
    /// Per-vertex PM adjacency blocks.
    adj_pm: RwLock<Vec<Mutex<AdjState>>>,
    /// DRAM adjacency cache (what analysis reads).
    adj_dram: RwLock<Vec<Vec<VertexId>>>,
    archive_threshold: usize,
    archived_edges: AtomicUsize,
    num_edges: AtomicUsize,
}

impl XpGraph {
    /// Create an instance with the given archiving threshold.  The circular
    /// edge log is sized at four thresholds, mirroring XPGraph's fixed log.
    pub fn new(
        pool: Arc<PmemPool>,
        num_vertices: usize,
        archive_threshold: usize,
    ) -> GraphResult<Self> {
        let archive_threshold = archive_threshold.max(1);
        let log_capacity_edges = (archive_threshold * 4).max(64);
        let log_base = pool
            .alloc(log_capacity_edges * 16, 64)
            .map_err(|e| GraphError::OutOfSpace(e.to_string()))?;
        Ok(XpGraph {
            pool,
            log_base,
            log_capacity_edges,
            log_cursor: Mutex::new(0),
            staged: Mutex::new(Vec::new()),
            adj_pm: RwLock::new(
                (0..num_vertices)
                    .map(|_| Mutex::new(AdjState::default()))
                    .collect(),
            ),
            adj_dram: RwLock::new(vec![Vec::new(); num_vertices]),
            archive_threshold,
            archived_edges: AtomicUsize::new(0),
            num_edges: AtomicUsize::new(0),
        })
    }

    /// Number of edges that have been archived into adjacency storage.
    pub fn archived_edges(&self) -> usize {
        self.archived_edges.load(Ordering::Relaxed)
    }

    fn ensure(&self, v: VertexId) {
        let needed = v as usize + 1;
        if self.adj_dram.read().len() >= needed {
            return;
        }
        {
            let mut d = self.adj_dram.write();
            if d.len() < needed {
                d.resize(needed, Vec::new());
            }
        }
        let mut p = self.adj_pm.write();
        while p.len() < needed {
            p.push(Mutex::new(AdjState::default()));
        }
    }

    /// Move every staged edge into the per-vertex adjacency structures
    /// (PM blocks + DRAM cache).
    pub fn archive(&self) -> GraphResult<()> {
        let staged: Vec<(VertexId, VertexId)> = {
            let mut s = self.staged.lock();
            std::mem::take(&mut *s)
        };
        if staged.is_empty() {
            return Ok(());
        }
        let map_err = |e: pmem::PmemError| GraphError::OutOfSpace(e.to_string());
        // Group by source vertex: this is XPGraph's whole point — the
        // archiving threshold controls how many edges are batched into each
        // vertex's adjacency blocks per pass, amortising block writes and
        // ordering points.
        let mut by_src: std::collections::HashMap<VertexId, Vec<VertexId>> =
            std::collections::HashMap::new();
        for &(src, dst) in &staged {
            by_src.entry(src).or_default().push(dst);
        }
        {
            let adj_pm = self.adj_pm.read();
            for (&src, dests) in &by_src {
                let mut st = adj_pm[src as usize].lock();
                let mut i = 0usize;
                while i < dests.len() {
                    if st.tail == NULL_OFFSET || st.used_in_tail == ADJ_BLOCK_EDGES {
                        let block = self
                            .pool
                            .alloc_zeroed(ADJ_BLOCK_BYTES, 64)
                            .map_err(map_err)?;
                        if st.tail != NULL_OFFSET {
                            self.pool.write_u64(st.tail, block);
                            self.pool.flush(st.tail, 8);
                        } else {
                            st.head = block;
                        }
                        st.tail = block;
                        st.used_in_tail = 0;
                    }
                    // Fill as much of the tail block as this batch allows,
                    // then persist the whole run with one flush + fence.
                    let room = ADJ_BLOCK_EDGES - st.used_in_tail;
                    let take = room.min(dests.len() - i);
                    let words: Vec<u64> = dests[i..i + take].iter().map(|d| d + 1).collect();
                    let slot = st.tail + 16 + (st.used_in_tail as u64) * 8;
                    self.pool.write_u64_slice(slot, &words);
                    st.used_in_tail += take;
                    self.pool.write_u64(st.tail + 8, st.used_in_tail as u64);
                    self.pool.flush(slot, take * 8);
                    self.pool.flush(st.tail + 8, 8);
                    self.pool.fence();
                    i += take;
                }
            }
        }
        {
            let mut adj = self.adj_dram.write();
            for &(src, dst) in &staged {
                adj[src as usize].push(dst);
            }
        }
        self.archived_edges
            .fetch_add(staged.len(), Ordering::Relaxed);
        Ok(())
    }
}

impl DynamicGraph for XpGraph {
    fn insert_vertex(&self, v: VertexId) -> GraphResult<()> {
        self.ensure(v);
        Ok(())
    }

    fn insert_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<()> {
        self.ensure(src.max(dst));
        // Append to the circular PM edge log: one 16-byte sequential write,
        // persisted immediately (this is what makes XPGraph durable).
        let slot = {
            let mut cur = self.log_cursor.lock();
            let s = *cur % self.log_capacity_edges;
            *cur += 1;
            s
        };
        let off = self.log_base + (slot as u64) * 16;
        let mut buf = [0u8; 16];
        buf[0..8].copy_from_slice(&src.to_le_bytes());
        buf[8..16].copy_from_slice(&dst.to_le_bytes());
        self.pool.write(off, &buf);
        self.pool.persist(off, 16);

        let should_archive = {
            let mut staged = self.staged.lock();
            staged.push((src, dst));
            staged.len() >= self.archive_threshold
        };
        self.num_edges.fetch_add(1, Ordering::Relaxed);
        if should_archive {
            self.archive()?;
        }
        Ok(())
    }

    fn num_vertices(&self) -> usize {
        self.adj_dram.read().len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges.load(Ordering::Relaxed)
    }

    fn flush(&self) {
        let _ = self.archive();
    }

    fn system_name(&self) -> &'static str {
        "XPGraph"
    }
}

/// Analysis view over the archived (DRAM-cached) adjacency.
pub struct XpGraphView<'a> {
    graph: &'a XpGraph,
    degrees: Vec<usize>,
    num_edges: usize,
}

impl GraphView for XpGraphView<'_> {
    fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degrees.get(v as usize).copied().unwrap_or(0)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        let take = self.degree(v);
        if take == 0 {
            return;
        }
        let adj = self.graph.adj_dram.read();
        for &d in adj[v as usize].iter().take(take) {
            f(d);
        }
    }
}

impl SnapshotSource for XpGraph {
    type View<'a> = XpGraphView<'a>;

    fn consistent_view(&self) -> XpGraphView<'_> {
        let adj = self.adj_dram.read();
        let degrees: Vec<usize> = adj.iter().map(Vec::len).collect();
        let num_edges = degrees.iter().sum();
        XpGraphView {
            graph: self,
            degrees,
            num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgap::ReferenceGraph;
    use pmem::PmemConfig;

    fn xp(threshold: usize) -> XpGraph {
        XpGraph::new(
            Arc::new(PmemPool::new(PmemConfig::small_test())),
            16,
            threshold,
        )
        .unwrap()
    }

    #[test]
    fn edges_become_analysable_after_archiving() {
        let g = xp(4);
        for d in [1u64, 2, 3] {
            g.insert_edge(0, d).unwrap();
        }
        assert_eq!(g.consistent_view().degree(0), 0, "not archived yet");
        g.insert_edge(0, 4).unwrap(); // hits the threshold
        assert_eq!(g.consistent_view().neighbors(0), vec![1, 2, 3, 4]);
        assert_eq!(g.archived_edges(), 4);
    }

    #[test]
    fn flush_forces_archiving() {
        let g = xp(1000);
        g.insert_edge(2, 3).unwrap();
        assert_eq!(g.consistent_view().degree(2), 0);
        g.flush();
        assert_eq!(g.consistent_view().neighbors(2), vec![3]);
    }

    #[test]
    fn every_insert_is_durable_in_the_edge_log() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let g = XpGraph::new(Arc::clone(&pool), 8, 1 << 10).unwrap();
        let before = pool.stats_snapshot();
        g.insert_edge(1, 2).unwrap();
        let d = pool.stats_snapshot().delta_since(&before);
        assert!(d.logical_bytes_written >= 16);
        assert!(d.flushes >= 1, "the log append must be persisted");
    }

    #[test]
    fn matches_reference_after_flush() {
        let g = xp(128);
        let mut reference = ReferenceGraph::new(16);
        let mut x = 17u64;
        for _ in 0..1500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (s, d) = ((x >> 30) % 16, (x >> 10) % 16);
            g.insert_edge(s, d).unwrap();
            reference.add_edge(s, d);
        }
        g.flush();
        let view = g.consistent_view();
        for v in 0..16u64 {
            assert_eq!(view.neighbors(v), reference.neighbors(v));
        }
    }

    #[test]
    fn larger_threshold_means_fewer_pm_adjacency_writes_per_edge() {
        let run = |threshold: usize| {
            let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
            let g = XpGraph::new(Arc::clone(&pool), 16, threshold).unwrap();
            let before = pool.stats_snapshot();
            let mut x = 5u64;
            for _ in 0..1024 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                g.insert_edge((x >> 30) % 16, (x >> 10) % 16).unwrap();
            }
            pool.stats_snapshot().delta_since(&before).fences
        };
        // More archiving passes (smaller threshold) → more ordering points.
        assert!(run(16) > run(512));
    }

    #[test]
    fn adjacency_blocks_chain_on_pm() {
        let g = xp(1);
        for d in 0..(ADJ_BLOCK_EDGES as u64 * 2 + 5) {
            g.insert_edge(0, d % 16).unwrap();
        }
        let view = g.consistent_view();
        assert_eq!(view.degree(0), ADJ_BLOCK_EDGES * 2 + 5);
    }

    #[test]
    fn vertex_growth() {
        let g = xp(2);
        g.insert_edge(50, 3).unwrap();
        assert_eq!(DynamicGraph::num_vertices(&g), 51);
    }
}
