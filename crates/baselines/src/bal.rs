//! Blocked Adjacency List on persistent memory.
//!
//! Each vertex owns a chain of fixed-size edge blocks on PM; inserting an
//! edge appends it to the vertex's tail block (allocating and linking a new
//! block through a PMDK-style transaction when the tail is full).  This is
//! the insertion-friendly extreme of the design space: appends are cheap,
//! but whole-graph analysis chases block pointers all over the pool and has
//! poor locality — exactly the trade-off the paper uses BAL to illustrate.
//!
//! Following the paper's implementation note, BAL uses *vertex-grained*
//! locks (one per vertex) rather than DGAP's section locks, which is why it
//! can scale insertion throughput well at high thread counts at the price of
//! a much larger lock table.

use dgap::{DynamicGraph, GraphError, GraphResult, GraphView, SnapshotSource, VertexId};
use parking_lot::{Mutex, RwLock};
use pmem::tx::TxContext;
use pmem::{PmemOffset, PmemPool, NULL_OFFSET};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of edges one block holds.
pub const BLOCK_EDGES: usize = 30;
/// Block layout: next pointer (8 B) + used counter (8 B) + edges.
const BLOCK_BYTES: usize = 16 + BLOCK_EDGES * 8;

#[derive(Debug, Clone, Copy, Default)]
struct VertexState {
    head: PmemOffset,
    tail: PmemOffset,
    used_in_tail: usize,
    degree: usize,
}

/// The Blocked Adjacency List baseline.
pub struct Bal {
    pool: Arc<PmemPool>,
    vertices: RwLock<Vec<Mutex<VertexState>>>,
    num_edges: AtomicUsize,
}

impl Bal {
    /// Create an empty BAL sized for `num_vertices` vertices (it grows
    /// automatically when larger ids appear).
    pub fn new(pool: Arc<PmemPool>, num_vertices: usize) -> Self {
        Bal {
            pool,
            vertices: RwLock::new(
                (0..num_vertices)
                    .map(|_| Mutex::new(VertexState::default()))
                    .collect(),
            ),
            num_edges: AtomicUsize::new(0),
        }
    }

    fn ensure(&self, v: VertexId) {
        let needed = v as usize + 1;
        if self.vertices.read().len() >= needed {
            return;
        }
        let mut vs = self.vertices.write();
        while vs.len() < needed {
            vs.push(Mutex::new(VertexState::default()));
        }
    }

    /// Allocate a zeroed block and link it behind `prev` (or as the head),
    /// protected by a PMDK-style transaction as a real crash-consistent BAL
    /// would do.
    fn alloc_block(&self, state: &mut VertexState) -> GraphResult<PmemOffset> {
        let map_err = |e: pmem::PmemError| GraphError::OutOfSpace(e.to_string());
        let block = self.pool.alloc_zeroed(BLOCK_BYTES, 64).map_err(map_err)?;
        self.pool.persist(block, BLOCK_BYTES);
        if state.tail != NULL_OFFSET {
            // Link the previous tail to the new block transactionally.
            let ctx = TxContext::new(&self.pool, 64).map_err(map_err)?;
            let mut tx = ctx.begin().map_err(map_err)?;
            tx.write(state.tail, &block.to_le_bytes())
                .map_err(map_err)?;
            tx.commit();
        } else {
            state.head = block;
        }
        state.tail = block;
        state.used_in_tail = 0;
        Ok(block)
    }
}

impl DynamicGraph for Bal {
    fn insert_vertex(&self, v: VertexId) -> GraphResult<()> {
        self.ensure(v);
        Ok(())
    }

    fn insert_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<()> {
        self.ensure(src.max(dst));
        let vs = self.vertices.read();
        let mut state = vs[src as usize].lock();
        if state.tail == NULL_OFFSET || state.used_in_tail == BLOCK_EDGES {
            self.alloc_block(&mut state)?;
        }
        let slot = state.tail + 16 + (state.used_in_tail as u64) * 8;
        self.pool.write_u64(slot, dst + 1);
        self.pool.persist(slot, 8);
        // The used counter lives at a fixed PM location and is updated in
        // place on every insert — the pattern DGAP's DRAM placement avoids.
        state.used_in_tail += 1;
        self.pool
            .write_u64(state.tail + 8, state.used_in_tail as u64);
        self.pool.persist(state.tail + 8, 8);
        state.degree += 1;
        drop(state);
        drop(vs);
        self.num_edges.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn num_vertices(&self) -> usize {
        self.vertices.read().len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges.load(Ordering::Relaxed)
    }

    fn flush(&self) {
        self.pool.fence();
    }

    fn system_name(&self) -> &'static str {
        "BAL"
    }
}

/// A degree-snapshot view of a [`Bal`] graph.
pub struct BalView<'a> {
    graph: &'a Bal,
    degrees: Vec<usize>,
    num_edges: usize,
}

impl GraphView for BalView<'_> {
    fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degrees.get(v as usize).copied().unwrap_or(0)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        let mut remaining = self.degree(v);
        if remaining == 0 {
            return;
        }
        let vs = self.graph.vertices.read();
        let head = vs[v as usize].lock().head;
        drop(vs);
        let mut block = head;
        while block != NULL_OFFSET && remaining > 0 {
            let next = self.graph.pool.read_u64(block);
            let used = self.graph.pool.read_u64(block + 8) as usize;
            let take = used.min(remaining).min(BLOCK_EDGES);
            let mut buf = vec![0u64; take];
            self.graph.pool.read_u64_slice(block + 16, &mut buf);
            for raw in buf {
                if raw != 0 {
                    f(raw - 1);
                }
            }
            remaining -= take;
            block = next;
        }
    }
}

impl SnapshotSource for Bal {
    type View<'a> = BalView<'a>;

    fn consistent_view(&self) -> BalView<'_> {
        let vs = self.vertices.read();
        let degrees: Vec<usize> = vs.iter().map(|m| m.lock().degree).collect();
        let num_edges = degrees.iter().sum();
        BalView {
            graph: self,
            degrees,
            num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgap::ReferenceGraph;
    use pmem::PmemConfig;

    fn bal() -> Bal {
        Bal::new(Arc::new(PmemPool::new(PmemConfig::small_test())), 16)
    }

    #[test]
    fn insert_and_read_back() {
        let g = bal();
        for d in [3u64, 1, 4, 1, 5] {
            g.insert_edge(2, d).unwrap();
        }
        let view = g.consistent_view();
        assert_eq!(view.degree(2), 5);
        assert_eq!(view.neighbors(2), vec![3, 1, 4, 1, 5]);
        assert_eq!(view.neighbors(3), Vec::<u64>::new());
        assert_eq!(DynamicGraph::num_edges(&g), 5);
    }

    #[test]
    fn block_chains_grow_past_one_block() {
        let g = bal();
        let expected: Vec<u64> = (0..(BLOCK_EDGES as u64 * 3 + 7)).collect();
        for &d in &expected {
            g.insert_edge(0, d % 16).unwrap();
        }
        let view = g.consistent_view();
        assert_eq!(view.degree(0), expected.len());
        assert_eq!(
            view.neighbors(0),
            expected.iter().map(|d| d % 16).collect::<Vec<_>>()
        );
    }

    #[test]
    fn matches_reference_on_random_workload() {
        let g = bal();
        let mut reference = ReferenceGraph::new(16);
        let mut x = 7u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (s, d) = ((x >> 30) % 16, (x >> 10) % 16);
            g.insert_edge(s, d).unwrap();
            reference.add_edge(s, d);
        }
        let view = g.consistent_view();
        for v in 0..16u64 {
            assert_eq!(view.neighbors(v), reference.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn snapshot_isolation() {
        let g = bal();
        g.insert_edge(1, 2).unwrap();
        let view = g.consistent_view();
        g.insert_edge(1, 3).unwrap();
        assert_eq!(view.neighbors(1), vec![2]);
        assert_eq!(g.consistent_view().neighbors(1), vec![2, 3]);
    }

    #[test]
    fn vertices_grow_on_demand() {
        let g = bal();
        g.insert_edge(100, 5).unwrap();
        assert_eq!(DynamicGraph::num_vertices(&g), 101);
        assert_eq!(g.consistent_view().neighbors(100), vec![5]);
    }

    #[test]
    fn block_allocation_uses_transactions() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let g = Bal::new(Arc::clone(&pool), 4);
        for d in 0..(BLOCK_EDGES as u64 + 1) {
            g.insert_edge(0, d % 4).unwrap();
        }
        assert!(
            pool.stats_snapshot().tx_committed >= 1,
            "linking the second block must be transactional"
        );
    }

    #[test]
    fn concurrent_inserts_to_different_vertices() {
        let g = Arc::new(Bal::new(
            Arc::new(PmemPool::new(PmemConfig::small_test())),
            8,
        ));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        g.insert_edge(t * 2, i % 8).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(DynamicGraph::num_edges(&*g), 800);
        let view = g.consistent_view();
        for t in 0..4u64 {
            assert_eq!(view.degree(t * 2), 200);
        }
    }
}
