//! Static Compressed Sparse Row on persistent memory.
//!
//! The paper ports the GAPBS CSR to PM and uses it as the graph-analysis
//! reference: it cannot absorb updates (the whole edge array would have to
//! be rebuilt), but its perfectly compact, perfectly sequential layout is
//! the fastest thing analysis can run on.  Figures 7 and 8 normalise every
//! system's kernel time to this baseline.

use dgap::{DynamicGraph, GraphError, GraphResult, GraphView, SnapshotSource, VertexId};
use pmem::{PmemOffset, PmemPool};
use std::sync::Arc;

/// A read-only CSR image stored on persistent memory.
pub struct PmCsr {
    pool: Arc<PmemPool>,
    /// Offset of the `|V| + 1` row-offset array (u64 entries).
    offsets: PmemOffset,
    /// Offset of the `|E|` destination array (u64 entries).
    edges: PmemOffset,
    num_vertices: usize,
    num_edges: usize,
}

impl PmCsr {
    /// Build a CSR image from an edge list and persist it.
    pub fn build(
        pool: Arc<PmemPool>,
        num_vertices: usize,
        edge_list: &[(VertexId, VertexId)],
    ) -> GraphResult<Self> {
        let nv = edge_list
            .iter()
            .map(|&(s, d)| s.max(d) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(num_vertices);
        // Counting sort by source preserves per-vertex insertion order.
        let mut counts = vec![0u64; nv + 1];
        for &(s, _) in edge_list {
            counts[s as usize + 1] += 1;
        }
        for i in 1..=nv {
            counts[i] += counts[i - 1];
        }
        let offsets_vec = counts.clone();
        let mut cursor = counts;
        let mut dests = vec![0u64; edge_list.len()];
        for &(s, d) in edge_list {
            let slot = cursor[s as usize];
            dests[slot as usize] = d;
            cursor[s as usize] += 1;
        }

        let map_err = |e: pmem::PmemError| GraphError::OutOfSpace(e.to_string());
        let offsets = pool.alloc((nv + 1) * 8, 64).map_err(map_err)?;
        pool.write_u64_slice(offsets, &offsets_vec);
        pool.persist(offsets, (nv + 1) * 8);
        let edges = pool.alloc(dests.len().max(1) * 8, 64).map_err(map_err)?;
        pool.write_u64_slice(edges, &dests);
        pool.persist(edges, dests.len().max(1) * 8);

        Ok(PmCsr {
            pool,
            offsets,
            edges,
            num_vertices: nv,
            num_edges: edge_list.len(),
        })
    }

    fn offset_at(&self, i: usize) -> u64 {
        self.pool.read_u64(self.offsets + (i as u64) * 8)
    }
}

impl GraphView for PmCsr {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        if v as usize >= self.num_vertices {
            return 0;
        }
        (self.offset_at(v as usize + 1) - self.offset_at(v as usize)) as usize
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        if v as usize >= self.num_vertices {
            return;
        }
        let start = self.offset_at(v as usize);
        let end = self.offset_at(v as usize + 1);
        let n = (end - start) as usize;
        if n == 0 {
            return;
        }
        let mut buf = vec![0u64; n];
        self.pool.read_u64_slice(self.edges + start * 8, &mut buf);
        for d in buf {
            f(d);
        }
    }
}

impl DynamicGraph for PmCsr {
    fn insert_vertex(&self, _v: VertexId) -> GraphResult<()> {
        Err(GraphError::Unsupported("CSR is immutable"))
    }

    fn insert_edge(&self, _src: VertexId, _dst: VertexId) -> GraphResult<()> {
        Err(GraphError::Unsupported("CSR is immutable"))
    }

    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn flush(&self) {
        self.pool.fence();
    }

    fn system_name(&self) -> &'static str {
        "CSR"
    }
}

/// A borrowed view of the CSR (the CSR itself is already a consistent,
/// immutable snapshot).
pub struct PmCsrView<'a>(&'a PmCsr);

impl GraphView for PmCsrView<'_> {
    fn num_vertices(&self) -> usize {
        GraphView::num_vertices(self.0)
    }
    fn num_edges(&self) -> usize {
        GraphView::num_edges(self.0)
    }
    fn degree(&self, v: VertexId) -> usize {
        self.0.degree(v)
    }
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.0.for_each_neighbor(v, f);
    }
}

impl SnapshotSource for PmCsr {
    type View<'a> = PmCsrView<'a>;

    fn consistent_view(&self) -> PmCsrView<'_> {
        PmCsrView(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    fn pool() -> Arc<PmemPool> {
        Arc::new(PmemPool::new(PmemConfig::small_test()))
    }

    #[test]
    fn build_and_read_back() {
        let edges = vec![(0u64, 1u64), (0, 2), (1, 2), (2, 0), (0, 3)];
        let csr = PmCsr::build(pool(), 4, &edges).unwrap();
        assert_eq!(GraphView::num_vertices(&csr), 4);
        assert_eq!(GraphView::num_edges(&csr), 5);
        assert_eq!(csr.degree(0), 3);
        assert_eq!(csr.neighbors(0), vec![1, 2, 3]);
        assert_eq!(csr.neighbors(1), vec![2]);
        assert_eq!(csr.neighbors(3), Vec::<u64>::new());
    }

    #[test]
    fn insertion_order_is_preserved_per_vertex() {
        let edges = vec![(1u64, 9u64), (1, 3), (1, 7), (0, 5)];
        let csr = PmCsr::build(pool(), 2, &edges).unwrap();
        assert_eq!(csr.neighbors(1), vec![9, 3, 7]);
    }

    #[test]
    fn vertex_count_grows_to_cover_edge_ids() {
        let edges = vec![(10u64, 20u64)];
        let csr = PmCsr::build(pool(), 2, &edges).unwrap();
        assert_eq!(GraphView::num_vertices(&csr), 21);
        assert_eq!(csr.degree(10), 1);
        assert_eq!(csr.degree(20), 0);
    }

    #[test]
    fn updates_are_rejected() {
        let csr = PmCsr::build(pool(), 2, &[(0, 1)]).unwrap();
        assert!(matches!(
            csr.insert_edge(0, 1),
            Err(GraphError::Unsupported(_))
        ));
        assert!(csr.insert_vertex(5).is_err());
        assert_eq!(csr.system_name(), "CSR");
    }

    #[test]
    fn image_survives_crash() {
        let p = pool();
        let edges = vec![(0u64, 1u64), (1, 0), (1, 1)];
        let csr = PmCsr::build(Arc::clone(&p), 2, &edges).unwrap();
        p.simulate_crash();
        assert_eq!(csr.neighbors(1), vec![0, 1]);
    }

    #[test]
    fn empty_graph() {
        let csr = PmCsr::build(pool(), 0, &[]).unwrap();
        assert_eq!(GraphView::num_vertices(&csr), 0);
        assert_eq!(GraphView::num_edges(&csr), 0);
        assert_eq!(csr.degree(0), 0);
    }

    #[test]
    fn snapshot_view_delegates() {
        let csr = PmCsr::build(pool(), 3, &[(0, 1), (2, 1)]).unwrap();
        let view = csr.consistent_view();
        assert_eq!(view.num_vertices(), 3);
        assert_eq!(view.neighbors(2), vec![1]);
    }
}
