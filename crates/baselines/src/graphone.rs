//! GraphOne-FD: a GraphOne-like hybrid with periodic durability flushes.
//!
//! GraphOne ingests edges into an in-DRAM edge list (append-only) and an
//! in-DRAM adjacency list used for analysis; durability comes from copying
//! the edge list to non-volatile storage in the background.  The paper's
//! port ("GraphOne-FD", Flushing-DRAM) keeps the same structure but flushes
//! the DRAM edge list to the PM durability log every 2¹⁶ insertions, and
//! places no limit on DRAM usage — which is why it looks fast on analysis
//! (everything is cached in DRAM) but risks losing up to one flush interval
//! of updates on a crash.

use dgap::{DynamicGraph, GraphError, GraphResult, GraphView, SnapshotSource, VertexId};
use parking_lot::{Mutex, RwLock};
use pmem::{PmemOffset, PmemPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default flush interval (the paper flushes every 2^16 insertions).
pub const DEFAULT_FLUSH_INTERVAL: usize = 1 << 16;

/// The GraphOne-FD baseline.
pub struct GraphOneFd {
    pool: Arc<PmemPool>,
    /// DRAM adjacency list used for analysis.
    adjacency: RwLock<Vec<Vec<VertexId>>>,
    /// DRAM edge list (the tail that has not been made durable yet).
    pending: Mutex<Vec<(VertexId, VertexId)>>,
    /// PM durability log: edges are appended as (src, dst) pairs.
    log_head: Mutex<Option<PmemOffset>>,
    flush_interval: usize,
    durable_edges: AtomicUsize,
    num_edges: AtomicUsize,
}

impl GraphOneFd {
    /// Create an empty instance flushing every `flush_interval` insertions.
    pub fn new(pool: Arc<PmemPool>, num_vertices: usize, flush_interval: usize) -> Self {
        GraphOneFd {
            pool,
            adjacency: RwLock::new(vec![Vec::new(); num_vertices]),
            pending: Mutex::new(Vec::new()),
            log_head: Mutex::new(None),
            flush_interval: flush_interval.max(1),
            durable_edges: AtomicUsize::new(0),
            num_edges: AtomicUsize::new(0),
        }
    }

    /// Number of edges currently durable on PM.
    pub fn durable_edges(&self) -> usize {
        self.durable_edges.load(Ordering::Relaxed)
    }

    fn ensure(&self, v: VertexId) {
        let needed = v as usize + 1;
        if self.adjacency.read().len() >= needed {
            return;
        }
        self.adjacency.write().resize(needed, Vec::new());
    }

    fn flush_pending(&self) -> GraphResult<()> {
        let mut pending = self.pending.lock();
        if pending.is_empty() {
            return Ok(());
        }
        let map_err = |e: pmem::PmemError| GraphError::OutOfSpace(e.to_string());
        let bytes = pending.len() * 16;
        let region = self.pool.alloc(bytes, 64).map_err(map_err)?;
        let mut buf = Vec::with_capacity(bytes);
        for &(s, d) in pending.iter() {
            buf.extend_from_slice(&s.to_le_bytes());
            buf.extend_from_slice(&d.to_le_bytes());
        }
        self.pool.write(region, &buf);
        self.pool.persist(region, bytes);
        let _ = self.log_head.lock().insert(region);
        self.durable_edges
            .fetch_add(pending.len(), Ordering::Relaxed);
        pending.clear();
        Ok(())
    }
}

impl DynamicGraph for GraphOneFd {
    fn insert_vertex(&self, v: VertexId) -> GraphResult<()> {
        self.ensure(v);
        Ok(())
    }

    fn insert_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<()> {
        self.ensure(src.max(dst));
        // GraphOne shards its adjacency updates finer than this; a single
        // write lock keeps the implementation simple, and the cost profile —
        // pure DRAM appends between durability flushes — is unchanged.
        self.adjacency.write()[src as usize].push(dst);
        let should_flush = {
            let mut pending = self.pending.lock();
            pending.push((src, dst));
            pending.len() >= self.flush_interval
        };
        self.num_edges.fetch_add(1, Ordering::Relaxed);
        if should_flush {
            self.flush_pending()?;
        }
        Ok(())
    }

    fn num_vertices(&self) -> usize {
        self.adjacency.read().len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges.load(Ordering::Relaxed)
    }

    fn flush(&self) {
        let _ = self.flush_pending();
    }

    fn system_name(&self) -> &'static str {
        "GraphOne-FD"
    }
}

/// Analysis view: a degree snapshot over the DRAM adjacency list.
pub struct GraphOneView<'a> {
    graph: &'a GraphOneFd,
    degrees: Vec<usize>,
    num_edges: usize,
}

impl GraphView for GraphOneView<'_> {
    fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degrees.get(v as usize).copied().unwrap_or(0)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        let take = self.degree(v);
        if take == 0 {
            return;
        }
        let adj = self.graph.adjacency.read();
        for &d in adj[v as usize].iter().take(take) {
            f(d);
        }
    }
}

impl SnapshotSource for GraphOneFd {
    type View<'a> = GraphOneView<'a>;

    fn consistent_view(&self) -> GraphOneView<'_> {
        let adj = self.adjacency.read();
        let degrees: Vec<usize> = adj.iter().map(Vec::len).collect();
        let num_edges = degrees.iter().sum();
        GraphOneView {
            graph: self,
            degrees,
            num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgap::ReferenceGraph;
    use pmem::PmemConfig;

    fn graphone(interval: usize) -> GraphOneFd {
        GraphOneFd::new(
            Arc::new(PmemPool::new(PmemConfig::small_test())),
            16,
            interval,
        )
    }

    #[test]
    fn inserts_are_immediately_analysable() {
        let g = graphone(1 << 16);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(0, 2).unwrap();
        let view = g.consistent_view();
        assert_eq!(view.neighbors(0), vec![1, 2]);
        // ... but not yet durable.
        assert_eq!(g.durable_edges(), 0);
    }

    #[test]
    fn durability_lags_by_the_flush_interval() {
        let g = graphone(10);
        for i in 0..25u64 {
            g.insert_edge(i % 16, (i + 1) % 16).unwrap();
        }
        assert_eq!(g.durable_edges(), 20, "two full batches flushed");
        g.flush();
        assert_eq!(g.durable_edges(), 25);
    }

    #[test]
    fn flush_writes_to_pm() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let g = GraphOneFd::new(Arc::clone(&pool), 8, 4);
        let before = pool.stats_snapshot();
        for i in 0..4u64 {
            g.insert_edge(i, i).unwrap();
        }
        let d = pool.stats_snapshot().delta_since(&before);
        assert!(d.logical_bytes_written >= 64, "4 edges x 16 bytes");
        assert!(d.flushes > 0);
    }

    #[test]
    fn snapshot_isolation_on_degrees() {
        let g = graphone(100);
        g.insert_edge(5, 6).unwrap();
        let view = g.consistent_view();
        g.insert_edge(5, 7).unwrap();
        assert_eq!(view.neighbors(5), vec![6]);
        assert_eq!(g.consistent_view().neighbors(5), vec![6, 7]);
    }

    #[test]
    fn matches_reference() {
        let g = graphone(64);
        let mut reference = ReferenceGraph::new(16);
        let mut x = 3u64;
        for _ in 0..1500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (s, d) = ((x >> 30) % 16, (x >> 10) % 16);
            g.insert_edge(s, d).unwrap();
            reference.add_edge(s, d);
        }
        let view = g.consistent_view();
        for v in 0..16u64 {
            assert_eq!(view.neighbors(v), reference.neighbors(v));
        }
        assert_eq!(DynamicGraph::num_edges(&g), 1500);
    }

    #[test]
    fn vertex_growth() {
        let g = graphone(8);
        g.insert_edge(30, 2).unwrap();
        assert_eq!(DynamicGraph::num_vertices(&g), 31);
        assert_eq!(g.consistent_view().degree(30), 1);
    }
}
