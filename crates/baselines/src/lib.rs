//! # baselines — the comparison systems of the DGAP evaluation
//!
//! Five systems, re-implemented *in spirit* on top of the same emulated
//! persistent-memory substrate (`pmem`) so that the comparison measures
//! storage-architecture decisions rather than incidental implementation
//! differences:
//!
//! * [`PmCsr`] — a static Compressed Sparse Row image on PM (ported GAPBS
//!   CSR).  It cannot be updated; it is the *analysis* lower bound every
//!   figure normalises against.
//! * [`Bal`] — a Blocked Adjacency List on PM: per-vertex block chains with
//!   vertex-grained locking and transactional block linkage.  Excellent at
//!   appends, poor at whole-graph analysis (pointer chasing).
//! * [`Llama`] — a LLAMA-like multi-versioned CSR: updates are buffered in
//!   DRAM and folded into immutable per-batch snapshots on PM; analysis
//!   reads the last closed snapshot (and therefore misses the newest
//!   edges, as the paper discusses).
//! * [`GraphOneFd`] — a GraphOne-like hybrid: a DRAM edge list plus DRAM
//!   adjacency list, with the edge list flushed to a PM durability log
//!   every 2¹⁶ insertions ("GraphOne-FD" in the paper).
//! * [`XpGraph`] — an XPGraph-like PM-native store: a PM circular edge log
//!   absorbs insertions, and a background-style archiving step moves them
//!   into per-vertex PM adjacency blocks (with a DRAM mirror used for
//!   analysis) once the archiving threshold is reached.
//!
//! Every system implements [`dgap::DynamicGraph`] for updates and exposes a
//! `consistent_view()` snapshot implementing [`dgap::GraphView`], so the
//! `analytics` kernels and the `bench` harness treat all of them — and DGAP
//! itself — uniformly.

#![warn(missing_docs)]

pub mod bal;
pub mod csr;
pub mod graphone;
pub mod llama;
pub mod xpgraph;

pub use bal::Bal;
pub use csr::PmCsr;
pub use graphone::GraphOneFd;
pub use llama::Llama;
pub use xpgraph::XpGraph;

/// The systems compared in the paper's figures, as a uniform enum used by
/// the benchmark harness for iteration and labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// DGAP itself (implemented in the `dgap` crate).
    Dgap,
    /// Blocked Adjacency List baseline.
    Bal,
    /// LLAMA-like multi-versioned CSR baseline.
    Llama,
    /// GraphOne-FD baseline.
    GraphOneFd,
    /// XPGraph-like baseline.
    XpGraph,
    /// Static CSR (analysis-only reference).
    Csr,
}

impl SystemKind {
    /// All dynamic systems in the order the paper's figures list them.
    pub fn dynamic_systems() -> [SystemKind; 5] {
        [
            SystemKind::Dgap,
            SystemKind::Bal,
            SystemKind::Llama,
            SystemKind::GraphOneFd,
            SystemKind::XpGraph,
        ]
    }

    /// Label used in benchmark output (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Dgap => "DGAP",
            SystemKind::Bal => "BAL",
            SystemKind::Llama => "LLAMA",
            SystemKind::GraphOneFd => "GraphOne-FD",
            SystemKind::XpGraph => "XPGraph",
            SystemKind::Csr => "CSR",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(SystemKind::Dgap.label(), "DGAP");
        assert_eq!(SystemKind::GraphOneFd.label(), "GraphOne-FD");
        assert_eq!(SystemKind::dynamic_systems().len(), 5);
        assert_eq!(SystemKind::Csr.label(), "CSR");
    }
}
