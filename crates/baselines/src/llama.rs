//! LLAMA-like multi-versioned CSR.
//!
//! LLAMA batches updates in a DRAM delta map and periodically closes an
//! immutable *snapshot*: the delta's adjacency lists are written out as
//! compact per-vertex edge runs, and analysis reads the union of all closed
//! snapshots.  Two consequences the paper highlights are reproduced here:
//!
//! * updates are cheap while a batch is open (pure DRAM) and are paid as a
//!   bulk sequential PM write when the snapshot closes;
//! * analysis only sees *closed* snapshots, so it can lag behind the latest
//!   graph by up to one batch (the paper closes a snapshot per 1 % of the
//!   graph), and every vertex read walks one indirection per snapshot that
//!   touched the vertex — the multi-version overhead that makes LLAMA the
//!   slowest analysis system in Figs. 7–8.

use dgap::{DynamicGraph, GraphError, GraphResult, GraphView, SnapshotSource, VertexId};
use parking_lot::{Mutex, RwLock};
use pmem::{PmemOffset, PmemPool};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One closed snapshot: for every vertex that gained edges in its batch, the
/// PM offset and length of its edge run.
#[derive(Debug, Default)]
struct Snapshot {
    runs: HashMap<VertexId, (PmemOffset, u32)>,
}

#[derive(Debug, Default)]
struct DeltaBatch {
    adjacency: HashMap<VertexId, Vec<VertexId>>,
    edges: usize,
}

/// The LLAMA-like baseline.
pub struct Llama {
    pool: Arc<PmemPool>,
    /// Closed, immutable snapshots (oldest first).
    snapshots: RwLock<Vec<Arc<Snapshot>>>,
    /// The open batch accumulating in DRAM.
    delta: Mutex<DeltaBatch>,
    /// Edges per batch before a snapshot is closed.
    batch_size: usize,
    num_vertices: AtomicUsize,
    num_edges: AtomicUsize,
}

impl Llama {
    /// Create an empty instance closing a snapshot every `batch_size` edges
    /// (the paper uses 1 % of the dataset).
    pub fn new(pool: Arc<PmemPool>, num_vertices: usize, batch_size: usize) -> Self {
        Llama {
            pool,
            snapshots: RwLock::new(Vec::new()),
            delta: Mutex::new(DeltaBatch::default()),
            batch_size: batch_size.max(1),
            num_vertices: AtomicUsize::new(num_vertices),
            num_edges: AtomicUsize::new(0),
        }
    }

    /// Number of snapshots closed so far.
    pub fn num_snapshots(&self) -> usize {
        self.snapshots.read().len()
    }

    /// Close the current batch: write every touched vertex's new edges as a
    /// contiguous PM run and publish the snapshot for analysis.
    pub fn close_snapshot(&self) -> GraphResult<()> {
        let mut delta = self.delta.lock();
        if delta.edges == 0 {
            return Ok(());
        }
        let map_err = |e: pmem::PmemError| GraphError::OutOfSpace(e.to_string());
        let mut snapshot = Snapshot::default();
        // Deterministic order keeps PM layouts reproducible.
        let mut vertices: Vec<_> = delta.adjacency.keys().copied().collect();
        vertices.sort_unstable();
        let total: usize = delta.adjacency.values().map(Vec::len).sum();
        let region = self.pool.alloc(total.max(1) * 8, 64).map_err(map_err)?;
        let mut cursor = region;
        for v in vertices {
            let dests = &delta.adjacency[&v];
            self.pool.write_u64_slice(cursor, dests);
            snapshot.runs.insert(v, (cursor, dests.len() as u32));
            cursor += (dests.len() * 8) as u64;
        }
        self.pool.persist(region, total.max(1) * 8);
        self.snapshots.write().push(Arc::new(snapshot));
        *delta = DeltaBatch::default();
        Ok(())
    }
}

impl DynamicGraph for Llama {
    fn insert_vertex(&self, v: VertexId) -> GraphResult<()> {
        self.num_vertices
            .fetch_max(v as usize + 1, Ordering::AcqRel);
        Ok(())
    }

    fn insert_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<()> {
        self.num_vertices
            .fetch_max(src.max(dst) as usize + 1, Ordering::AcqRel);
        let should_close = {
            let mut delta = self.delta.lock();
            delta.adjacency.entry(src).or_default().push(dst);
            delta.edges += 1;
            delta.edges >= self.batch_size
        };
        self.num_edges.fetch_add(1, Ordering::Relaxed);
        if should_close {
            self.close_snapshot()?;
        }
        Ok(())
    }

    fn num_vertices(&self) -> usize {
        self.num_vertices.load(Ordering::Acquire)
    }

    fn num_edges(&self) -> usize {
        self.num_edges.load(Ordering::Relaxed)
    }

    fn flush(&self) {
        // Durability in LLAMA means closing the open batch.
        let _ = self.close_snapshot();
    }

    fn system_name(&self) -> &'static str {
        "LLAMA"
    }
}

/// Analysis view over the snapshots that were closed when it was created.
pub struct LlamaView {
    pool: Arc<PmemPool>,
    snapshots: Vec<Arc<Snapshot>>,
    degrees: Vec<usize>,
    num_edges: usize,
}

impl GraphView for LlamaView {
    fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degrees.get(v as usize).copied().unwrap_or(0)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for snap in &self.snapshots {
            if let Some(&(off, len)) = snap.runs.get(&v) {
                let mut buf = vec![0u64; len as usize];
                self.pool.read_u64_slice(off, &mut buf);
                for d in buf {
                    f(d);
                }
            }
        }
    }
}

impl SnapshotSource for Llama {
    type View<'a> = LlamaView;

    fn consistent_view(&self) -> LlamaView {
        let snapshots: Vec<Arc<Snapshot>> = self.snapshots.read().clone();
        let nv = self.num_vertices.load(Ordering::Acquire);
        let mut degrees = vec![0usize; nv];
        let mut num_edges = 0usize;
        for snap in &snapshots {
            for (&v, &(_, len)) in &snap.runs {
                if (v as usize) < degrees.len() {
                    degrees[v as usize] += len as usize;
                }
                num_edges += len as usize;
            }
        }
        LlamaView {
            pool: Arc::clone(&self.pool),
            snapshots,
            degrees,
            num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgap::ReferenceGraph;
    use pmem::PmemConfig;

    fn llama(batch: usize) -> Llama {
        Llama::new(Arc::new(PmemPool::new(PmemConfig::small_test())), 16, batch)
    }

    #[test]
    fn closed_snapshots_are_visible_open_batch_is_not() {
        let g = llama(4);
        for d in [1u64, 2, 3, 4] {
            g.insert_edge(0, d).unwrap(); // batch closes at the 4th edge
        }
        g.insert_edge(0, 5).unwrap(); // sits in the open batch
        let view = g.consistent_view();
        assert_eq!(view.neighbors(0), vec![1, 2, 3, 4]);
        assert_eq!(view.degree(0), 4);
        assert_eq!(DynamicGraph::num_edges(&g), 5, "updates are all accepted");
        assert_eq!(g.num_snapshots(), 1);
    }

    #[test]
    fn flush_closes_the_open_batch() {
        let g = llama(1000);
        g.insert_edge(1, 2).unwrap();
        assert_eq!(g.consistent_view().degree(1), 0);
        g.flush();
        assert_eq!(g.consistent_view().neighbors(1), vec![2]);
    }

    #[test]
    fn multiple_snapshots_union_in_order() {
        let g = llama(2);
        for d in [10u64, 11, 12, 13, 14, 15] {
            g.insert_edge(3, d).unwrap();
        }
        assert_eq!(g.num_snapshots(), 3);
        let view = g.consistent_view();
        assert_eq!(view.neighbors(3), vec![10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn matches_reference_after_flush() {
        let g = llama(64);
        let mut reference = ReferenceGraph::new(16);
        let mut x = 99u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (s, d) = ((x >> 30) % 16, (x >> 10) % 16);
            g.insert_edge(s, d).unwrap();
            reference.add_edge(s, d);
        }
        g.flush();
        let view = g.consistent_view();
        for v in 0..16u64 {
            assert_eq!(view.neighbors(v), reference.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn snapshot_data_is_durable() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
        let g = Llama::new(Arc::clone(&pool), 4, 2);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(0, 2).unwrap(); // snapshot closes, data persisted
        let view = g.consistent_view();
        pool.simulate_crash();
        assert_eq!(view.neighbors(0), vec![1, 2]);
    }

    #[test]
    fn vertex_growth() {
        let g = llama(2);
        g.insert_edge(40, 41).unwrap();
        assert_eq!(DynamicGraph::num_vertices(&g), 42);
    }
}
