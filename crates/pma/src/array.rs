//! An in-DRAM reference implementation of the adaptive Packed Memory Array.
//!
//! This array is the executable specification the rest of the workspace is
//! tested against.  It is also used directly by the benchmark harness:
//!
//! * Fig. 1(a) measures the *write amplification* of naive PMA insertion —
//!   the number of slots physically moved per logical insertion — which this
//!   implementation counts exactly ([`PmaMoveStats`]).
//! * Fig. 1(b) compares inserting a graph into DRAM against persistent
//!   memory; the DRAM bar is this array.
//!
//! The element type is a bare `u64` key.  DGAP itself stores richer elements
//! (pivots and destination vertex ids) directly on the emulated persistent
//! memory and re-uses only the planning machinery ([`crate::tree`],
//! [`crate::redistribute`]); keeping the reference array simple makes it a
//! trustworthy oracle.

use crate::redistribute::{plan_even, Extent};
use crate::thresholds::DensityBounds;
use crate::tree::{DensityTree, SegmentGeometry};

/// Configuration of a [`PackedMemoryArray`].
#[derive(Debug, Clone, Copy)]
pub struct PmaConfig {
    /// Number of element slots per segment.
    pub segment_size: usize,
    /// Number of segments the array starts with (rounded up to a power of
    /// two).
    pub initial_segments: usize,
    /// Density thresholds.
    pub bounds: DensityBounds,
}

impl Default for PmaConfig {
    fn default() -> Self {
        PmaConfig {
            segment_size: 64,
            initial_segments: 4,
            bounds: DensityBounds::default(),
        }
    }
}

/// Counters describing how much data the array has physically moved.
///
/// `slots_shifted` counts slots moved by nearby shifts during ordinary
/// insertions — the quantity behind the write-amplification issue of
/// Fig. 1(a).  Rebalances and resizes are tracked separately because DGAP
/// addresses them with a different mechanism (the per-thread undo log).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmaMoveStats {
    /// Elements inserted so far.
    pub inserts: u64,
    /// Elements removed so far.
    pub deletes: u64,
    /// Slots moved by nearby shifts inside a segment.
    pub slots_shifted: u64,
    /// Slots moved while rebalancing windows.
    pub slots_rebalanced: u64,
    /// Slots moved while resizing (growing) the array.
    pub slots_resized: u64,
    /// Number of window rebalances performed.
    pub rebalances: u64,
    /// Number of array resizes performed.
    pub resizes: u64,
}

impl PmaMoveStats {
    /// Write amplification of ordinary insertions: slots physically written
    /// (the inserted slot plus every shifted slot) divided by slots logically
    /// inserted.  Matches the metric of Fig. 1(a) when multiplied by the
    /// element size.
    pub fn shift_write_amplification(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            (self.inserts + self.slots_shifted) as f64 / self.inserts as f64
        }
    }

    /// Write amplification including rebalancing and resizing traffic.
    pub fn total_write_amplification(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            (self.inserts + self.slots_shifted + self.slots_rebalanced + self.slots_resized) as f64
                / self.inserts as f64
        }
    }
}

/// What happened while serving one insertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Slots shifted to open a gap at the insertion point.
    pub shifted: usize,
    /// `true` if a window rebalance ran.
    pub rebalanced: bool,
    /// `true` if the whole array was resized (doubled).
    pub resized: bool,
}

/// An adaptive Packed Memory Array over `u64` keys (duplicates allowed).
#[derive(Debug, Clone)]
pub struct PackedMemoryArray {
    slots: Vec<Option<u64>>,
    tree: DensityTree,
    config: PmaConfig,
    len: usize,
    stats: PmaMoveStats,
}

impl PackedMemoryArray {
    /// Create an empty array.
    pub fn new(config: PmaConfig) -> Self {
        let geom = SegmentGeometry::new(config.segment_size, config.initial_segments);
        PackedMemoryArray {
            slots: vec![None; geom.capacity()],
            tree: DensityTree::new(geom, config.bounds),
            config,
            len: 0,
            stats: PmaMoveStats::default(),
        }
    }

    /// Create an empty array with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(PmaConfig::default())
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of slots (occupied + gaps).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Overall density (`len / capacity`).
    pub fn density(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Movement counters accumulated so far.
    pub fn move_stats(&self) -> PmaMoveStats {
        self.stats
    }

    /// Reset the movement counters (benchmarks call this after a warm-up
    /// phase, mirroring the paper's 10 % warm-up insertions).
    pub fn reset_move_stats(&mut self) {
        self.stats = PmaMoveStats::default();
    }

    /// The segment geometry currently in force (it changes on resize).
    pub fn geometry(&self) -> SegmentGeometry {
        self.tree.geometry()
    }

    /// Iterate the stored keys in non-decreasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        let seg = self.target_segment(key);
        let range = self.tree.geometry().segment_slots(seg);
        self.slots[range].iter().flatten().any(|&k| k == key)
    }

    /// Insert `key`, keeping the array sorted.  Returns what physical work
    /// was required.
    pub fn insert(&mut self, key: u64) -> InsertOutcome {
        let mut outcome = InsertOutcome::default();
        // Ensure the target segment has room for one more element.  A single
        // rebalance normally suffices; if the recomputed target is somehow
        // still full (e.g. the window was already at its density limit), fall
        // back to resizing, which always creates room.
        let mut seg = self.target_segment(key);
        if self.tree.occupancy(seg) == self.config.segment_size {
            match self.tree.find_rebalance_window(seg, 1) {
                Some(w) if w.num_segments > 1 => {
                    self.rebalance(w.first_segment, w.num_segments);
                    outcome.rebalanced = true;
                }
                _ => {
                    self.resize();
                    outcome.resized = true;
                }
            }
            seg = self.target_segment(key);
            if self.tree.occupancy(seg) == self.config.segment_size {
                self.resize();
                outcome.resized = true;
                seg = self.target_segment(key);
            }
        }
        outcome.shifted = self.insert_into_segment(seg, key);
        self.tree.add(seg, 1);
        self.len += 1;
        self.stats.inserts += 1;
        self.stats.slots_shifted += outcome.shifted as u64;

        // Post-insertion density maintenance, as in the adaptive PMA: if the
        // segment is now above its leaf threshold, spread the density over a
        // wider window (or grow the array).
        if self.tree.segment_overflowing(seg) {
            match self.tree.find_rebalance_window(seg, 0) {
                Some(w) if w.num_segments > 1 => {
                    self.rebalance(w.first_segment, w.num_segments);
                    outcome.rebalanced = true;
                }
                Some(_) => {}
                None => {
                    self.resize();
                    outcome.resized = true;
                }
            }
        }
        outcome
    }

    /// Remove one occurrence of `key`.  Returns `true` if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        let seg = self.target_segment(key);
        let range = self.tree.geometry().segment_slots(seg);
        let mut found = None;
        for i in range {
            if self.slots[i] == Some(key) {
                found = Some(i);
                break;
            }
        }
        let Some(i) = found else { return false };
        self.slots[i] = None;
        self.tree.sub(seg, 1);
        self.len -= 1;
        self.stats.deletes += 1;
        // Underflow maintenance: if the segment drained too far, pull the
        // enclosing window back into balance.
        let geom = self.tree.geometry();
        let (rho_leaf, _) = crate::thresholds::level_bounds(&self.config.bounds, 0, geom.height());
        if self.len > 0 && self.tree.segment_density(seg) < rho_leaf {
            if let Some(w) = self.tree.find_rebalance_window_after_delete(seg) {
                if w.num_segments > 1 {
                    self.rebalance(w.first_segment, w.num_segments);
                }
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Segment whose key range should contain `key`: the last segment whose
    /// smallest element is `<= key` (or the first non-empty segment if the
    /// key precedes everything).
    fn target_segment(&self, key: u64) -> usize {
        let geom = self.tree.geometry();
        let mut candidate = 0usize;
        let mut seen_any = false;
        for seg in 0..geom.num_segments {
            let min = self.segment_min(seg);
            match min {
                Some(m) if m <= key => {
                    candidate = seg;
                    seen_any = true;
                }
                Some(_) => {
                    if !seen_any {
                        // Key precedes every stored element: it belongs in
                        // the first non-empty segment.
                        return seg;
                    }
                    break;
                }
                None => {}
            }
        }
        candidate
    }

    fn segment_min(&self, seg: usize) -> Option<u64> {
        let range = self.tree.geometry().segment_slots(seg);
        self.slots[range].iter().flatten().copied().next()
    }

    /// Insert `key` into `seg`, shifting occupied slots within the segment to
    /// open a gap at the sorted position.  Returns the number of slots
    /// shifted.  The segment is guaranteed (by the caller) to have a gap.
    fn insert_into_segment(&mut self, seg: usize, key: u64) -> usize {
        let range = self.tree.geometry().segment_slots(seg);
        let start = range.start;
        let end = range.end;

        // Position of the first element greater than `key` (insertion point).
        let mut pos = end;
        for i in range.clone() {
            if let Some(k) = self.slots[i] {
                if k > key {
                    pos = i;
                    break;
                }
            }
        }
        if pos == end && self.slots[end - 1].is_none() {
            // Key goes after every existing element of the segment and the
            // segment's tail has room: place it right after the last
            // occupied slot, no shifting needed.
            let last_occupied = (start..end).rev().find(|&i| self.slots[i].is_some());
            let target = last_occupied.map_or(start, |i| i + 1);
            self.slots[target] = Some(key);
            return 0;
        }
        // Otherwise a shift is required.  When `pos == end` (key larger than
        // everything but the tail slot is occupied) the right-search below
        // finds nothing and we fall through to the left shift, which opens a
        // slot just before the end of the segment.
        // Try to find a free slot to the right of `pos` (shift right), else
        // to the left (shift left).
        if let Some(free) = (pos..end).find(|&i| self.slots[i].is_none()) {
            let shifted = free - pos;
            for i in (pos..free).rev() {
                self.slots[i + 1] = self.slots[i];
            }
            self.slots[pos] = Some(key);
            shifted
        } else {
            let free = (start..pos)
                .rev()
                .find(|&i| self.slots[i].is_none())
                .unwrap_or_else(|| {
                    panic!(
                        "segment {seg} must have a free slot (occupancy {} of {}, pos {pos}, slots {:?})",
                        self.tree.occupancy(seg),
                        self.config.segment_size,
                        &self.slots[start..end]
                    )
                });
            // Shift everything in (free, pos) one slot left; key lands at pos-1.
            let shifted = pos - free - 1;
            for i in free..pos - 1 {
                self.slots[i] = self.slots[i + 1];
            }
            self.slots[pos - 1] = Some(key);
            shifted
        }
    }

    /// Spread the elements of the window starting at `first_seg` spanning
    /// `num_segs` segments evenly across the window.
    fn rebalance(&mut self, first_seg: usize, num_segs: usize) {
        let geom = self.tree.geometry();
        let start = first_seg * geom.segment_size;
        let end = start + num_segs * geom.segment_size;
        let elements: Vec<u64> = self.slots[start..end].iter().flatten().copied().collect();
        let window_capacity = end - start;
        self.slots[start..end].fill(None);

        // Each element is its own extent; plan_even spaces them out with the
        // gaps divided evenly between them.
        let extents: Vec<Extent> = elements
            .iter()
            .map(|&k| Extent { id: k, count: 1 })
            .collect();
        let placements = plan_even(&extents, window_capacity);
        for p in &placements {
            self.slots[start + p.start] = Some(p.id);
        }
        // Refresh occupancy counters for the affected segments.
        for seg in first_seg..first_seg + num_segs {
            let r = geom.segment_slots(seg);
            let occ = self.slots[r].iter().flatten().count();
            self.tree.set_occupancy(seg, occ);
        }
        self.stats.rebalances += 1;
        self.stats.slots_rebalanced += elements.len() as u64;
    }

    /// Double the array and spread every element evenly across it.
    fn resize(&mut self) {
        let elements: Vec<u64> = self.iter().collect();
        let new_tree = self.tree.grow();
        let new_geom = new_tree.geometry();
        self.tree = new_tree;
        self.slots = vec![None; new_geom.capacity()];
        let extents: Vec<Extent> = elements
            .iter()
            .map(|&k| Extent { id: k, count: 1 })
            .collect();
        let placements = plan_even(&extents, new_geom.capacity());
        for p in &placements {
            self.slots[p.start] = Some(p.id);
        }
        for seg in 0..new_geom.num_segments {
            let r = new_geom.segment_slots(seg);
            let occ = self.slots[r].iter().flatten().count();
            self.tree.set_occupancy(seg, occ);
        }
        self.stats.resizes += 1;
        self.stats.slots_resized += elements.len() as u64;
    }

    /// Validate internal invariants; used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        // Order.
        let elems: Vec<u64> = self.iter().collect();
        assert!(
            elems.windows(2).all(|w| w[0] <= w[1]),
            "elements must be sorted"
        );
        assert_eq!(elems.len(), self.len, "len must match stored elements");
        // Occupancy counters.
        let geom = self.tree.geometry();
        for seg in 0..geom.num_segments {
            let r = geom.segment_slots(seg);
            let occ = self.slots[r].iter().flatten().count();
            assert_eq!(occ, self.tree.occupancy(seg), "segment {seg} occupancy");
        }
        assert_eq!(self.capacity(), geom.capacity());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PackedMemoryArray {
        PackedMemoryArray::new(PmaConfig {
            segment_size: 8,
            initial_segments: 2,
            bounds: DensityBounds::default(),
        })
    }

    #[test]
    fn empty_array_properties() {
        let a = small();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.capacity(), 16);
        assert!(!a.contains(5));
        assert_eq!(a.iter().count(), 0);
    }

    #[test]
    fn sorted_after_random_inserts() {
        let mut a = small();
        for k in [50u64, 10, 90, 30, 70, 20, 80, 60, 40, 100, 5, 95] {
            a.insert(k);
            a.check_invariants();
        }
        let v: Vec<u64> = a.iter().collect();
        assert_eq!(v, vec![5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 100]);
        assert!(a.contains(70));
        assert!(!a.contains(71));
    }

    #[test]
    fn duplicates_are_allowed() {
        let mut a = small();
        for _ in 0..5 {
            a.insert(42);
        }
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|k| k == 42));
        a.check_invariants();
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut a = small();
        for k in 0..200u64 {
            a.insert(k);
            a.check_invariants();
        }
        assert_eq!(a.len(), 200);
        assert!(a.capacity() >= 200);
        assert!(a.move_stats().resizes >= 1);
        let v: Vec<u64> = a.iter().collect();
        assert_eq!(v, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn descending_inserts_stay_sorted() {
        let mut a = small();
        for k in (0..100u64).rev() {
            a.insert(k);
        }
        a.check_invariants();
        let v: Vec<u64> = a.iter().collect();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_inserts_incur_shifting_work() {
        let cfg = PmaConfig {
            segment_size: 32,
            initial_segments: 4,
            bounds: DensityBounds::default(),
        };
        let mut rnd = PackedMemoryArray::new(cfg);
        // A deterministic pseudo-random key stream.
        let mut k = 1u64;
        for _ in 0..2000 {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rnd.insert(k >> 40);
        }
        rnd.check_invariants();
        let s = rnd.move_stats();
        assert_eq!(s.inserts, 2000);
        assert!(
            s.shift_write_amplification() > 1.0,
            "random insertion order must shift at least some neighbours: {s:?}"
        );
        assert!(s.rebalances + s.resizes > 0);
    }

    #[test]
    fn write_amplification_grows_with_density() {
        let mut a = PackedMemoryArray::new(PmaConfig {
            segment_size: 128,
            initial_segments: 8,
            bounds: DensityBounds::default(),
        });
        let mut k = 7u64;
        for _ in 0..5000 {
            k = k.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            a.insert(k % 100_000);
        }
        let s = a.move_stats();
        assert!(s.shift_write_amplification() > 1.0);
        assert!(s.total_write_amplification() >= s.shift_write_amplification());
        assert!(s.rebalances > 0);
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut a = small();
        for k in [1u64, 2, 3, 4, 5] {
            a.insert(k);
        }
        assert!(a.remove(3));
        assert!(!a.remove(3));
        assert!(!a.remove(99));
        assert_eq!(a.len(), 4);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 4, 5]);
        a.check_invariants();
    }

    #[test]
    fn remove_everything_then_reinsert() {
        let mut a = small();
        for k in 0..50u64 {
            a.insert(k);
        }
        for k in 0..50u64 {
            assert!(a.remove(k), "key {k} should be removable");
        }
        assert!(a.is_empty());
        a.check_invariants();
        for k in 0..50u64 {
            a.insert(k);
        }
        assert_eq!(a.len(), 50);
        a.check_invariants();
    }

    #[test]
    fn reset_move_stats_clears_counters() {
        let mut a = small();
        for k in 0..30u64 {
            a.insert(k);
        }
        assert!(a.move_stats().inserts > 0);
        a.reset_move_stats();
        assert_eq!(a.move_stats(), PmaMoveStats::default());
    }

    #[test]
    fn insert_outcome_reports_work() {
        let mut a = PackedMemoryArray::new(PmaConfig {
            segment_size: 4,
            initial_segments: 2,
            bounds: DensityBounds::default(),
        });
        // Fill until something must give: at least one outcome reports a
        // rebalance or resize.
        let mut any_rebalance_or_resize = false;
        for k in 0..32u64 {
            let o = a.insert(k * 2);
            any_rebalance_or_resize |= o.rebalanced || o.resized;
        }
        assert!(any_rebalance_or_resize);
        a.check_invariants();
    }

    #[test]
    fn shift_write_amplification_zero_without_inserts() {
        assert_eq!(PmaMoveStats::default().shift_write_amplification(), 0.0);
        assert_eq!(PmaMoveStats::default().total_write_amplification(), 0.0);
    }

    /// Property-based oracle tests.  The `proptest` crate is not part of
    /// the offline workspace; enable the `proptest-tests` feature (and add
    /// the `proptest` dev-dependency) to run them.
    #[cfg(feature = "proptest-tests")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn matches_sorted_vector_oracle(keys in proptest::collection::vec(0u64..10_000, 1..400)) {
                let mut a = PackedMemoryArray::new(PmaConfig {
                    segment_size: 16,
                    initial_segments: 2,
                    bounds: DensityBounds::default(),
                });
                let mut oracle = Vec::new();
                for &k in &keys {
                    a.insert(k);
                    oracle.push(k);
                }
                oracle.sort_unstable();
                prop_assert_eq!(a.iter().collect::<Vec<_>>(), oracle);
                a.check_invariants();
            }

            #[test]
            fn interleaved_insert_delete_matches_multiset(ops in proptest::collection::vec((any::<bool>(), 0u64..64), 1..300)) {
                let mut a = PackedMemoryArray::new(PmaConfig {
                    segment_size: 8,
                    initial_segments: 2,
                    bounds: DensityBounds::default(),
                });
                let mut oracle: Vec<u64> = Vec::new();
                for &(is_insert, k) in &ops {
                    if is_insert {
                        a.insert(k);
                        oracle.push(k);
                        oracle.sort_unstable();
                    } else {
                        let expected = oracle.iter().position(|&x| x == k);
                        let removed = a.remove(k);
                        prop_assert_eq!(removed, expected.is_some());
                        if let Some(i) = expected {
                            oracle.remove(i);
                        }
                    }
                }
                prop_assert_eq!(a.iter().collect::<Vec<_>>(), oracle);
                a.check_invariants();
            }

            #[test]
            fn density_respects_root_bound_after_resize(keys in proptest::collection::vec(0u64..100_000, 200..600)) {
                let mut a = PackedMemoryArray::with_defaults();
                for &k in &keys {
                    a.insert(k);
                }
                // The array may temporarily exceed tau_root between inserts,
                // but never past a full segment's worth.
                prop_assert!(a.density() <= 1.0);
                prop_assert!(a.capacity() >= a.len());
                a.check_invariants();
            }
        }
    }
}
