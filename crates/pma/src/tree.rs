//! The PMA tree: per-segment occupancy tracking and rebalance-window search.
//!
//! The tree is implicit: a window at level `l` is an aligned group of
//! `2^l` consecutive segments.  Only the per-segment occupancy counters are
//! stored; window occupancies are computed on demand from a prefix-sum-free
//! scan (windows are small — at most the whole array — and rebalancing is
//! rare, so the simple scan costs less than maintaining a Fenwick tree and
//! is what the DGAP prototype does too).
//!
//! DGAP keeps the `DensityTree` in DRAM (part of its *data placement*
//! design) because its counters are updated on every insertion; after a
//! crash it is rebuilt from the persistent edge array.

use crate::thresholds::{level_bounds, DensityBounds};

/// Shape of a segmented PMA: `num_segments` segments of `segment_size`
/// element slots each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentGeometry {
    /// Number of element slots in one segment.
    pub segment_size: usize,
    /// Number of segments.  Always a power of two so that windows at every
    /// tree level align exactly.
    pub num_segments: usize,
}

impl SegmentGeometry {
    /// Create a geometry, rounding `num_segments` up to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(segment_size: usize, num_segments: usize) -> Self {
        assert!(segment_size > 0, "segment_size must be positive");
        assert!(num_segments > 0, "num_segments must be positive");
        SegmentGeometry {
            segment_size,
            num_segments: num_segments.next_power_of_two(),
        }
    }

    /// Geometry able to hold at least `min_capacity` element slots using
    /// segments of `segment_size` slots.
    pub fn for_capacity(segment_size: usize, min_capacity: usize) -> Self {
        let segs = min_capacity.div_ceil(segment_size).max(1);
        SegmentGeometry::new(segment_size, segs)
    }

    /// Total number of element slots.
    pub fn capacity(&self) -> usize {
        self.segment_size * self.num_segments
    }

    /// Height of the PMA tree (`log2(num_segments)`).
    pub fn height(&self) -> u32 {
        self.num_segments.trailing_zeros()
    }

    /// Segment containing element slot `index`.
    pub fn segment_of(&self, index: usize) -> usize {
        index / self.segment_size
    }

    /// Range of element slots `[start, end)` covered by `segment`.
    pub fn segment_slots(&self, segment: usize) -> std::ops::Range<usize> {
        let start = segment * self.segment_size;
        start..start + self.segment_size
    }

    /// Geometry of the array after doubling the number of segments (the
    /// classic PMA resize step).
    pub fn doubled(&self) -> Self {
        SegmentGeometry {
            segment_size: self.segment_size,
            num_segments: self.num_segments * 2,
        }
    }
}

/// A window of segments selected for rebalancing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceWindow {
    /// First segment in the window (inclusive).
    pub first_segment: usize,
    /// Number of segments in the window (a power of two).
    pub num_segments: usize,
    /// Tree level of the window (0 = single segment).
    pub level: u32,
    /// Number of occupied element slots currently inside the window.
    pub occupied: usize,
    /// Total element slots in the window.
    pub capacity: usize,
}

impl RebalanceWindow {
    /// Range of segment indices `[first, first + num_segments)`.
    pub fn segments(&self) -> std::ops::Range<usize> {
        self.first_segment..self.first_segment + self.num_segments
    }

    /// Density of the window (occupied / capacity).
    pub fn density(&self) -> f64 {
        self.occupied as f64 / self.capacity as f64
    }
}

/// DRAM-side density tracking for a segmented PMA.
#[derive(Debug, Clone)]
pub struct DensityTree {
    geom: SegmentGeometry,
    bounds: DensityBounds,
    occupancy: Vec<usize>,
}

impl DensityTree {
    /// Create a tree with all segments empty.
    pub fn new(geom: SegmentGeometry, bounds: DensityBounds) -> Self {
        DensityTree {
            occupancy: vec![0; geom.num_segments],
            geom,
            bounds: bounds.validated(),
        }
    }

    /// The geometry this tree tracks.
    pub fn geometry(&self) -> SegmentGeometry {
        self.geom
    }

    /// The density bounds in force.
    pub fn bounds(&self) -> DensityBounds {
        self.bounds
    }

    /// Occupancy of one segment.
    pub fn occupancy(&self, segment: usize) -> usize {
        self.occupancy[segment]
    }

    /// Overwrite the occupancy of one segment (used when rebuilding the tree
    /// from persistent data after a crash, and after rebalances).
    ///
    /// The occupancy is a *logical* count and may exceed the segment's slot
    /// capacity: DGAP counts edges parked in a section's edge log towards
    /// that section's density (the paper's §3 "edges within the edge log
    /// also contribute to the density of the corresponding edge array
    /// section"), which is exactly what makes the section overflow and
    /// triggers the merge.
    pub fn set_occupancy(&mut self, segment: usize, occupied: usize) {
        self.occupancy[segment] = occupied;
    }

    /// Record `n` insertions into `segment`.
    pub fn add(&mut self, segment: usize, n: usize) {
        self.set_occupancy(segment, self.occupancy[segment] + n);
    }

    /// Record `n` removals from `segment`.
    pub fn sub(&mut self, segment: usize, n: usize) {
        assert!(
            self.occupancy[segment] >= n,
            "segment {segment} occupancy underflow"
        );
        self.occupancy[segment] -= n;
    }

    /// Total number of occupied slots across the whole array.
    pub fn total_occupied(&self) -> usize {
        self.occupancy.iter().sum()
    }

    /// Density of the whole array.
    pub fn root_density(&self) -> f64 {
        self.total_occupied() as f64 / self.geom.capacity() as f64
    }

    /// Density of one segment.
    pub fn segment_density(&self, segment: usize) -> f64 {
        self.occupancy[segment] as f64 / self.geom.segment_size as f64
    }

    /// `true` when a segment is above its leaf upper threshold and a
    /// rebalance (or resize) must be considered before inserting more.
    pub fn segment_overflowing(&self, segment: usize) -> bool {
        let (_, tau) = level_bounds(&self.bounds, 0, self.geom.height());
        self.segment_density(segment) > tau
    }

    /// `true` when the whole array is too dense and must be resized.
    pub fn needs_resize(&self) -> bool {
        self.root_density() > self.bounds.tau_root
    }

    fn window(&self, first: usize, count: usize, level: u32) -> RebalanceWindow {
        let occupied = self.occupancy[first..first + count].iter().sum();
        RebalanceWindow {
            first_segment: first,
            num_segments: count,
            level,
            occupied,
            capacity: count * self.geom.segment_size,
        }
    }

    /// Find the smallest aligned window containing `segment` whose density
    /// (after hypothetically adding `extra` elements to `segment`) is within
    /// the upper bound for its level.  Returns `None` when even the root
    /// window is too dense — i.e. the array must be resized.
    ///
    /// This mirrors the PMA insertion path: when the target segment is over
    /// its leaf threshold, walk up the tree until a window can absorb the
    /// density, then rebalance that window.
    pub fn find_rebalance_window(&self, segment: usize, extra: usize) -> Option<RebalanceWindow> {
        let height = self.geom.height();
        let mut level = 0u32;
        loop {
            let count = 1usize << level;
            let first = (segment / count) * count;
            let w = self.window(first, count, level);
            let (_, tau) = level_bounds(&self.bounds, level, height);
            if (w.occupied + extra) as f64 / w.capacity as f64 <= tau {
                return Some(w);
            }
            if level == height {
                return None;
            }
            level += 1;
        }
    }

    /// Find the smallest aligned window containing `segment` whose density
    /// is at or above the lower bound for its level — the deletion analogue
    /// of [`DensityTree::find_rebalance_window`].  Returns `None` when even
    /// the root window is too sparse (callers may shrink or simply accept
    /// the sparsity, as DGAP does).
    pub fn find_rebalance_window_after_delete(&self, segment: usize) -> Option<RebalanceWindow> {
        let height = self.geom.height();
        let mut level = 0u32;
        loop {
            let count = 1usize << level;
            let first = (segment / count) * count;
            let w = self.window(first, count, level);
            let (rho, _) = level_bounds(&self.bounds, level, height);
            if w.density() >= rho {
                return Some(w);
            }
            if level == height {
                return None;
            }
            level += 1;
        }
    }

    /// Construct the tree for a doubled array, preserving the bounds.  The
    /// caller re-populates occupancies after physically moving the data.
    pub fn grow(&self) -> DensityTree {
        DensityTree::new(self.geom.doubled(), self.bounds)
    }

    /// Rebuild from an iterator of per-segment occupancies (crash recovery).
    pub fn rebuild_from(
        geom: SegmentGeometry,
        bounds: DensityBounds,
        occupancies: impl IntoIterator<Item = usize>,
    ) -> Self {
        let mut t = DensityTree::new(geom, bounds);
        for (i, occ) in occupancies.into_iter().enumerate() {
            t.set_occupancy(i, occ);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(segment_size: usize, num_segments: usize) -> DensityTree {
        DensityTree::new(
            SegmentGeometry::new(segment_size, num_segments),
            DensityBounds::default(),
        )
    }

    #[test]
    fn geometry_rounds_to_power_of_two() {
        let g = SegmentGeometry::new(32, 5);
        assert_eq!(g.num_segments, 8);
        assert_eq!(g.capacity(), 256);
        assert_eq!(g.height(), 3);
        assert_eq!(g.segment_of(63), 1);
        assert_eq!(g.segment_slots(2), 64..96);
        assert_eq!(g.doubled().num_segments, 16);
    }

    #[test]
    fn geometry_for_capacity_covers_request() {
        let g = SegmentGeometry::for_capacity(64, 1000);
        assert!(g.capacity() >= 1000);
        assert_eq!(g.segment_size, 64);
    }

    #[test]
    #[should_panic(expected = "segment_size must be positive")]
    fn zero_segment_size_rejected() {
        SegmentGeometry::new(0, 4);
    }

    #[test]
    fn occupancy_bookkeeping() {
        let mut t = tree(32, 4);
        t.add(0, 10);
        t.add(1, 5);
        t.sub(0, 3);
        assert_eq!(t.occupancy(0), 7);
        assert_eq!(t.occupancy(1), 5);
        assert_eq!(t.total_occupied(), 12);
        assert!((t.segment_density(0) - 7.0 / 32.0).abs() < 1e-12);
        assert!((t.root_density() - 12.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn occupancy_underflow_panics() {
        let mut t = tree(32, 4);
        t.sub(0, 1);
    }

    #[test]
    fn occupancy_may_logically_exceed_capacity() {
        // DGAP counts edge-log entries towards a section's density, so the
        // logical occupancy can exceed the slot count; that state must be
        // representable (it is what forces the merge).
        let mut t = tree(32, 4);
        t.add(0, 40);
        assert_eq!(t.occupancy(0), 40);
        assert!(t.segment_density(0) > 1.0);
        assert!(t.segment_overflowing(0));
    }

    #[test]
    fn single_segment_window_when_not_overflowing() {
        let mut t = tree(100, 8);
        t.add(3, 50); // 50 % < 92 % leaf threshold
        let w = t.find_rebalance_window(3, 1).unwrap();
        assert_eq!(w.first_segment, 3);
        assert_eq!(w.num_segments, 1);
        assert_eq!(w.level, 0);
    }

    #[test]
    fn window_grows_until_density_acceptable() {
        let mut t = tree(100, 8);
        // Segment 5 is completely full, its neighbours moderately full.
        t.add(5, 100);
        t.add(4, 60);
        t.add(6, 10);
        t.add(7, 10);
        let w = t.find_rebalance_window(5, 1).unwrap();
        assert!(w.num_segments > 1, "full segment needs a wider window");
        assert!(w.segments().contains(&5));
        // The window it picks must satisfy its own level bound.
        let (_, tau) = level_bounds(&t.bounds(), w.level, t.geometry().height());
        assert!((w.occupied + 1) as f64 / w.capacity as f64 <= tau);
    }

    #[test]
    fn windows_are_aligned() {
        let mut t = tree(10, 16);
        for s in 0..16 {
            t.add(s, 9); // 90 % everywhere
        }
        for seg in 0..16 {
            if let Some(w) = t.find_rebalance_window(seg, 1) {
                assert_eq!(w.first_segment % w.num_segments, 0, "window must align");
                assert!(w.segments().contains(&seg));
            }
        }
    }

    #[test]
    fn resize_needed_when_root_too_dense() {
        let mut t = tree(10, 4);
        for s in 0..4 {
            t.add(s, 9);
        }
        // Root density 90 % > 70 %: no window can absorb an insert.
        assert!(t.needs_resize());
        assert!(t.find_rebalance_window(0, 1).is_none());
        let grown = t.grow();
        assert_eq!(grown.geometry().num_segments, 8);
        assert_eq!(grown.total_occupied(), 0);
    }

    #[test]
    fn delete_window_search_finds_sparse_regions() {
        let mut t = tree(100, 8);
        for s in 0..8 {
            t.add(s, 40);
        }
        // A healthy segment needs no widening.
        let w = t.find_rebalance_window_after_delete(2).unwrap();
        assert_eq!(w.num_segments, 1);
        // Drain segment 2 below the leaf lower bound (8 %).
        t.sub(2, 37);
        let w = t.find_rebalance_window_after_delete(2).unwrap();
        assert!(w.num_segments > 1);
    }

    #[test]
    fn delete_window_none_when_everything_empty() {
        let t = tree(100, 8);
        assert!(t.find_rebalance_window_after_delete(0).is_none());
    }

    #[test]
    fn rebuild_from_occupancies() {
        let geom = SegmentGeometry::new(16, 4);
        let t = DensityTree::rebuild_from(geom, DensityBounds::default(), [1, 2, 3, 4]);
        assert_eq!(t.total_occupied(), 10);
        assert_eq!(t.occupancy(2), 3);
    }

    #[test]
    fn rebalance_window_density_helper() {
        let w = RebalanceWindow {
            first_segment: 2,
            num_segments: 2,
            level: 1,
            occupied: 30,
            capacity: 60,
        };
        assert_eq!(w.segments(), 2..4);
        assert!((w.density() - 0.5).abs() < 1e-12);
    }
}
