//! # pma — adaptive Packed Memory Array building blocks
//!
//! The Packed Memory Array (Bender & Hu) keeps a sorted (or otherwise
//! ordered) sequence in an array with deliberately reserved gaps so that a
//! point insertion only shifts a handful of neighbouring elements.  A binary
//! *PMA tree* over fixed-size **segments** tracks how full every region of
//! the array is; when a segment's density leaves the allowed range, the
//! smallest enclosing window whose density is acceptable is **rebalanced**
//! (its elements are spread out evenly again), and when the whole array is
//! too dense it is **resized**.
//!
//! DGAP builds its persistent-memory edge array on exactly this machinery
//! (via the VCSR vertex-centric variant), so this crate provides the pieces
//! in a storage-agnostic form:
//!
//! * [`DensityBounds`] / [`level_bounds`] — the ρ/τ density thresholds,
//!   interpolated over the tree height.
//! * [`SegmentGeometry`] — segment size / count / capacity arithmetic.
//! * [`DensityTree`] — DRAM-side occupancy tracking, rebalance-window
//!   search and resize detection.  DGAP keeps this structure in DRAM (its
//!   *data placement* design) and reconstructs it from PM after a crash.
//! * [`redistribute`] — planning of where every vertex's edges land after a
//!   rebalance, both with even gap spreading (PCSR style) and with
//!   degree-weighted spreading (VCSR style).
//! * [`PackedMemoryArray`] — a complete in-DRAM reference implementation of
//!   an adaptive PMA over `u64` keys.  It is used by the unit/property
//!   tests as an executable specification, by the write-amplification
//!   demonstration of Fig. 1(a), and as the DRAM comparison point of
//!   Fig. 1(b).
//!
//! The crate has no dependency on the `pmem` emulator: everything here is
//! pure logic so that DGAP (and tests) can drive it against any storage.

#![warn(missing_docs)]

pub mod array;
pub mod redistribute;
pub mod thresholds;
pub mod tree;

pub use array::{InsertOutcome, PackedMemoryArray, PmaConfig};
pub use redistribute::{plan_even, plan_weighted, Extent, Placement};
pub use thresholds::{level_bounds, DensityBounds};
pub use tree::{DensityTree, RebalanceWindow, SegmentGeometry};
