//! Density thresholds for the adaptive PMA.
//!
//! Following Bender & Hu's adaptive PMA, every level of the PMA tree gets a
//! pair of density bounds `(ρ_i, τ_i)`.  Leaves (individual segments) are
//! allowed to get nearly full (`τ_leaf` close to 1.0) and nearly empty;
//! towards the root the bounds tighten so that the array as a whole keeps a
//! healthy proportion of gaps.  Bounds at intermediate levels are linear
//! interpolations between the leaf and root values.

/// The four corner densities from which every level's bounds are derived.
///
/// Invariant (checked by [`DensityBounds::validated`]):
/// `0 < rho_root <= rho_leaf < tau_leaf <= tau_root' ` — note that in the
/// literature τ *decreases* towards the root while ρ *increases*; we store
/// the values in the orientation used by the original PMA paper:
/// `rho_root < rho_leaf < tau_root < tau_leaf`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityBounds {
    /// Minimum density of the whole array (root window).
    pub rho_root: f64,
    /// Minimum density of a single segment (leaf window).
    pub rho_leaf: f64,
    /// Maximum density of the whole array (root window).  Exceeding this
    /// triggers a resize.
    pub tau_root: f64,
    /// Maximum density of a single segment (leaf window).  Exceeding this
    /// triggers a rebalance.
    pub tau_leaf: f64,
}

impl Default for DensityBounds {
    /// The constants used by the DGAP prototype (and PCSR before it):
    /// segments may fill to 92 %, the whole array only to 70 %; segments may
    /// drain to 8 %, the whole array must stay above 30 %.
    fn default() -> Self {
        DensityBounds {
            rho_root: 0.30,
            rho_leaf: 0.08,
            tau_root: 0.70,
            tau_leaf: 0.92,
        }
    }
}

impl DensityBounds {
    /// Check the ordering invariants, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not strictly ordered
    /// (`0 < rho_root`, `rho_root <= rho_leaf`, `rho_leaf < tau_root`,
    /// `tau_root <= tau_leaf`, `tau_leaf <= 1.0`).
    pub fn validated(self) -> Self {
        assert!(self.rho_root > 0.0, "rho_root must be positive");
        assert!(
            self.rho_leaf <= self.rho_root,
            "rho_leaf must not exceed rho_root"
        );
        assert!(
            self.rho_leaf < self.tau_root,
            "rho_leaf < tau_root required"
        );
        assert!(
            self.tau_root <= self.tau_leaf,
            "tau_root <= tau_leaf required"
        );
        assert!(self.tau_leaf <= 1.0, "tau_leaf must not exceed 1.0");
        self
    }
}

/// Density bounds `(ρ, τ)` for a window at `level` of a PMA tree of height
/// `height`.
///
/// `level == 0` is a leaf (single segment); `level == height` is the root
/// (the whole array).  Intermediate levels interpolate linearly, exactly as
/// in the adaptive PMA paper.
pub fn level_bounds(bounds: &DensityBounds, level: u32, height: u32) -> (f64, f64) {
    if height == 0 {
        // Degenerate single-segment array: the leaf *is* the root.  Use the
        // root bounds so that filling the lone segment triggers a resize.
        return (bounds.rho_root, bounds.tau_root);
    }
    let frac = f64::from(level.min(height)) / f64::from(height);
    let rho = bounds.rho_leaf + (bounds.rho_root - bounds.rho_leaf) * frac;
    let tau = bounds.tau_leaf + (bounds.tau_root - bounds.tau_leaf) * frac;
    (rho, tau)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bounds_are_valid() {
        DensityBounds::default().validated();
    }

    #[test]
    fn leaf_bounds_are_loosest() {
        let b = DensityBounds::default();
        let (rho_leaf, tau_leaf) = level_bounds(&b, 0, 10);
        let (rho_root, tau_root) = level_bounds(&b, 10, 10);
        assert!(rho_leaf < rho_root);
        assert!(tau_leaf > tau_root);
        assert!((rho_leaf - b.rho_leaf).abs() < 1e-12);
        assert!((tau_leaf - b.tau_leaf).abs() < 1e-12);
        assert!((rho_root - b.rho_root).abs() < 1e-12);
        assert!((tau_root - b.tau_root).abs() < 1e-12);
    }

    #[test]
    fn bounds_are_monotonic_in_level() {
        let b = DensityBounds::default();
        let height = 8;
        let mut prev = level_bounds(&b, 0, height);
        for level in 1..=height {
            let cur = level_bounds(&b, level, height);
            assert!(cur.0 >= prev.0, "rho must not decrease towards the root");
            assert!(cur.1 <= prev.1, "tau must not increase towards the root");
            prev = cur;
        }
    }

    #[test]
    fn zero_height_tree_uses_root_bounds() {
        let b = DensityBounds::default();
        let (rho, tau) = level_bounds(&b, 0, 0);
        assert_eq!(rho, b.rho_root);
        assert_eq!(tau, b.tau_root);
    }

    #[test]
    fn level_clamped_to_height() {
        let b = DensityBounds::default();
        assert_eq!(level_bounds(&b, 99, 4), level_bounds(&b, 4, 4));
    }

    #[test]
    #[should_panic(expected = "tau_leaf must not exceed 1.0")]
    fn invalid_bounds_panic() {
        DensityBounds {
            tau_leaf: 1.5,
            ..DensityBounds::default()
        }
        .validated();
    }

    #[test]
    fn midpoint_is_halfway() {
        let b = DensityBounds::default();
        let (rho, tau) = level_bounds(&b, 2, 4);
        assert!((rho - (b.rho_leaf + b.rho_root) / 2.0).abs() < 1e-12);
        assert!((tau - (b.tau_leaf + b.tau_root) / 2.0).abs() < 1e-12);
    }
}
