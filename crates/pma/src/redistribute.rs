//! Planning the layout of a rebalance window.
//!
//! A PMA rebalance takes every element inside a window and spreads it out
//! again, leaving gaps for future insertions.  For a graph edge array the
//! elements are grouped by source vertex: each vertex occupies a contiguous
//! *extent* (its pivot element followed by its edges), and gaps must land
//! *between* vertices (inside a vertex's extent they would break the
//! `start + degree` addressing DGAP relies on).
//!
//! Two strategies are provided:
//!
//! * [`plan_even`] — PCSR-style: the window's free slots are divided evenly
//!   among the vertices, regardless of their degree.
//! * [`plan_weighted`] — VCSR-style: free slots are divided in proportion to
//!   each vertex's current degree, so high-degree (and historically fast
//!   growing) vertices receive more headroom.  This is the strategy DGAP
//!   inherits from VCSR.
//!
//! Both planners are pure functions from extents to placements; the caller
//! (DGAP, or the in-DRAM reference array) performs the actual data movement.

/// One vertex's extent inside a rebalance window: its id and how many slots
/// it currently occupies (pivot + edges for DGAP; simply "elements" for the
/// generic PMA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Identifier carried through to the resulting [`Placement`].
    pub id: u64,
    /// Number of occupied slots that must be preserved contiguously.
    pub count: usize,
}

/// Where one extent lands after the rebalance, relative to the window start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Identifier copied from the corresponding [`Extent`].
    pub id: u64,
    /// First slot (relative to the window) the extent occupies.
    pub start: usize,
    /// Slots reserved for the extent (`>= count`); the trailing
    /// `capacity - count` slots are the gap left for future insertions.
    pub capacity: usize,
    /// Occupied slots, copied from the extent for convenience.
    pub count: usize,
}

impl Placement {
    /// Slots left free at the tail of this extent's reservation.
    pub fn gap(&self) -> usize {
        self.capacity - self.count
    }
}

fn plan_with_gaps(extents: &[Extent], gaps: Vec<usize>) -> Vec<Placement> {
    let mut placements = Vec::with_capacity(extents.len());
    let mut cursor = 0usize;
    for (e, gap) in extents.iter().zip(gaps) {
        placements.push(Placement {
            id: e.id,
            start: cursor,
            capacity: e.count + gap,
            count: e.count,
        });
        cursor += e.count + gap;
    }
    placements
}

/// Spread the window's free slots evenly across the extents (PCSR style).
///
/// Extent `i` receives `floor((i+1)·free/n) − floor(i·free/n)` extra slots,
/// which differs by at most one slot between any two extents and — unlike
/// giving the whole remainder to the leading extents — never leaves a run of
/// completely packed extents at the tail of the window.  The total capacity
/// consumed equals `window_capacity` exactly.
///
/// # Panics
///
/// Panics if the extents do not fit in the window.
pub fn plan_even(extents: &[Extent], window_capacity: usize) -> Vec<Placement> {
    if extents.is_empty() {
        return Vec::new();
    }
    let used: usize = extents.iter().map(|e| e.count).sum();
    assert!(
        used <= window_capacity,
        "extents occupy {used} slots but the window only has {window_capacity}"
    );
    let free = window_capacity - used;
    let n = extents.len();
    let gaps = (0..n).map(|i| (i + 1) * free / n - i * free / n).collect();
    plan_with_gaps(extents, gaps)
}

/// Spread the window's free slots proportionally to each extent's count
/// (VCSR style): an extent holding a fraction `f` of the window's elements
/// receives (approximately) a fraction `f` of the window's free slots.
///
/// The allocation is computed cumulatively — extent `i` receives
/// `floor(cum_{i+1}·free/used) − floor(cum_i·free/used)` gap slots, where
/// `cum_i` is the number of occupied slots preceding it — so rounding error
/// never accumulates into a long gap-less run (which would recreate a
/// completely packed PMA section right after a rebalance).  Extents with
/// zero weight fall back to an even split.
///
/// # Panics
///
/// Panics if the extents do not fit in the window.
pub fn plan_weighted(extents: &[Extent], window_capacity: usize) -> Vec<Placement> {
    if extents.is_empty() {
        return Vec::new();
    }
    let used: usize = extents.iter().map(|e| e.count).sum();
    assert!(
        used <= window_capacity,
        "extents occupy {used} slots but the window only has {window_capacity}"
    );
    if used == 0 {
        return plan_even(extents, window_capacity);
    }
    let free = window_capacity - used;
    let mut gaps = Vec::with_capacity(extents.len());
    let mut cum = 0usize;
    for e in extents {
        let before = cum * free / used;
        cum += e.count;
        let after = cum * free / used;
        gaps.push(after - before);
    }
    plan_with_gaps(extents, gaps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extents(counts: &[usize]) -> Vec<Extent> {
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| Extent {
                id: i as u64,
                count: c,
            })
            .collect()
    }

    fn check_invariants(extents: &[Extent], placements: &[Placement], window: usize) {
        assert_eq!(extents.len(), placements.len());
        let mut expected_start = 0usize;
        for (e, p) in extents.iter().zip(placements) {
            assert_eq!(e.id, p.id);
            assert_eq!(e.count, p.count);
            assert!(p.capacity >= p.count, "capacity must cover the elements");
            assert_eq!(p.start, expected_start, "placements must be contiguous");
            expected_start += p.capacity;
        }
        assert_eq!(expected_start, window, "window must be fully consumed");
    }

    #[test]
    fn even_plan_divides_gaps_evenly() {
        let ex = extents(&[3, 3, 3, 3]);
        let plan = plan_even(&ex, 20);
        check_invariants(&ex, &plan, 20);
        for p in &plan {
            assert_eq!(p.gap(), 2);
        }
    }

    #[test]
    fn even_plan_spreads_remainder_without_packing_the_tail() {
        let ex = extents(&[1, 1, 1]);
        let plan = plan_even(&ex, 8); // 5 free slots over 3 extents
        check_invariants(&ex, &plan, 8);
        // Gaps differ by at most one slot, and no extent is left gap-less.
        let gaps: Vec<usize> = plan.iter().map(Placement::gap).collect();
        assert_eq!(gaps.iter().sum::<usize>(), 5);
        assert!(gaps.iter().all(|&g| (1..=2).contains(&g)), "gaps: {gaps:?}");
    }

    #[test]
    fn even_plan_never_packs_a_long_tail() {
        // Regression test: 20 single-element extents in a 32-slot window must
        // not leave the last 8 extents back-to-back (that would re-create a
        // full PMA segment immediately after a rebalance).
        let ex = extents(&[1; 20]);
        let plan = plan_even(&ex, 32);
        check_invariants(&ex, &plan, 32);
        let max_run = plan
            .iter()
            .fold((0usize, 0usize), |(best, cur), p| {
                let cur = if p.gap() == 0 { cur + p.count } else { 0 };
                (best.max(cur), cur)
            })
            .0;
        assert!(max_run < 8, "longest gap-less run is {max_run}");
    }

    #[test]
    fn weighted_plan_gives_more_headroom_to_heavy_vertices() {
        let ex = extents(&[90, 5, 5]);
        let plan = plan_weighted(&ex, 200); // 100 free slots
        check_invariants(&ex, &plan, 200);
        assert!(
            plan[0].gap() > plan[1].gap() * 5,
            "the 90-edge vertex should receive most of the gap: {plan:?}"
        );
    }

    #[test]
    fn weighted_plan_handles_zero_count_extents() {
        let ex = extents(&[0, 10, 0]);
        let plan = plan_weighted(&ex, 16);
        check_invariants(&ex, &plan, 16);
    }

    #[test]
    fn plans_handle_full_window() {
        let ex = extents(&[4, 4]);
        let even = plan_even(&ex, 8);
        let weighted = plan_weighted(&ex, 8);
        check_invariants(&ex, &even, 8);
        check_invariants(&ex, &weighted, 8);
        assert!(even.iter().all(|p| p.gap() == 0));
        assert!(weighted.iter().all(|p| p.gap() == 0));
    }

    #[test]
    fn empty_extent_list_produces_empty_plan() {
        assert!(plan_even(&[], 100).is_empty());
        assert!(plan_weighted(&[], 100).is_empty());
    }

    #[test]
    #[should_panic(expected = "only has")]
    fn overfull_window_panics() {
        let ex = extents(&[10, 10]);
        plan_even(&ex, 15);
    }

    #[test]
    fn single_extent_gets_all_gaps() {
        let ex = extents(&[7]);
        for plan in [plan_even(&ex, 32), plan_weighted(&ex, 32)] {
            check_invariants(&ex, &plan, 32);
            assert_eq!(plan[0].gap(), 25);
        }
    }

    /// Property-based oracle tests.  The `proptest` crate is not part of
    /// the offline workspace; enable the `proptest-tests` feature (and add
    /// the `proptest` dev-dependency) to run them.
    #[cfg(feature = "proptest-tests")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_extents() -> impl Strategy<Value = Vec<Extent>> {
            proptest::collection::vec(0usize..50, 1..40).prop_map(|counts| {
                counts
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| Extent {
                        id: i as u64,
                        count: c,
                    })
                    .collect()
            })
        }

        proptest! {
            #[test]
            fn even_plan_is_exact_and_ordered(ex in arb_extents(), slack in 0usize..500) {
                let used: usize = ex.iter().map(|e| e.count).sum();
                let window = used + slack;
                let plan = plan_even(&ex, window);
                check_invariants(&ex, &plan, window);
            }

            #[test]
            fn weighted_plan_is_exact_and_ordered(ex in arb_extents(), slack in 0usize..500) {
                let used: usize = ex.iter().map(|e| e.count).sum();
                let window = used + slack;
                let plan = plan_weighted(&ex, window);
                check_invariants(&ex, &plan, window);
            }

            #[test]
            fn weighted_gap_is_monotone_in_count(a in 1usize..100, b in 1usize..100, slack in 2usize..400) {
                // For a two-extent window, the heavier extent never receives
                // a meaningfully smaller gap than the lighter one (rounding
                // may shift at most two slots).
                let ex = vec![Extent { id: 0, count: a }, Extent { id: 1, count: b }];
                let window = a + b + slack;
                let plan = plan_weighted(&ex, window);
                if a >= b {
                    prop_assert!(plan[0].gap() + 2 >= plan[1].gap());
                } else {
                    prop_assert!(plan[1].gap() + 2 >= plan[0].gap());
                }
            }

            #[test]
            fn weighted_plan_never_packs_long_runs(counts in proptest::collection::vec(1usize..4, 8..64)) {
                // With uniform small extents and ~30 % slack, no run of
                // consecutive extents longer than the inverse gap rate stays
                // completely gap-less (this is what prevents a PMA section
                // from being 100 % full immediately after a rebalance).
                let ex: Vec<Extent> = counts.iter().enumerate()
                    .map(|(i, &c)| Extent { id: i as u64, count: c }).collect();
                let used: usize = counts.iter().sum();
                let window = used + used / 3 + 1;
                let plan = plan_weighted(&ex, window);
                let mut run = 0usize;
                let mut max_run = 0usize;
                for p in &plan {
                    if p.gap() == 0 { run += p.count; } else { run = 0; }
                    max_run = max_run.max(run);
                }
                prop_assert!(max_run <= 8, "gap-less run of {max_run} slots");
            }
        }
    }
}
