//! # sharded — a sharded, batched ingestion engine over any graph backend
//!
//! The DGAP paper serves updates and analysis from a *single* mutable-CSR
//! instance; its scalability ceiling is the per-section lock contention of
//! that one graph.  This crate removes the ceiling by partitioning the
//! vertex set across `N` independent backend instances ("shards"), each
//! with its own persistent pool, and layering a batched ingest pipeline on
//! top:
//!
//! * [`ShardedGraph<G>`] — hash-partitions vertices across `N` shards; each
//!   shard owns its own `G: DynamicGraph` instance (its own [`pmem::PmemPool`]
//!   for DGAP).  Edges are routed by source vertex, so every adjacency list
//!   lives entirely inside one shard and per-vertex insertion order is
//!   preserved.
//! * [`IngestPipeline`] — per-shard lock-free batch queues carrying typed
//!   [`dgap::Update`] batches (inserts **and** deletes), drained by one
//!   worker thread per shard, with backpressure when a queue fills.  Each
//!   `submit` returns a [`Ticket`]; [`IngestPipeline::wait_for`] gives the
//!   submitter read-your-writes visibility without the global
//!   [`IngestPipeline::flush_all`] durability barrier.
//! * [`ShardedView`] — a borrowed cross-shard composite implementing
//!   [`dgap::GraphView`], so the four analytics kernels (`pagerank`, `bfs`,
//!   `cc`, `bc`) run unchanged over the partitioned graph.
//!   [`OwnedShardedView`] (via [`ShardedGraph::consistent_view_arc`] /
//!   [`dgap::OwnedSnapshotSource`]) is its owned sibling: a materialised
//!   snapshot with no borrow, cacheable across request boundaries — what
//!   the `service` crate serves queries from.
//! * [`UnifiedView`] — the composite merged into **one global CSR**
//!   ([`dgap::CsrView`]): a parallel degree-gather → prefix-sum → span-copy
//!   merge pays the shard routing once, so the zero-dispatch `*_csr`
//!   analytics kernels run over all shards with no per-vertex hash and no
//!   per-edge closure.  Refreshes are incremental: the carried
//!   `Arc<FrozenView>`s double as the change signal, and only shards that
//!   were re-captured get their spans re-merged.
//!
//! Everything is generic over `G: DynamicGraph + SnapshotSource`, so the
//! engine scales DGAP *and* every baseline system.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use dgap::{DynamicGraph, GraphView, SnapshotSource, Update};
//! use sharded::{IngestPipeline, ShardedConfig, ShardedGraph};
//!
//! let cfg = ShardedConfig::small_test();
//! let graph = Arc::new(ShardedGraph::create_dgap_small_test(cfg.num_shards).unwrap());
//!
//! let pipeline = IngestPipeline::new(Arc::clone(&graph), &cfg);
//! let ticket = pipeline
//!     .submit(&[
//!         Update::InsertEdge(0, 1),
//!         Update::InsertEdge(0, 2),
//!         Update::InsertEdge(1, 2),
//!         Update::DeleteEdge(0, 1),
//!     ])
//!     .unwrap();
//! pipeline.wait_for(&ticket).unwrap(); // read-your-writes, no barrier
//!
//! let view = graph.consistent_view_arc(); // owned: outlives this scope
//! assert_eq!(view.neighbors(0), vec![2]);
//! assert_eq!(view.num_edges(), 2);
//!
//! pipeline.flush_all().unwrap(); // durability barrier (unchanged)
//! ```

#![warn(missing_docs)]

pub mod client_table;
pub mod config;
pub mod failpoint;
pub mod graph;
pub mod partition;
pub mod pipeline;
pub mod queue;
pub mod stats;
pub mod unified;
pub mod view;

pub use client_table::{ClientTable, ClientWatermarks, CLIENT_TABLE_ROOT};
pub use config::{ShardedConfig, ShardedConfigBuilder};
pub use failpoint::{crash_after, CrashHook, CrashSite, CRASH_MARKER};
pub use graph::{ShardedDgap, ShardedGraph, ShardedRecovery};
pub use partition::Partitioner;
pub use pipeline::{IngestPipeline, Ticket};
pub use stats::{PipelineStats, ShardIngestStats};
pub use unified::{DeltaTracker, UnifiedView};
pub use view::{OwnedShardedView, ShardedView};

/// A directed edge `(source, destination)`, the unit the ingest pipeline
/// routes.
pub type Edge = (dgap::VertexId, dgap::VertexId);
