//! Seeded crash-point injection for the ingest pipeline.
//!
//! The crash-point fuzzing harness (`tests/crash_fuzz.rs`) needs to kill a
//! drain worker at arbitrary points inside its commit protocol.  Two
//! injection planes compose:
//!
//! * [`PmemPool::arm_write_failpoint`](pmem::PmemPool::arm_write_failpoint)
//!   crashes on the N-th raw pmem store — it lands *inside* a graph insert
//!   or a client-table journal write, exercising torn-update recovery.
//! * A [`CrashHook`] installed via
//!   [`crate::IngestPipeline::with_crash_hook`] fires at the protocol
//!   seams listed in [`CrashSite`] — it exercises the windows *between*
//!   durable steps (applied-but-not-committed, committed-but-not-published).
//!
//! A firing hook simply panics with [`CRASH_MARKER`] in the payload; the
//! pipeline's existing `catch_unwind` then marks the lane dead, exactly as
//! if the worker thread had been killed.  Harnesses filter their panic hook
//! on the marker to keep expected crashes out of the test output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Substring carried by the panic payload of a firing [`CrashHook`] built
/// with [`crash_after`].  Re-exports the pmem write fail-point marker so one
/// filter catches both injection planes.
pub const CRASH_MARKER: &str = pmem::CRASH_FAILPOINT_MARKER;

/// Where in the drain worker's commit protocol a [`CrashHook`] is invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// A tagged batch was dequeued, before the apply journal is written.
    BatchStart,
    /// Between two updates of a batch (after the cursor advance).
    BetweenOps,
    /// All updates applied and flushed, before the commit record lands.
    BeforeCommit,
    /// Commit record durable, before the drain watermark is published.
    AfterCommit,
}

/// A crash-injection hook: called with the site and the shard index at
/// every seam.  Panic to simulate a crash at that point; return to proceed.
pub type CrashHook = Arc<dyn Fn(CrashSite, usize) + Send + Sync>;

/// A [`CrashHook`] that panics (payload contains [`CRASH_MARKER`]) on its
/// `nth` invocation across all sites and shards, counting from zero.
pub fn crash_after(nth: u64) -> CrashHook {
    let countdown = AtomicU64::new(nth);
    Arc::new(move |site, shard| {
        if countdown.fetch_sub(1, Ordering::SeqCst) == 0 {
            panic!("{CRASH_MARKER}: drain worker shard {shard} at {site:?}");
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_after_fires_exactly_once_at_the_nth_call() {
        let hook = crash_after(2);
        hook(CrashSite::BatchStart, 0);
        hook(CrashSite::BetweenOps, 0);
        let hook2 = Arc::clone(&hook);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            hook2(CrashSite::BeforeCommit, 1)
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains(CRASH_MARKER));
        assert!(msg.contains("shard 1"));
        // Wrapped counter keeps silent afterwards.
        hook(CrashSite::AfterCommit, 0);
    }
}
